//! Workload generators for the case studies and benchmarks (§4.1/§4.2).
//!
//! All generators are deterministic (an explicit LCG, no ambient
//! randomness) so benchmark runs are reproducible.

use shill_kernel::{Kernel, SockAddr};
use shill_vfs::{Gid, Mode, Uid};

use crate::tar::{pack, Entry};

/// Deterministic linear congruential generator.
pub struct Lcg(u64);

#[allow(clippy::should_implement_trait)]
impl Lcg {
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// What kind of student submission to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionKind {
    /// Correct solution (`sum`).
    Correct,
    /// Wrong answer (`print 0`).
    Wrong,
    /// Fails to compile.
    Broken,
    /// Tries to read another student's submission, then answers correctly.
    CheaterRead,
    /// Tries to overwrite its own grade file.
    CheaterWrite,
}

/// Generated grading workload description.
pub struct GradingWorkload {
    pub students: Vec<(String, SubmissionKind)>,
    pub test_cases: usize,
    pub submissions_dir: &'static str,
    pub tests_dir: &'static str,
    pub work_dir: &'static str,
    pub grades_dir: &'static str,
}

/// Build the grading course tree: `n` students under `/course/submissions`,
/// `tests` input/expected pairs, plus empty work and grades directories.
/// Student 0 is a read-cheater and student 1 a write-cheater when `n >= 4`.
pub fn grading_workload(k: &mut Kernel, n: usize, tests: usize) -> GradingWorkload {
    let mut students = Vec::new();
    let mut rng = Lcg::new(42);
    for i in 0..n {
        let name = format!("student{i:03}");
        let kind = if n >= 4 && i == 0 {
            SubmissionKind::CheaterRead
        } else if n >= 4 && i == 1 {
            SubmissionKind::CheaterWrite
        } else {
            match rng.below(10) {
                0 => SubmissionKind::Broken,
                1 | 2 => SubmissionKind::Wrong,
                _ => SubmissionKind::Correct,
            }
        };
        let source = match kind {
            SubmissionKind::Correct => "# solution\nsum\n".to_string(),
            SubmissionKind::Wrong => "# oops\nprint 0\n".to_string(),
            SubmissionKind::Broken => "sum\nsyntax-error\n".to_string(),
            SubmissionKind::CheaterRead => {
                // Try to read the next student's submission.
                format!(
                    "readfile /course/submissions/student{:03}/main.ml\nsum\n",
                    (n - 1).min(2)
                )
            }
            SubmissionKind::CheaterWrite => {
                format!("writefile /course/grades/{name}.grade score 999\nsum\n")
            }
        };
        k.fs.put_file(
            &format!("/course/submissions/{name}/main.ml"),
            source.as_bytes(),
            Mode(0o644),
            Uid(500 + i as u32),
            Gid(500),
        )
        .expect("submission");
        students.push((name, kind));
    }
    for t in 1..=tests {
        let nums: Vec<u64> = (0..3 + t as u64).map(|x| x * 2 + t as u64).collect();
        let sum: u64 = nums.iter().sum();
        let input = nums
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        k.fs.put_file(
            &format!("/course/tests/input{t}"),
            input.as_bytes(),
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .expect("test input");
        k.fs.put_file(
            &format!("/course/tests/expected{t}"),
            format!("{sum}\n").as_bytes(),
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .expect("test expected");
    }
    k.fs.mkdir_p("/course/work", Mode(0o777), Uid::ROOT, Gid::WHEEL)
        .expect("work");
    k.fs.mkdir_p("/course/grades", Mode(0o777), Uid::ROOT, Gid::WHEEL)
        .expect("grades");
    GradingWorkload {
        students,
        test_cases: tests,
        submissions_dir: "/course/submissions",
        tests_dir: "/course/tests",
        work_dir: "/course/work",
        grades_dir: "/course/grades",
    }
}

/// Generated source-tree statistics (the Find case study's `/usr/src`).
pub struct SourceTree {
    pub total_files: usize,
    pub c_files: usize,
    pub c_files_with_pattern: usize,
    pub root: &'static str,
}

/// Build a synthetic `/usr/src`. The paper's task visits 57,817 files and
/// greps 15,376 `.c` files; `scale` divides those targets (scale 10 →
/// ≈5.8k files). Ratios of `.c` files and of `mac_`-containing files match
/// the paper's tree.
pub fn source_tree(k: &mut Kernel, scale: usize) -> SourceTree {
    let total_target = 57_817 / scale.max(1);
    let mut rng = Lcg::new(7);
    let dirs = [
        "sys", "lib", "bin", "usr.bin", "contrib", "kern", "dev", "net", "fs",
    ];
    let mut total = 0usize;
    let mut c_files = 0usize;
    let mut with_pattern = 0usize;
    let mut di = 0usize;
    'outer: loop {
        let d1 = dirs[di % dirs.len()];
        di += 1;
        for sub in 0..12 {
            let dir = format!("/usr/src/{d1}/sub{sub:02}");
            let files_here = 8 + (rng.below(8) as usize);
            for f in 0..files_here {
                if total >= total_target {
                    break 'outer;
                }
                total += 1;
                // ≈27% of files are .c (15,376 / 57,817), mirroring the paper.
                let is_c = rng.below(1000) < 266;
                let (name, content) = if is_c {
                    c_files += 1;
                    // ≈1 in 9 .c files mention a MAC entry point.
                    let has = rng.below(9) == 0;
                    let body = if has {
                        with_pattern += 1;
                        format!(
                            "#include <sys/mac.h>\nint f{f}(void) {{\n  return mac_vnode_check_read();\n}}\n"
                        )
                    } else {
                        format!("int f{f}(void) {{ return {f}; }}\n")
                    };
                    (format!("file{f:03}.c"), body)
                } else {
                    match rng.below(3) {
                        0 => (format!("file{f:03}.h"), format!("#define F{f} {f}\n")),
                        1 => (format!("file{f:03}.S"), ".text\n".to_string()),
                        _ => (format!("Makefile.{f}"), "OBJS=\n".to_string()),
                    }
                };
                k.fs.put_file(
                    &format!("{dir}/{name}"),
                    content.as_bytes(),
                    Mode(0o644),
                    Uid::ROOT,
                    Gid::WHEEL,
                )
                .expect("source file");
            }
        }
    }
    SourceTree {
        total_files: total,
        c_files,
        c_files_with_pattern: with_pattern,
        root: "/usr/src",
    }
}

/// The address the Emacs mirror serves on.
pub fn emacs_mirror_addr() -> SockAddr {
    SockAddr::Inet {
        host: "mirror.gnu.org".into(),
        port: 80,
    }
}

/// Register the simulated GNU mirror serving an Emacs source tarball with
/// `sources` C files of `source_len` bytes each. Returns the tarball size.
pub fn emacs_mirror(k: &mut Kernel, sources: usize, source_len: usize) -> usize {
    let mut entries = vec![
        Entry::Dir {
            path: "emacs-24".into(),
        },
        Entry::Dir {
            path: "emacs-24/src".into(),
        },
        Entry::Dir {
            path: "emacs-24/etc".into(),
        },
        Entry::File {
            path: "emacs-24/configure".into(),
            data: b"#!SIMBIN configure\nNEEDS /lib/libc.so\n".to_vec(),
            mode: 0o755,
        },
        Entry::File {
            path: "emacs-24/README".into(),
            data: b"GNU Emacs (simulated)\n".to_vec(),
            mode: 0o644,
        },
        Entry::File {
            path: "emacs-24/etc/emacs.1".into(),
            data: b".TH EMACS 1\n".to_vec(),
            mode: 0o644,
        },
    ];
    let mut rng = Lcg::new(99);
    for i in 0..sources {
        let mut body = format!("/* emacs source {i} */\n");
        while body.len() < source_len {
            body.push_str(&format!(
                "int sym_{i}_{} = {};\n",
                rng.below(1000),
                rng.below(100)
            ));
        }
        entries.push(Entry::File {
            path: format!("emacs-24/src/mod{i:03}.c"),
            data: body.into_bytes(),
            mode: 0o644,
        });
    }
    let tarball = pack(&entries);
    let size = tarball.len();
    k.net.register_remote(
        emacs_mirror_addr(),
        Box::new(move |req| {
            if req.starts_with(b"GET /emacs-24.tar") {
                tarball.clone()
            } else {
                b"404".to_vec()
            }
        }),
    );
    size
}

/// Apache workload: content root with one `size`-byte file plus config and
/// log locations. Returns the content path.
pub struct WebWorkload {
    pub content_root: &'static str,
    pub file_name: &'static str,
    pub config: &'static str,
    pub log: &'static str,
    pub port: u16,
}

pub fn web_workload(k: &mut Kernel, size: usize) -> WebWorkload {
    let mut rng = Lcg::new(5);
    let mut data = Vec::with_capacity(size);
    while data.len() < size {
        data.push((rng.next() & 0x7F) as u8);
    }
    k.fs.put_file(
        "/var/www/big.bin",
        &data,
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .expect("content");
    k.fs.put_file(
        "/etc/apache/httpd.conf",
        b"DocumentRoot /var/www\nListen 8080\n",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .expect("conf");
    k.fs.mkdir_p("/var/log", Mode(0o755), Uid::ROOT, Gid::WHEEL)
        .expect("log dir");
    k.fs.put_file(
        "/var/log/httpd-access.log",
        b"",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .expect("log file");
    WebWorkload {
        content_root: "/var/www",
        file_name: "big.bin",
        config: "/etc/apache/httpd.conf",
        log: "/var/log/httpd-access.log",
        port: 8080,
    }
}

/// The photo-library workload for the quickstart (find_jpg / jpeginfo).
pub fn photo_workload(k: &mut Kernel, photos: usize) -> usize {
    let mut rng = Lcg::new(11);
    let mut jpgs = 0;
    for i in 0..photos {
        let dir = match rng.below(3) {
            0 => "/home/user/Pictures",
            1 => "/home/user/Pictures/vacation",
            _ => "/home/user/Downloads",
        };
        let (name, data): (String, Vec<u8>) = if rng.below(4) < 3 {
            jpgs += 1;
            (
                format!("img{i:03}.jpg"),
                vec![0xFF; 40 + rng.below(100) as usize],
            )
        } else {
            (format!("note{i:03}.txt"), b"text".to_vec())
        };
        k.fs.put_file(
            &format!("{dir}/{name}"),
            &data,
            Mode(0o644),
            Uid(100),
            Gid(100),
        )
        .expect("photo");
    }
    jpgs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grading_workload_shape() {
        let mut k = Kernel::new();
        let w = grading_workload(&mut k, 10, 3);
        assert_eq!(w.students.len(), 10);
        assert_eq!(w.students[0].1, SubmissionKind::CheaterRead);
        assert_eq!(w.students[1].1, SubmissionKind::CheaterWrite);
        assert!(k
            .fs
            .resolve_abs("/course/submissions/student000/main.ml")
            .is_ok());
        assert!(k.fs.resolve_abs("/course/tests/input3").is_ok());
        assert!(k.fs.resolve_abs("/course/tests/expected1").is_ok());
    }

    #[test]
    fn source_tree_matches_ratios() {
        let mut k = Kernel::new();
        let t = source_tree(&mut k, 50);
        assert!(t.total_files >= 1000, "{}", t.total_files);
        let ratio = t.c_files as f64 / t.total_files as f64;
        assert!((0.2..0.35).contains(&ratio), "c ratio {ratio}");
        assert!(t.c_files_with_pattern > 0);
        assert!(k.fs.resolve_abs("/usr/src/sys/sub00").is_ok());
    }

    #[test]
    fn emacs_mirror_serves_tarball() {
        let mut k = Kernel::new();
        let size = emacs_mirror(&mut k, 5, 256);
        assert!(size > 1000);
        let addr = emacs_mirror_addr();
        // Exercise via socket syscalls.
        use shill_kernel::SockDomain;
        let s = k.net.socket(SockDomain::Inet);
        k.net.connect(s, addr).unwrap();
        k.net.send(s, b"GET /emacs-24.tar").unwrap();
        let mut got = Vec::new();
        loop {
            let chunk = k.net.recv(s, 65536).unwrap();
            if chunk.is_empty() {
                break;
            }
            got.extend(chunk);
        }
        assert_eq!(got.len(), size);
        assert!(crate::tar::unpack(&got).is_some());
    }

    #[test]
    fn deterministic_generators() {
        let mut k1 = Kernel::new();
        let mut k2 = Kernel::new();
        let a = source_tree(&mut k1, 100);
        let b = source_tree(&mut k2, 100);
        assert_eq!(a.total_files, b.total_files);
        assert_eq!(a.c_files, b.c_files);
        assert_eq!(a.c_files_with_pattern, b.c_files_with_pattern);
    }
}
