//! Invalidation-correctness tests for the resolution fast path: the
//! directory-entry cache (dcache) and the MAC access-vector cache (AVC).
//!
//! The security property under test: enabling the caches must never change
//! the *outcome* of any operation — only how much work it takes.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

use shill_kernel::{
    Kernel, MacCtx, MacPolicy, NullPolicy, OpenFlags, Pid, VnodeOp, SYSCTL_AVC, SYSCTL_DCACHE,
};
use shill_vfs::{Cred, Errno, Gid, Mode, NodeId, SysResult, Uid};

fn setup() -> (Kernel, Pid) {
    let mut k = Kernel::new();
    let pid = k.spawn_user(Cred::ROOT);
    (k, pid)
}

// --- dcache invalidation ----------------------------------------------------

#[test]
fn unlink_invalidates_dcache_entry() {
    let (mut k, pid) = setup();
    k.fs.put_file("/a/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    // Warm the cache.
    let st1 = k.fstatat(pid, None, "/a/f", true).unwrap();
    k.unlinkat(pid, None, "/a/f", false).unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/a/f", true).unwrap_err(),
        Errno::ENOENT
    );
    // Re-create under the same name: the walker must see the *new* node.
    k.fs.put_file("/a/f", b"y", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let st2 = k.fstatat(pid, None, "/a/f", true).unwrap();
    assert_ne!(
        st1.node, st2.node,
        "stale dcache entry resolved to the old node"
    );
}

#[test]
fn rename_invalidates_both_directories() {
    let (mut k, pid) = setup();
    k.fs.put_file("/src/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.mkdir_p("/dst", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let before = k.fstatat(pid, None, "/src/f", true).unwrap();
    k.renameat(pid, None, "/src/f", None, "/dst/g").unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/src/f", true).unwrap_err(),
        Errno::ENOENT
    );
    let after = k.fstatat(pid, None, "/dst/g", true).unwrap();
    assert_eq!(before.node, after.node);
    // A different file renamed over a warm destination entry must win.
    k.fs.put_file("/src/h", b"z", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let h = k.fstatat(pid, None, "/src/h", true).unwrap();
    k.renameat(pid, None, "/src/h", None, "/dst/g").unwrap();
    assert_eq!(k.fstatat(pid, None, "/dst/g", true).unwrap().node, h.node);
}

#[test]
fn rmdir_invalidates_dcache_entry() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/top/sub", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fstatat(pid, None, "/top/sub", true).unwrap(); // warm
    k.unlinkat(pid, None, "/top/sub", true).unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/top/sub", true).unwrap_err(),
        Errno::ENOENT
    );
    // Recreate: fresh node, fresh entry.
    k.fs.mkdir_p("/top/sub", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert!(k.fstatat(pid, None, "/top/sub", true).is_ok());
}

#[test]
fn symlink_creation_invalidates_parent() {
    let (mut k, pid) = setup();
    k.fs.put_file("/real", b"r", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/tmp/link", true).unwrap_err(),
        Errno::ENOENT
    );
    k.symlinkat(pid, "/real", None, "/tmp/link").unwrap();
    assert!(k.fstatat(pid, None, "/tmp/link", true).is_ok());
}

#[test]
fn dcache_counters_move_and_sysctl_toggles() {
    let (mut k, pid) = setup();
    k.fs.put_file("/w/x/y/leaf", b"d", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.fstatat(pid, None, "/w/x/y/leaf", true).unwrap();
    }
    let warm = k.stats.snapshot();
    assert!(warm.dcache_hits > 0, "repeated walks must hit the dcache");
    assert!(
        warm.dir_scans < warm.lookups,
        "directory scans ({}) should be fewer than components walked ({})",
        warm.dir_scans,
        warm.lookups
    );
    // Toggle off via sysctl: every component scans again.
    k.sysctl_write(pid, SYSCTL_DCACHE, "0").unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.fstatat(pid, None, "/w/x/y/leaf", true).unwrap();
    }
    let cold = k.stats.snapshot();
    assert_eq!(cold.dcache_hits, 0);
    assert_eq!(cold.dir_scans, cold.lookups);
    assert!(!k.cache_enabled().0);
    k.sysctl_write(pid, SYSCTL_DCACHE, "1").unwrap();
    assert!(k.cache_enabled().0);
}

// --- symlink hop limit is cache-invariant ------------------------------------

fn symlink_outcomes(k: &mut Kernel, pid: Pid) -> Vec<Result<Vec<u8>, Errno>> {
    let mut out = Vec::new();
    // A loop must ELOOP; a long-but-legal chain must resolve.
    out.push(
        k.open(pid, "/loop/a", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out.push(
        k.open(pid, "/chain/l0", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out.push(
        k.open(pid, "/deep33", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out
}

/// Build: a two-link loop, a 20-hop chain to a real file, and a 33-hop chain
/// that exceeds MAX_SYMLINK_HOPS (32).
fn build_symlink_workload(k: &mut Kernel, pid: Pid) {
    k.fs.mkdir_p("/loop", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.symlinkat(pid, "/loop/b", None, "/loop/a").unwrap();
    k.symlinkat(pid, "/loop/a", None, "/loop/b").unwrap();
    k.fs.mkdir_p("/chain", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.put_file(
        "/chain/target",
        b"chained",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    for i in (0..20).rev() {
        let next = if i == 19 {
            "/chain/target".to_string()
        } else {
            format!("/chain/l{}", i + 1)
        };
        k.symlinkat(pid, &next, None, &format!("/chain/l{i}"))
            .unwrap();
    }
    // 33 hops: d0 → d1 → ... → d33 (file); traversal needs 33 link reads.
    k.fs.put_file("/d33", b"too deep", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    for i in (0..33).rev() {
        let next = if i == 32 {
            "/d33".to_string()
        } else {
            format!("/d{}", i + 1)
        };
        k.symlinkat(pid, &next, None, &format!("/d{i}")).unwrap();
    }
    // Entry point named distinctly from the numbered chain.
    k.symlinkat(pid, "/d0", None, "/deep33").unwrap();
}

#[test]
fn symlink_hop_limit_identical_with_and_without_caches() {
    let (mut k, pid) = setup();
    build_symlink_workload(&mut k, pid);

    k.set_cache_enabled(true, true);
    let cached_cold = symlink_outcomes(&mut k, pid);
    let cached_warm = symlink_outcomes(&mut k, pid); // warm dcache this time
    k.set_cache_enabled(false, false);
    let uncached = symlink_outcomes(&mut k, pid);

    assert_eq!(
        cached_cold, uncached,
        "cold cached run diverged from uncached"
    );
    assert_eq!(
        cached_warm, uncached,
        "warm cached run diverged from uncached"
    );
    assert_eq!(
        uncached[0],
        Err(Errno::ELOOP),
        "loop must ELOOP in all modes"
    );
    assert_eq!(uncached[1], Ok(b"chained".to_vec()));
    assert_eq!(
        uncached[2],
        Err(Errno::ELOOP),
        "34 hops exceed the 32-hop budget"
    );
}

// --- AVC ---------------------------------------------------------------------

/// A cacheable test policy with an explicit deny set and a manually bumped
/// epoch — lets us exercise the kernel/policy epoch protocol without the
/// full SHILL sandbox.
#[derive(Default)]
struct TogglePolicy {
    denied: RefCell<HashSet<NodeId>>,
    epoch: std::cell::Cell<u64>,
}

// Safety: the simulated kernel is single-threaded by construction; the
// production policy (ShillPolicy) uses a real mutex instead.
unsafe impl Sync for TogglePolicy {}

impl TogglePolicy {
    fn deny(&self, node: NodeId) {
        self.denied.borrow_mut().insert(node);
        // Authority shrank: honor the cache-epoch contract.
        self.epoch.set(self.epoch.get() + 1);
    }

    fn allow(&self, node: NodeId) {
        // Authority only grows: no bump required.
        self.denied.borrow_mut().remove(&node);
    }
}

impl MacPolicy for TogglePolicy {
    fn name(&self) -> &str {
        "toggle"
    }

    fn decisions_cacheable(&self) -> bool {
        true
    }

    fn cache_epoch(&self) -> u64 {
        self.epoch.get()
    }

    fn vnode_check(&self, _ctx: MacCtx, node: NodeId, _op: &VnodeOp<'_>) -> SysResult<()> {
        if self.denied.borrow().contains(&node) {
            Err(Errno::EACCES)
        } else {
            Ok(())
        }
    }
}

#[test]
fn avc_caches_allows_and_respects_policy_epoch() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let node = k.fs.resolve_abs("/data/f").unwrap();
    let policy = Arc::new(TogglePolicy::default());
    k.register_policy(policy.clone());

    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..20 {
        k.read(pid, fd, 1).unwrap();
    }
    let warm = k.stats.snapshot();
    assert!(
        warm.avc_hits >= 19,
        "repeat reads must be AVC hits, got {}",
        warm.avc_hits
    );

    // Revoke: the policy denies the node and bumps its epoch; the very next
    // read must reach the policy and fail despite the warm cache.
    policy.deny(node);
    assert_eq!(k.read(pid, fd, 1).unwrap_err(), Errno::EACCES);

    // Re-allow (monotone growth, no bump needed): works again.
    policy.allow(node);
    assert!(k.read(pid, fd, 1).is_ok());
}

#[test]
fn policy_attach_flushes_avc() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let node = k.fs.resolve_abs("/data/f").unwrap();
    k.register_policy(Arc::new(NullPolicy));
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd, 1).unwrap(); // warm allow under NullPolicy alone
    assert!(k.avc().entry_count() > 0);

    // Attach a denying policy: the stale allow must not short-circuit it.
    let toggle = Arc::new(TogglePolicy::default());
    toggle.deny(node);
    k.register_policy(toggle);
    assert_eq!(k.read(pid, fd, 1).unwrap_err(), Errno::EACCES);
}

#[test]
fn policy_detach_flushes_avc_and_uncacheable_policy_disables_it() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();

    /// Default-cacheability check: a policy that does not opt in.
    struct Opaque;
    impl MacPolicy for Opaque {
        fn name(&self) -> &str {
            "opaque"
        }
    }

    k.register_policy(Arc::new(NullPolicy));
    k.register_policy(Arc::new(Opaque));
    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    let snap = k.stats.snapshot();
    assert_eq!(
        snap.avc_hits, 0,
        "an uncacheable policy must disable the AVC"
    );
    assert_eq!(snap.avc_misses, 0);

    // Detach it: caching resumes (and the flush counter moved).
    assert!(k.unregister_policy("opaque"));
    k.stats.reset();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    assert!(k.stats.snapshot().avc_hits > 0);
}

#[test]
fn process_exit_drops_subject_entries() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.register_policy(Arc::new(NullPolicy));
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd, 1).unwrap();
    assert!(k.avc().entry_count() > 0);
    k.exit(pid, 0);
    assert_eq!(
        k.avc().entry_count(),
        0,
        "exiting subject's verdicts must be dropped"
    );
}

#[test]
fn avc_sysctl_toggle() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.register_policy(Arc::new(NullPolicy));
    k.sysctl_write(pid, SYSCTL_AVC, "0").unwrap();
    assert!(!k.cache_enabled().1);
    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    let snap = k.stats.snapshot();
    assert_eq!(snap.avc_hits, 0);
    assert!(
        snap.mac_vnode_checks >= 5,
        "with the AVC off every check reaches the policy"
    );
    k.sysctl_write(pid, SYSCTL_AVC, "1").unwrap();
    assert!(k.cache_enabled().1);
}

#[test]
fn cache_sysctls_reject_malformed_values() {
    let (mut k, pid) = setup();
    for bad in ["off", "false", "banana", "", "2"] {
        assert_eq!(
            k.sysctl_write(pid, SYSCTL_AVC, bad).unwrap_err(),
            Errno::EINVAL,
            "value {bad:?} must be rejected"
        );
        assert_eq!(
            k.sysctl_write(pid, SYSCTL_DCACHE, bad).unwrap_err(),
            Errno::EINVAL
        );
    }
    // A failed write changes neither the cache state nor the stored knob.
    assert_eq!(k.cache_enabled(), (true, true));
    assert_eq!(k.sysctl_read(pid, SYSCTL_AVC).unwrap(), "1");
    // Whitespace-tolerant well-formed values still work.
    k.sysctl_write(pid, SYSCTL_AVC, " 0 ").unwrap();
    assert!(!k.cache_enabled().1);
}

// --- negative dcache entries -------------------------------------------------

#[test]
fn negative_dcache_caches_absent_names_until_create() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/probe", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.stats.reset();
    // First probe scans and records the absence.
    assert_eq!(
        k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
        Errno::ENOENT
    );
    let after_first = k.stats.snapshot();
    assert_eq!(after_first.dcache_neg_hits, 0);
    // Re-probes answer from the negative entry: no new directory scan of
    // /probe (the walk of "probe" in "/" still hits positively).
    for _ in 0..5 {
        assert_eq!(
            k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
            Errno::ENOENT
        );
    }
    let after = k.stats.snapshot();
    assert_eq!(after.dcache_neg_hits, 5, "absent name answered from cache");
    assert_eq!(
        after.dir_scans, after_first.dir_scans,
        "no further scans for the cached absence"
    );
    // Creating the name invalidates the negative entry immediately.
    k.fs.put_file(
        "/probe/ghost",
        b"now real",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    let st = k.fstatat(pid, None, "/probe/ghost", true).unwrap();
    assert_eq!(st.size, 8);
}

#[test]
fn negative_dcache_invalidated_by_rename_into_place() {
    let (mut k, pid) = setup();
    k.fs.put_file("/dir/real", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    // Cache the absence of /dir/target.
    assert_eq!(
        k.fstatat(pid, None, "/dir/target", true).unwrap_err(),
        Errno::ENOENT
    );
    k.renameat(pid, None, "/dir/real", None, "/dir/target")
        .unwrap();
    assert!(
        k.fstatat(pid, None, "/dir/target", true).is_ok(),
        "rename into place must kill the negative entry"
    );
}

#[test]
fn negative_dcache_inert_when_disabled() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/probe", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.set_cache_enabled(false, false);
    k.stats.reset();
    for _ in 0..3 {
        assert_eq!(
            k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
            Errno::ENOENT
        );
    }
    let snap = k.stats.snapshot();
    assert_eq!(snap.dcache_neg_hits, 0);
    assert!(snap.dir_scans >= 3, "every probe scans with the cache off");
}

// --- pipe/socket access vectors ---------------------------------------------

/// Cacheable policy that counts how many pipe/socket checks actually reach
/// it (the AVC should absorb repeats).
#[derive(Default)]
struct CountingPolicy {
    pipe_checks: std::cell::Cell<u64>,
    socket_checks: std::cell::Cell<u64>,
    epoch: std::cell::Cell<u64>,
}

// Safety: the simulated kernel is single-threaded by construction.
unsafe impl Sync for CountingPolicy {}
unsafe impl Send for CountingPolicy {}

impl MacPolicy for CountingPolicy {
    fn name(&self) -> &str {
        "counting"
    }
    fn decisions_cacheable(&self) -> bool {
        true
    }
    fn cache_epoch(&self) -> u64 {
        self.epoch.get()
    }
    fn pipe_check(
        &self,
        _ctx: MacCtx,
        _pipe: shill_kernel::ObjId,
        _op: shill_kernel::PipeOp,
    ) -> SysResult<()> {
        self.pipe_checks.set(self.pipe_checks.get() + 1);
        Ok(())
    }
    fn socket_check(
        &self,
        _ctx: MacCtx,
        _sock: shill_kernel::ObjId,
        _op: &shill_kernel::SocketOp,
    ) -> SysResult<()> {
        self.socket_checks.set(self.socket_checks.get() + 1);
        Ok(())
    }
}

#[test]
fn avc_caches_pipe_data_path_verdicts() {
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    let (r, w) = k.pipe(pid).unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.write(pid, w, b"x").unwrap();
        k.read(pid, r, 1).unwrap();
    }
    // First write and first read consult the policy; the rest are AVC hits.
    assert_eq!(policy.pipe_checks.get(), 2);
    assert_eq!(k.stats.snapshot().avc_hits, 18);
    // An epoch bump (authority shrank) invalidates the cached vectors.
    policy.epoch.set(policy.epoch.get() + 1);
    k.write(pid, w, b"y").unwrap();
    assert_eq!(policy.pipe_checks.get(), 3);
}

#[test]
fn avc_caches_socket_send_recv_but_not_lifecycle() {
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    let addr = shill_kernel::SockAddr::Inet {
        host: "peer".into(),
        port: 80,
    };
    k.net
        .register_remote(addr.clone(), Box::new(|_| b"pong".to_vec()));
    let fd = k.socket(pid, shill_kernel::SockDomain::Inet).unwrap();
    k.connect(pid, fd, addr.clone()).unwrap();
    let base = policy.socket_checks.get(); // create + connect reached policy
    assert_eq!(base, 2);
    for _ in 0..5 {
        k.write(pid, fd, b"ping").unwrap();
        let _ = k.read(pid, fd, 16);
    }
    // One Send and one Recv consult; the rest hit the AVC.
    assert_eq!(policy.socket_checks.get(), base + 2);
    // Connect is address-carrying: a second connect consults again.
    let fd2 = k.socket(pid, shill_kernel::SockDomain::Inet).unwrap();
    k.connect(pid, fd2, addr).unwrap();
    assert_eq!(policy.socket_checks.get(), base + 4);
    // Closing the socket drops its cached vectors.
    let before = k.avc().entry_count();
    k.close(pid, fd).unwrap();
    assert!(k.avc().entry_count() < before);
}

#[test]
fn uncacheable_policy_keeps_pipe_checks_on_slow_path() {
    struct Opaque2;
    impl MacPolicy for Opaque2 {
        fn name(&self) -> &str {
            "opaque2"
        }
    }
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    k.register_policy(Arc::new(Opaque2));
    let (r, w) = k.pipe(pid).unwrap();
    for _ in 0..4 {
        k.write(pid, w, b"x").unwrap();
        k.read(pid, r, 1).unwrap();
    }
    assert_eq!(
        policy.pipe_checks.get(),
        8,
        "an opaque policy in the stack disables pipe-vector caching"
    );
}
