//! Invalidation-correctness tests for the resolution fast path: the
//! directory-entry cache (dcache) and the MAC access-vector cache (AVC).
//!
//! The security property under test: enabling the caches must never change
//! the *outcome* of any operation — only how much work it takes.

use std::collections::HashSet;
use std::sync::Arc;

use shill_kernel::{
    Kernel, MacCtx, MacPolicy, NullPolicy, OpenFlags, Pid, VnodeOp, SYSCTL_AVC, SYSCTL_DCACHE,
};
use shill_vfs::{Cred, Errno, Gid, Mode, NodeId, SysResult, Uid};

fn setup() -> (Kernel, Pid) {
    let mut k = Kernel::new();
    let pid = k.spawn_user(Cred::ROOT);
    (k, pid)
}

// --- dcache invalidation ----------------------------------------------------

#[test]
fn unlink_invalidates_dcache_entry() {
    let (mut k, pid) = setup();
    k.fs.put_file("/a/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    // Warm the cache.
    let st1 = k.fstatat(pid, None, "/a/f", true).unwrap();
    k.unlinkat(pid, None, "/a/f", false).unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/a/f", true).unwrap_err(),
        Errno::ENOENT
    );
    // Re-create under the same name: the walker must see the *new* node.
    k.fs.put_file("/a/f", b"y", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let st2 = k.fstatat(pid, None, "/a/f", true).unwrap();
    assert_ne!(
        st1.node, st2.node,
        "stale dcache entry resolved to the old node"
    );
}

#[test]
fn rename_invalidates_both_directories() {
    let (mut k, pid) = setup();
    k.fs.put_file("/src/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.mkdir_p("/dst", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let before = k.fstatat(pid, None, "/src/f", true).unwrap();
    k.renameat(pid, None, "/src/f", None, "/dst/g").unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/src/f", true).unwrap_err(),
        Errno::ENOENT
    );
    let after = k.fstatat(pid, None, "/dst/g", true).unwrap();
    assert_eq!(before.node, after.node);
    // A different file renamed over a warm destination entry must win.
    k.fs.put_file("/src/h", b"z", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let h = k.fstatat(pid, None, "/src/h", true).unwrap();
    k.renameat(pid, None, "/src/h", None, "/dst/g").unwrap();
    assert_eq!(k.fstatat(pid, None, "/dst/g", true).unwrap().node, h.node);
}

#[test]
fn rmdir_invalidates_dcache_entry() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/top/sub", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fstatat(pid, None, "/top/sub", true).unwrap(); // warm
    k.unlinkat(pid, None, "/top/sub", true).unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/top/sub", true).unwrap_err(),
        Errno::ENOENT
    );
    // Recreate: fresh node, fresh entry.
    k.fs.mkdir_p("/top/sub", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert!(k.fstatat(pid, None, "/top/sub", true).is_ok());
}

#[test]
fn symlink_creation_invalidates_parent() {
    let (mut k, pid) = setup();
    k.fs.put_file("/real", b"r", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert_eq!(
        k.fstatat(pid, None, "/tmp/link", true).unwrap_err(),
        Errno::ENOENT
    );
    k.symlinkat(pid, "/real", None, "/tmp/link").unwrap();
    assert!(k.fstatat(pid, None, "/tmp/link", true).is_ok());
}

#[test]
fn dcache_counters_move_and_sysctl_toggles() {
    let (mut k, pid) = setup();
    k.fs.put_file("/w/x/y/leaf", b"d", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.fstatat(pid, None, "/w/x/y/leaf", true).unwrap();
    }
    let warm = k.stats.snapshot();
    assert!(warm.dcache_hits > 0, "repeated walks must hit the dcache");
    assert!(
        warm.dir_scans < warm.lookups,
        "directory scans ({}) should be fewer than components walked ({})",
        warm.dir_scans,
        warm.lookups
    );
    // Toggle off via sysctl: every component scans again.
    k.sysctl_write(pid, SYSCTL_DCACHE, "0").unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.fstatat(pid, None, "/w/x/y/leaf", true).unwrap();
    }
    let cold = k.stats.snapshot();
    assert_eq!(cold.dcache_hits, 0);
    assert_eq!(cold.dir_scans, cold.lookups);
    assert!(!k.cache_enabled().0);
    k.sysctl_write(pid, SYSCTL_DCACHE, "1").unwrap();
    assert!(k.cache_enabled().0);
}

// --- symlink hop limit is cache-invariant ------------------------------------

fn symlink_outcomes(k: &mut Kernel, pid: Pid) -> Vec<Result<Vec<u8>, Errno>> {
    let mut out = Vec::new();
    // A loop must ELOOP; a long-but-legal chain must resolve.
    out.push(
        k.open(pid, "/loop/a", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out.push(
        k.open(pid, "/chain/l0", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out.push(
        k.open(pid, "/deep33", OpenFlags::RDONLY, Mode(0))
            .and_then(|fd| {
                let r = k.read(pid, fd, 16);
                let _ = k.close(pid, fd);
                r
            }),
    );
    out
}

/// Build: a two-link loop, a 20-hop chain to a real file, and a 33-hop chain
/// that exceeds MAX_SYMLINK_HOPS (32).
fn build_symlink_workload(k: &mut Kernel, pid: Pid) {
    k.fs.mkdir_p("/loop", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.symlinkat(pid, "/loop/b", None, "/loop/a").unwrap();
    k.symlinkat(pid, "/loop/a", None, "/loop/b").unwrap();
    k.fs.mkdir_p("/chain", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.put_file(
        "/chain/target",
        b"chained",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    for i in (0..20).rev() {
        let next = if i == 19 {
            "/chain/target".to_string()
        } else {
            format!("/chain/l{}", i + 1)
        };
        k.symlinkat(pid, &next, None, &format!("/chain/l{i}"))
            .unwrap();
    }
    // 33 hops: d0 → d1 → ... → d33 (file); traversal needs 33 link reads.
    k.fs.put_file("/d33", b"too deep", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    for i in (0..33).rev() {
        let next = if i == 32 {
            "/d33".to_string()
        } else {
            format!("/d{}", i + 1)
        };
        k.symlinkat(pid, &next, None, &format!("/d{i}")).unwrap();
    }
    // Entry point named distinctly from the numbered chain.
    k.symlinkat(pid, "/d0", None, "/deep33").unwrap();
}

#[test]
fn symlink_hop_limit_identical_with_and_without_caches() {
    let (mut k, pid) = setup();
    build_symlink_workload(&mut k, pid);

    k.set_cache_enabled(true, true);
    let cached_cold = symlink_outcomes(&mut k, pid);
    let cached_warm = symlink_outcomes(&mut k, pid); // warm dcache this time
    k.set_cache_enabled(false, false);
    let uncached = symlink_outcomes(&mut k, pid);

    assert_eq!(
        cached_cold, uncached,
        "cold cached run diverged from uncached"
    );
    assert_eq!(
        cached_warm, uncached,
        "warm cached run diverged from uncached"
    );
    assert_eq!(
        uncached[0],
        Err(Errno::ELOOP),
        "loop must ELOOP in all modes"
    );
    assert_eq!(uncached[1], Ok(b"chained".to_vec()));
    assert_eq!(
        uncached[2],
        Err(Errno::ELOOP),
        "34 hops exceed the 32-hop budget"
    );
}

// --- AVC ---------------------------------------------------------------------

/// A cacheable test policy with an explicit deny set and a manually bumped
/// epoch — lets us exercise the kernel/policy epoch protocol without the
/// full SHILL sandbox. Genuinely `Sync` (lock + atomic): kernels are shared
/// across session threads now.
#[derive(Default)]
struct TogglePolicy {
    denied: shill_vfs::sync::Mutex<HashSet<NodeId>>,
    epoch: std::sync::atomic::AtomicU64,
}

impl TogglePolicy {
    fn deny(&self, node: NodeId) {
        self.denied.lock().insert(node);
        // Authority shrank: honor the cache-epoch contract.
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn allow(&self, node: NodeId) {
        // Authority only grows: no bump required.
        self.denied.lock().remove(&node);
    }
}

impl MacPolicy for TogglePolicy {
    fn name(&self) -> &str {
        "toggle"
    }

    fn decisions_cacheable(&self) -> bool {
        true
    }

    fn cache_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn vnode_check(&self, _ctx: MacCtx, node: NodeId, _op: &VnodeOp<'_>) -> SysResult<()> {
        if self.denied.lock().contains(&node) {
            Err(Errno::EACCES)
        } else {
            Ok(())
        }
    }
}

#[test]
fn avc_caches_allows_and_respects_policy_epoch() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let node = k.fs.resolve_abs("/data/f").unwrap();
    let policy = Arc::new(TogglePolicy::default());
    k.register_policy(policy.clone());

    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..20 {
        k.read(pid, fd, 1).unwrap();
    }
    let warm = k.stats.snapshot();
    assert!(
        warm.avc_hits >= 19,
        "repeat reads must be AVC hits, got {}",
        warm.avc_hits
    );

    // Revoke: the policy denies the node and bumps its epoch; the very next
    // read must reach the policy and fail despite the warm cache.
    policy.deny(node);
    assert_eq!(k.read(pid, fd, 1).unwrap_err(), Errno::EACCES);

    // Re-allow (monotone growth, no bump needed): works again.
    policy.allow(node);
    assert!(k.read(pid, fd, 1).is_ok());
}

#[test]
fn policy_attach_flushes_avc() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let node = k.fs.resolve_abs("/data/f").unwrap();
    k.register_policy(Arc::new(NullPolicy));
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd, 1).unwrap(); // warm allow under NullPolicy alone
    assert!(k.avc().entry_count() > 0);

    // Attach a denying policy: the stale allow must not short-circuit it.
    let toggle = Arc::new(TogglePolicy::default());
    toggle.deny(node);
    k.register_policy(toggle);
    assert_eq!(k.read(pid, fd, 1).unwrap_err(), Errno::EACCES);
}

#[test]
fn policy_detach_flushes_avc_and_uncacheable_policy_disables_it() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();

    /// Default-cacheability check: a policy that does not opt in.
    struct Opaque;
    impl MacPolicy for Opaque {
        fn name(&self) -> &str {
            "opaque"
        }
    }

    k.register_policy(Arc::new(NullPolicy));
    k.register_policy(Arc::new(Opaque));
    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    let snap = k.stats.snapshot();
    assert_eq!(
        snap.avc_hits, 0,
        "an uncacheable policy must disable the AVC"
    );
    assert_eq!(snap.avc_misses, 0);

    // Detach it: caching resumes (and the flush counter moved).
    assert!(k.unregister_policy("opaque"));
    k.stats.reset();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    assert!(k.stats.snapshot().avc_hits > 0);
}

#[test]
fn process_exit_drops_subject_entries() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.register_policy(Arc::new(NullPolicy));
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd, 1).unwrap();
    assert!(k.avc().entry_count() > 0);
    k.exit(pid, 0);
    assert_eq!(
        k.avc().entry_count(),
        0,
        "exiting subject's verdicts must be dropped"
    );
}

#[test]
fn avc_sysctl_toggle() {
    let (mut k, pid) = setup();
    k.fs.put_file("/data/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.register_policy(Arc::new(NullPolicy));
    k.sysctl_write(pid, SYSCTL_AVC, "0").unwrap();
    assert!(!k.cache_enabled().1);
    k.stats.reset();
    let fd = k.open(pid, "/data/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    for _ in 0..5 {
        k.read(pid, fd, 1).unwrap();
    }
    let snap = k.stats.snapshot();
    assert_eq!(snap.avc_hits, 0);
    assert!(
        snap.mac_vnode_checks >= 5,
        "with the AVC off every check reaches the policy"
    );
    k.sysctl_write(pid, SYSCTL_AVC, "1").unwrap();
    assert!(k.cache_enabled().1);
}

#[test]
fn cache_sysctls_reject_malformed_values() {
    let (mut k, pid) = setup();
    for bad in ["off", "false", "banana", "", "2"] {
        assert_eq!(
            k.sysctl_write(pid, SYSCTL_AVC, bad).unwrap_err(),
            Errno::EINVAL,
            "value {bad:?} must be rejected"
        );
        assert_eq!(
            k.sysctl_write(pid, SYSCTL_DCACHE, bad).unwrap_err(),
            Errno::EINVAL
        );
    }
    // A failed write changes neither the cache state nor the stored knob.
    assert_eq!(k.cache_enabled(), (true, true));
    assert_eq!(k.sysctl_read(pid, SYSCTL_AVC).unwrap(), "1");
    // Whitespace-tolerant well-formed values still work.
    k.sysctl_write(pid, SYSCTL_AVC, " 0 ").unwrap();
    assert!(!k.cache_enabled().1);
}

// --- negative dcache entries -------------------------------------------------

#[test]
fn negative_dcache_caches_absent_names_until_create() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/probe", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.stats.reset();
    // First probe scans and records the absence.
    assert_eq!(
        k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
        Errno::ENOENT
    );
    let after_first = k.stats.snapshot();
    assert_eq!(after_first.dcache_neg_hits, 0);
    // Re-probes answer from the negative entry: no new directory scan of
    // /probe (the walk of "probe" in "/" still hits positively).
    for _ in 0..5 {
        assert_eq!(
            k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
            Errno::ENOENT
        );
    }
    let after = k.stats.snapshot();
    assert_eq!(after.dcache_neg_hits, 5, "absent name answered from cache");
    assert_eq!(
        after.dir_scans, after_first.dir_scans,
        "no further scans for the cached absence"
    );
    // Creating the name invalidates the negative entry immediately.
    k.fs.put_file(
        "/probe/ghost",
        b"now real",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    let st = k.fstatat(pid, None, "/probe/ghost", true).unwrap();
    assert_eq!(st.size, 8);
}

#[test]
fn negative_dcache_invalidated_by_rename_into_place() {
    let (mut k, pid) = setup();
    k.fs.put_file("/dir/real", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    // Cache the absence of /dir/target.
    assert_eq!(
        k.fstatat(pid, None, "/dir/target", true).unwrap_err(),
        Errno::ENOENT
    );
    k.renameat(pid, None, "/dir/real", None, "/dir/target")
        .unwrap();
    assert!(
        k.fstatat(pid, None, "/dir/target", true).is_ok(),
        "rename into place must kill the negative entry"
    );
}

#[test]
fn negative_dcache_inert_when_disabled() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/probe", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.set_cache_enabled(false, false);
    k.stats.reset();
    for _ in 0..3 {
        assert_eq!(
            k.fstatat(pid, None, "/probe/ghost", true).unwrap_err(),
            Errno::ENOENT
        );
    }
    let snap = k.stats.snapshot();
    assert_eq!(snap.dcache_neg_hits, 0);
    assert!(snap.dir_scans >= 3, "every probe scans with the cache off");
}

// --- pipe/socket access vectors ---------------------------------------------

/// Cacheable policy that counts how many pipe/socket checks actually reach
/// it (the AVC should absorb repeats). Atomic counters: the kernel is
/// shared across session threads now, so test policies are `Sync` for real
/// rather than by unsafe assertion.
#[derive(Default)]
struct CountingPolicy {
    pipe_checks: std::sync::atomic::AtomicU64,
    socket_checks: std::sync::atomic::AtomicU64,
    epoch: std::sync::atomic::AtomicU64,
}

impl CountingPolicy {
    fn pipe_count(&self) -> u64 {
        self.pipe_checks.load(std::sync::atomic::Ordering::Relaxed)
    }
    fn socket_count(&self) -> u64 {
        self.socket_checks
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl MacPolicy for CountingPolicy {
    fn name(&self) -> &str {
        "counting"
    }
    fn decisions_cacheable(&self) -> bool {
        true
    }
    fn cache_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Relaxed)
    }
    fn pipe_check(
        &self,
        _ctx: MacCtx,
        _pipe: shill_kernel::ObjId,
        _op: shill_kernel::PipeOp,
    ) -> SysResult<()> {
        self.pipe_checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
    fn socket_check(
        &self,
        _ctx: MacCtx,
        _sock: shill_kernel::ObjId,
        _op: &shill_kernel::SocketOp,
    ) -> SysResult<()> {
        self.socket_checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn avc_caches_pipe_data_path_verdicts() {
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    let (r, w) = k.pipe(pid).unwrap();
    k.stats.reset();
    for _ in 0..10 {
        k.write(pid, w, b"x").unwrap();
        k.read(pid, r, 1).unwrap();
    }
    // First write and first read consult the policy; the rest are AVC hits.
    assert_eq!(policy.pipe_count(), 2);
    assert_eq!(k.stats.snapshot().avc_hits, 18);
    // An epoch bump (authority shrank) invalidates the cached vectors.
    policy
        .epoch
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    k.write(pid, w, b"y").unwrap();
    assert_eq!(policy.pipe_count(), 3);
}

#[test]
fn avc_caches_socket_send_recv_but_not_lifecycle() {
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    let addr = shill_kernel::SockAddr::Inet {
        host: "peer".into(),
        port: 80,
    };
    k.net
        .register_remote(addr.clone(), Box::new(|_| b"pong".to_vec()));
    let fd = k.socket(pid, shill_kernel::SockDomain::Inet).unwrap();
    k.connect(pid, fd, addr.clone()).unwrap();
    let base = policy.socket_count(); // create + connect reached policy
    assert_eq!(base, 2);
    for _ in 0..5 {
        k.write(pid, fd, b"ping").unwrap();
        let _ = k.read(pid, fd, 16);
    }
    // One Send and one Recv consult; the rest hit the AVC.
    assert_eq!(policy.socket_count(), base + 2);
    // Connect is address-carrying: a second connect consults again.
    let fd2 = k.socket(pid, shill_kernel::SockDomain::Inet).unwrap();
    k.connect(pid, fd2, addr).unwrap();
    assert_eq!(policy.socket_count(), base + 4);
    // Closing the socket drops its cached vectors.
    let before = k.avc().entry_count();
    k.close(pid, fd).unwrap();
    assert!(k.avc().entry_count() < before);
}

#[test]
fn uncacheable_policy_keeps_pipe_checks_on_slow_path() {
    struct Opaque2;
    impl MacPolicy for Opaque2 {
        fn name(&self) -> &str {
            "opaque2"
        }
    }
    let (mut k, pid) = setup();
    let policy = Arc::new(CountingPolicy::default());
    k.register_policy(policy.clone());
    k.register_policy(Arc::new(Opaque2));
    let (r, w) = k.pipe(pid).unwrap();
    for _ in 0..4 {
        k.write(pid, w, b"x").unwrap();
        k.read(pid, r, 1).unwrap();
    }
    assert_eq!(
        policy.pipe_count(),
        8,
        "an opaque policy in the stack disables pipe-vector caching"
    );
}

// --- flush accounting and capacity boundaries (ISSUE 3 satellites) -----------

/// `avc_flushes` counts only flushes that dropped live cached verdicts:
/// attaching to an empty cache, disabled→disabled writes, and empty-cache
/// toggles must not inflate it.
#[test]
fn avc_flushes_count_only_live_flushes() {
    let (mut k, pid) = setup();
    k.fs.put_file("/a/f", b"xy", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    // Attach to an empty cache: no live verdicts dropped, no flush counted.
    k.register_policy(Arc::new(NullPolicy));
    assert_eq!(k.stats.snapshot().avc_flushes, 0);

    // Warm the AVC.
    let fd = k.open(pid, "/a/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.pread(pid, fd, 0, 1).unwrap();
    assert!(k.avc().entry_count() > 0);

    // Disabling with live entries: exactly one counted flush.
    k.set_cache_enabled(true, false);
    assert_eq!(k.stats.snapshot().avc_flushes, 1);

    // disabled→disabled, disabled→enabled: nothing to drop, no count.
    k.set_cache_enabled(true, false);
    k.set_cache_enabled(true, true);
    assert_eq!(k.stats.snapshot().avc_flushes, 1);

    // enabled→disabled with an *empty* cache: still nothing dropped.
    k.set_cache_enabled(true, false);
    assert_eq!(k.stats.snapshot().avc_flushes, 1);
    k.set_cache_enabled(true, true);

    // Detach with an empty cache: not a counted flush either.
    assert!(k.unregister_policy("null"));
    assert_eq!(k.stats.snapshot().avc_flushes, 1);

    // Re-attach (empty: uncounted), re-warm, then detach: counted.
    k.register_policy(Arc::new(NullPolicy));
    assert_eq!(k.stats.snapshot().avc_flushes, 1);
    k.pread(pid, fd, 0, 1).unwrap();
    assert!(k.avc().entry_count() > 0);
    assert!(k.unregister_policy("null"));
    assert_eq!(k.stats.snapshot().avc_flushes, 2);
}

/// Drive the dcache past its 4096-directory capacity through real path
/// walks: with every cached generation live the fallback is a (counted)
/// full purge and resolution stays correct; with stale generations present
/// the eviction pass drops exactly those, which `dcache_evictions` exposes.
#[test]
fn dcache_capacity_boundary_under_real_walks() {
    const DIRS: usize = 4000;
    const STALE: usize = 500;
    const FRESH: usize = 500;
    let (mut k, pid) = setup();
    for i in 0..DIRS {
        k.fs.put_file(
            &format!("/big/d{i}/f"),
            b"x",
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
    }

    // Pass 1: walk a file in every directory. 4000 leaf dirs (+ /, /big)
    // stay under capacity: no pressure events.
    let first: Vec<NodeId> = (0..DIRS)
        .map(|i| {
            k.fstatat(pid, None, &format!("/big/d{i}/f"), true)
                .unwrap()
                .node
        })
        .collect();
    k.fs.dcache().reset_stats();

    // Mutate the first 500 directories (creating a sibling bumps their
    // generations): their cached entries are now stale.
    for i in 0..STALE {
        k.fs.put_file(
            &format!("/big/d{i}/g"),
            b"y",
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
    }

    // Walk files in 500 *new* directories: the cache crosses 4096 cached
    // directories part-way through, and the pressure pass must evict the
    // 500 stale ones instead of purging the live set.
    for i in 0..FRESH {
        k.fs.put_file(
            &format!("/big/e{i}/f"),
            b"z",
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        k.fstatat(pid, None, &format!("/big/e{i}/f"), true).unwrap();
    }
    assert_eq!(
        k.dcache_evictions(),
        STALE as u64,
        "capacity pressure must drop exactly the stale generations"
    );
    assert_eq!(
        k.fs.dcache().stats().purges,
        0,
        "stale eviction freed room; no full purge"
    );

    // Correctness across the pressure event: every original file still
    // resolves to the same node, including the stale-evicted directories.
    for i in (0..DIRS).step_by(97) {
        let st = k.fstatat(pid, None, &format!("/big/d{i}/f"), true).unwrap();
        assert_eq!(st.node, first[i], "d{i}/f resolved differently");
    }

    // All-live pressure: re-walk everything (refilling the cache), then keep
    // adding new directories until the capacity check fires with no stale
    // generations anywhere — the fallback full purge must fire and count.
    for i in 0..DIRS {
        k.fstatat(pid, None, &format!("/big/d{i}/f"), true).unwrap();
    }
    let mut extra = 0usize;
    while k.fs.dcache().stats().purges == 0 {
        k.fs.put_file(
            &format!("/big/p{extra}/f"),
            b"w",
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        k.fstatat(pid, None, &format!("/big/p{extra}/f"), true)
            .unwrap();
        extra += 1;
        assert!(extra < 8192, "purge never fired under all-live pressure");
    }
    // And resolution is still correct afterwards.
    let st = k.fstatat(pid, None, "/big/d0/f", true).unwrap();
    assert_eq!(st.node, first[0]);
}
