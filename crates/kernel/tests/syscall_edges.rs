//! Edge cases of the syscall surface: symlink handling in the path walker,
//! rename semantics, cwd bookkeeping, and descriptor lifetime.

use shill_kernel::{Fd, Kernel, OpenFlags, Pid};
use shill_vfs::{Cred, Errno, Gid, Mode, Uid};

fn setup() -> (Kernel, Pid) {
    let mut k = Kernel::new();
    let pid = k.spawn_user(Cred::ROOT);
    (k, pid)
}

#[test]
fn symlink_loop_detected_in_walker() {
    let (mut k, pid) = setup();
    k.symlinkat(pid, "/b", None, "/a").unwrap();
    k.symlinkat(pid, "/a", None, "/b").unwrap();
    assert_eq!(
        k.open(pid, "/a", OpenFlags::RDONLY, Mode(0)).unwrap_err(),
        Errno::ELOOP
    );
}

#[test]
fn symlink_chain_resolves_within_budget() {
    let (mut k, pid) = setup();
    k.fs.put_file("/real.txt", b"content", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let mut prev = "/real.txt".to_string();
    for i in 0..10 {
        let link = format!("/link{i}");
        k.symlinkat(pid, &prev, None, &link).unwrap();
        prev = link;
    }
    let fd = k.open(pid, &prev, OpenFlags::RDONLY, Mode(0)).unwrap();
    assert_eq!(k.read(pid, fd, 100).unwrap(), b"content");
}

#[test]
fn relative_symlinks_resolve_from_their_directory() {
    let (mut k, pid) = setup();
    k.fs.put_file("/dir/target.txt", b"T", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.symlinkat(pid, "target.txt", None, "/dir/alias").unwrap();
    let fd = k
        .open(pid, "/dir/alias", OpenFlags::RDONLY, Mode(0))
        .unwrap();
    assert_eq!(k.read(pid, fd, 10).unwrap(), b"T");
}

#[test]
fn symlinks_in_the_middle_of_paths_follow_even_with_nofollow() {
    let (mut k, pid) = setup();
    k.fs.put_file("/real/dir/f.txt", b"F", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.symlinkat(pid, "/real", None, "/sym").unwrap();
    let mut flags = OpenFlags::RDONLY;
    flags.nofollow = true; // only applies to the *final* component
    let fd = k.open(pid, "/sym/dir/f.txt", flags, Mode(0)).unwrap();
    assert_eq!(k.read(pid, fd, 10).unwrap(), b"F");
}

#[test]
fn walking_through_a_file_is_enotdir() {
    let (mut k, pid) = setup();
    k.fs.put_file("/plain.txt", b"", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert_eq!(
        k.open(pid, "/plain.txt/child", OpenFlags::RDONLY, Mode(0))
            .unwrap_err(),
        Errno::ENOTDIR
    );
}

#[test]
fn rename_between_directories_via_syscall() {
    let (mut k, pid) = setup();
    k.fs.put_file("/src/f.txt", b"move me", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.mkdir_p("/dst", Mode(0o755), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.renameat(pid, None, "/src/f.txt", None, "/dst/g.txt")
        .unwrap();
    let fd = k
        .open(pid, "/dst/g.txt", OpenFlags::RDONLY, Mode(0))
        .unwrap();
    assert_eq!(k.read(pid, fd, 10).unwrap(), b"move me");
    assert_eq!(
        k.open(pid, "/src/f.txt", OpenFlags::RDONLY, Mode(0))
            .unwrap_err(),
        Errno::ENOENT
    );
}

#[test]
fn getcwd_tracks_chdir_and_fchdir() {
    let (mut k, pid) = setup();
    k.fs.mkdir_p("/deep/er/est", Mode(0o755), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.chdir(pid, "/deep/er").unwrap();
    assert_eq!(k.getcwd(pid).unwrap(), "/deep/er");
    let fd = k.open(pid, "est", OpenFlags::dir(), Mode(0)).unwrap();
    k.fchdir(pid, fd).unwrap();
    assert_eq!(k.getcwd(pid).unwrap(), "/deep/er/est");
    // Relative opens resolve against the new cwd.
    k.fs.put_file("/deep/er/est/x", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert!(k.open(pid, "x", OpenFlags::RDONLY, Mode(0)).is_ok());
}

#[test]
fn chdir_to_file_is_enotdir() {
    let (mut k, pid) = setup();
    k.fs.put_file("/f", b"", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert_eq!(k.chdir(pid, "/f").unwrap_err(), Errno::ENOTDIR);
}

#[test]
fn unlinked_open_file_remains_readable_via_fd() {
    let (mut k, pid) = setup();
    k.fs.put_file(
        "/tmp/data",
        b"still here",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    let fd = k
        .open(pid, "/tmp/data", OpenFlags::RDONLY, Mode(0))
        .unwrap();
    k.unlinkat(pid, None, "/tmp/data", false).unwrap();
    assert_eq!(k.read(pid, fd, 100).unwrap(), b"still here");
    // After close, the node is reclaimed.
    let node = k.process(pid).unwrap().fd_node(fd).unwrap();
    k.close(pid, fd).unwrap();
    assert!(!k.fs.exists(node));
}

#[test]
fn exclusive_create_detects_existing() {
    let (mut k, pid) = setup();
    let mut flags = OpenFlags::creat_trunc_w();
    flags.exclusive = true;
    assert!(k.open(pid, "/tmp/x", flags, Mode(0o644)).is_ok());
    assert_eq!(
        k.open(pid, "/tmp/x", flags, Mode(0o644)).unwrap_err(),
        Errno::EEXIST
    );
}

#[test]
fn directory_opens_reject_write() {
    let (mut k, pid) = setup();
    assert_eq!(
        k.open(pid, "/tmp", OpenFlags::wronly(), Mode(0))
            .unwrap_err(),
        Errno::EISDIR
    );
    let mut fl = OpenFlags::RDONLY;
    fl.directory = true;
    k.fs.put_file("/tmp/f", b"", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    assert_eq!(
        k.open(pid, "/tmp/f", fl, Mode(0)).unwrap_err(),
        Errno::ENOTDIR
    );
}

#[test]
fn stdio_transfer_survives_exec_roundtrip() {
    let (mut k, pid) = setup();
    k.register_exec(
        "greeter",
        std::sync::Arc::new(|k: &mut Kernel, pid: Pid, _argv: &[String]| {
            k.append_fd(pid, Fd::STDOUT, b"hi from child")
                .map(|_| 0)
                .unwrap_or(1)
        }),
    );
    k.fs.put_file(
        "/bin/greeter",
        b"#!SIMBIN greeter\n",
        Mode(0o755),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    let (r, w) = k.pipe(pid).unwrap();
    let child = k.fork(pid).unwrap();
    k.transfer_fd(pid, w, child, Fd::STDOUT).unwrap();
    let st = k
        .exec_at(child, None, "/bin/greeter", &["greeter".into()])
        .unwrap();
    k.exit(child, st);
    k.waitpid(pid, child).unwrap();
    k.close(pid, w).unwrap();
    assert_eq!(k.read(pid, r, 100).unwrap(), b"hi from child");
    // The child's exit closed its copy; pipe EOF after draining.
    assert_eq!(k.read(pid, r, 100).unwrap(), b"");
}

#[test]
fn stats_count_mac_checks_only_with_policy() {
    let (mut k, pid) = setup();
    k.fs.put_file("/tmp/f", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    let fd = k.open(pid, "/tmp/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd, 1).unwrap();
    assert_eq!(
        k.stats.snapshot().mac_vnode_checks,
        0,
        "no policy registered"
    );
    k.register_policy(std::sync::Arc::new(shill_kernel::NullPolicy));
    let fd2 = k.open(pid, "/tmp/f", OpenFlags::RDONLY, Mode(0)).unwrap();
    k.read(pid, fd2, 1).unwrap();
    assert!(k.stats.snapshot().mac_vnode_checks > 0);
}

#[test]
fn deep_relative_paths_via_dirfd() {
    let (mut k, pid) = setup();
    k.fs.put_file(
        "/a/b/c/d/e.txt",
        b"deep",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    let dirfd = k.open(pid, "/a/b", OpenFlags::dir(), Mode(0)).unwrap();
    let fd = k
        .openat(pid, Some(dirfd), "c/d/e.txt", OpenFlags::RDONLY, Mode(0))
        .unwrap();
    assert_eq!(k.read(pid, fd, 10).unwrap(), b"deep");
    let st = k.fstatat(pid, Some(dirfd), "c/d", true).unwrap();
    assert!(st.ftype.is_dir());
}
