//! Batched syscall submission (io_uring-style) across the runtime→kernel
//! boundary.
//!
//! SHILL's enforcement model (paper §2.3) makes every language operation
//! pay a full kernel round-trip: a ulimit charge, a MAC subject-context
//! construction, and a `namei` path walk. PR 1's caches cut the
//! per-*component* cost; this module cuts the per-*call* cost. A
//! [`SyscallBatch`] carries a sequence of [`BatchEntry`] operations that
//! [`crate::Kernel::submit_batch`] executes **in submission order** with
//! three amortizations:
//!
//! * **One ulimit charge per batch.** The cpu-tick budget is read once at
//!   submit time; entries consume ticks from the pre-read budget (same
//!   `EAGAIN` trip points as sequential execution) and the total is written
//!   back once.
//! * **One MAC context per batch.** No batch entry can change the subject's
//!   credentials, so the `MacCtx` built at submit time is reused by every
//!   check.
//! * **In-batch `namei` prefix reuse.** Entries naming paths under a common
//!   dirname reuse the first entry's dirname resolution. Each reused
//!   prefix is fenced by the PR 1 invalidation machinery: every directory
//!   stepped through is revalidated against its dcache generation and the
//!   policy stack's combined AVC epoch; a mid-batch create/unlink/rename or
//!   authority-shrinking event falls back to the full walk. Reuse is
//!   enabled only when every loaded policy opted into verdict caching
//!   ([`crate::mac::MacPolicy::decisions_cacheable`]) — the same contract
//!   the AVC itself relies on — and the skipped components' `post_lookup`
//!   propagation notifications are replayed so label state evolves exactly
//!   as on the full walk.
//!
//! What prefix reuse skips, precisely: the intermediate components'
//! directory-entry scans, MAC `Lookup` re-checks (fenced by the combined
//! epoch, exactly like an AVC hit), **and their DAC Exec re-checks**. The
//! DAC skip is sound only because of a *vocabulary invariant*, not a
//! runtime fence: no batch entry can change credentials or DAC metadata
//! (no setuid, no chmod/chown entries exist), so directory modes observed
//! by the first walk cannot change before the batch ends. Anyone adding a
//! metadata-mutating entry must also clear [`BatchState::prefixes`] after
//! executing it — otherwise a later entry could resolve through a
//! directory whose search permission was just revoked, diverging from
//! [`crate::Kernel::run_sequential`]. Everything else is unchanged: the
//! final path component always takes the full DAC + MAC path, data-path
//! interposition (`Read`/`Write` checks per chunk) fires per operation
//! exactly as in sequential execution, and denials are never cached.
//! Observable equivalence with sequential execution — same results, same
//! errnos, same audit denials — is a test target
//! (`tests/batch_equivalence.rs`).
//!
//! ## Slot references and dependencies
//!
//! Entries can consume earlier entries' outputs without a kernel round-trip
//! in between: a descriptor position takes [`BatchFd::FromEntry`] (the fd
//! produced by an earlier `Open`), a data argument takes
//! [`BatchArg::OutputOf`] (the bytes produced by an earlier read-class
//! entry). References must point **backward** (producer index < consumer
//! index), which makes cycles unrepresentable; forward, out-of-range, or
//! type-mismatched references fail the whole submission with `EINVAL`
//! before anything executes. A batch may also declare explicit ordering
//! edges ([`SyscallBatch::after`]) between entries that share state the
//! kernel cannot see (say, two writes that must land in order).
//!
//! Slot references and declared edges together form the batch's dependency
//! DAG ([`crate::sched::BatchDag`]). `submit_batch` and `run_sequential`
//! execute the DAG in submission order (always a valid topological order,
//! since edges point backward); [`crate::Kernel::submit_scheduled`]
//! executes it **out of order** in dependency waves — see [`crate::sched`]
//! for the completion model. All three are observationally equivalent on
//! batches whose conflicting entries are ordered by the DAG.
//!
//! Failure semantics are selected per batch by [`FailMode`]. A failed (or
//! cancelled) entry always poisons its transitive *data* dependents — their
//! input does not exist, so they report `ECANCELED` without executing.
//! Under the default [`FailMode::Continue`] that is the only propagation:
//! declared ordering edges still just order. [`FailMode::Abort`] widens
//! poisoning to declared edges too — each dependency cone behaves like an
//! `&&` chain — and, for a batch with no slot references and no declared
//! edges, the legacy chain semantics are preserved by treating the batch
//! as one linear dependency chain (the first failure cancels every later
//! entry, which never executes).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use shill_vfs::sync::Mutex;
use shill_vfs::{Errno, Mode, NodeId, Stat, SysResult};

use crate::kernel::Kernel;
use crate::mac::MacCtx;
use crate::sched::BatchDag;
use crate::stats::KernelStats;
use crate::types::{Fd, OpenFlags, Pid};

/// Read/write chunk used by the fused file operations.
const FUSED_CHUNK: usize = 65536;

/// What happens to the rest of the batch when an entry fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// Entries are independent: a failure yields its errno in that slot and
    /// later entries still execute (the common case for stat sweeps) —
    /// except transitive *data* dependents of the failure, whose input is
    /// missing and who therefore report `ECANCELED` without executing.
    #[default]
    Continue,
    /// `&&`-chain semantics per dependency cone: the first failure cancels
    /// every transitive dependent (data *and* declared edges), which
    /// reports `ECANCELED` without executing. A batch with no edges at all
    /// is treated as one linear chain, preserving the pre-scheduler
    /// behaviour of cancelling every later entry.
    Abort,
}

/// A descriptor position in a batch entry: either a descriptor the
/// submitter already holds, or a slot reference to the fd produced by an
/// earlier `Open` entry in the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFd {
    /// A descriptor the submitting process already holds.
    Fd(Fd),
    /// The descriptor produced by entry `i` of this batch (`i` must be an
    /// earlier [`BatchEntry::Open`]; validated at submission).
    FromEntry(usize),
}

impl From<Fd> for BatchFd {
    fn from(fd: Fd) -> BatchFd {
        BatchFd::Fd(fd)
    }
}

/// A data argument in a batch entry: literal bytes, or a slot reference to
/// the data produced by an earlier read-class entry in the same batch.
/// `OutputOf` is what fuses whole pipelines — a copy is
/// `[ReadFile src, WriteFile { data: OutputOf(0), .. }]` in one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchArg {
    /// Literal bytes supplied by the submitter.
    Bytes(Vec<u8>),
    /// The bytes produced by entry `i` of this batch (`i` must be an
    /// earlier `Read`/`Pread`/`Readv`/`Preadv`/`ReadFile`; validated at
    /// submission).
    OutputOf(usize),
}

impl From<Vec<u8>> for BatchArg {
    fn from(data: Vec<u8>) -> BatchArg {
        BatchArg::Bytes(data)
    }
}

impl From<&[u8]> for BatchArg {
    fn from(data: &[u8]) -> BatchArg {
        BatchArg::Bytes(data.to_vec())
    }
}

/// One operation in a batch. Path-carrying entries resolve relative to
/// `dirfd` (or the cwd when `None`), exactly like their `*at` syscall
/// counterparts.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchEntry {
    /// `openat` → [`BatchOut::Fd`].
    Open {
        /// Base directory for relative paths (`None` = cwd).
        dirfd: Option<BatchFd>,
        /// Path to open, resolved like `openat`.
        path: String,
        /// Open flags (`RDONLY`, `creat_trunc_w`, …).
        flags: OpenFlags,
        /// Creation mode when the flags create.
        mode: Mode,
    },
    /// `close` → [`BatchOut::Unit`].
    Close {
        /// Descriptor to close.
        fd: BatchFd,
    },
    /// `read` at the descriptor offset → [`BatchOut::Data`].
    Read {
        /// Descriptor to read from.
        fd: BatchFd,
        /// Maximum bytes to read.
        len: usize,
    },
    /// Positional `pread` → [`BatchOut::Data`].
    Pread {
        /// Descriptor to read from.
        fd: BatchFd,
        /// File offset to read at (descriptor offset unchanged).
        offset: u64,
        /// Maximum bytes to read.
        len: usize,
    },
    /// Vectored read at the descriptor offset: one chunk per len, stopping
    /// at EOF → [`BatchOut::Data`] (concatenated).
    Readv {
        /// Descriptor to read from.
        fd: BatchFd,
        /// Chunk lengths, one read per element.
        lens: Vec<usize>,
    },
    /// Vectored positional read → [`BatchOut::Data`] (concatenated).
    Preadv {
        /// Descriptor to read from.
        fd: BatchFd,
        /// Starting file offset.
        offset: u64,
        /// Chunk lengths, one read per element.
        lens: Vec<usize>,
    },
    /// `write` at the descriptor offset → [`BatchOut::Written`].
    Write {
        /// Descriptor to write to.
        fd: BatchFd,
        /// Bytes to write (literal or slot reference).
        data: BatchArg,
    },
    /// Positional `pwrite` → [`BatchOut::Written`].
    Pwrite {
        /// Descriptor to write to.
        fd: BatchFd,
        /// File offset to write at (descriptor offset unchanged).
        offset: u64,
        /// Bytes to write (literal or slot reference).
        data: BatchArg,
    },
    /// Vectored write at the descriptor offset → [`BatchOut::Written`]
    /// (total).
    Writev {
        /// Descriptor to write to.
        fd: BatchFd,
        /// Buffers written back to back.
        bufs: Vec<Vec<u8>>,
    },
    /// Append regardless of offset → [`BatchOut::Written`].
    Append {
        /// Descriptor to append through.
        fd: BatchFd,
        /// Bytes to append (literal or slot reference).
        data: BatchArg,
    },
    /// `ftruncate` → [`BatchOut::Unit`].
    Ftruncate {
        /// Descriptor whose file is truncated.
        fd: BatchFd,
        /// New length.
        len: u64,
    },
    /// `fstat` → [`BatchOut::Stat`].
    Fstat {
        /// Descriptor to stat.
        fd: BatchFd,
    },
    /// `fstatat` → [`BatchOut::Stat`].
    Stat {
        /// Base directory for relative paths (`None` = cwd).
        dirfd: Option<BatchFd>,
        /// Path to stat.
        path: String,
        /// Whether a trailing symlink is followed.
        follow: bool,
    },
    /// `getdirentries` on an open directory → [`BatchOut::Names`].
    ReadDir {
        /// Open directory descriptor.
        fd: BatchFd,
    },
    /// Fused open→read-to-EOF→close → [`BatchOut::Data`]. One entry instead
    /// of N+2 calls; every per-chunk MAC `Read` check still fires.
    ReadFile {
        /// Base directory for relative paths (`None` = cwd).
        dirfd: Option<BatchFd>,
        /// Path of the file to slurp.
        path: String,
    },
    /// Fused open(create)→write→close → [`BatchOut::Written`]. With
    /// `append`, opens append-mode (creating if missing) instead of
    /// truncating.
    WriteFile {
        /// Base directory for relative paths (`None` = cwd).
        dirfd: Option<BatchFd>,
        /// Path of the file to write.
        path: String,
        /// Bytes to write (literal or slot reference).
        data: BatchArg,
        /// Creation mode when the file is created.
        mode: Mode,
        /// Append instead of truncate.
        append: bool,
    },
    /// `unlinkat` → [`BatchOut::Unit`].
    Unlink {
        /// Base directory for relative paths (`None` = cwd).
        dirfd: Option<BatchFd>,
        /// Path to remove.
        path: String,
        /// Remove a directory (`rmdir` semantics) instead of a file.
        remove_dir: bool,
    },
}

impl BatchEntry {
    /// Slot references this entry consumes, as up to two
    /// `(producer, wants_fd)` pairs (`wants_fd` distinguishes descriptor
    /// from data references). Allocation-free: an entry has at most one
    /// descriptor position and one data argument.
    pub(crate) fn slot_refs(&self) -> [Option<(usize, bool)>; 2] {
        let fd_ref = |f: &BatchFd| match f {
            BatchFd::FromEntry(i) => Some((*i, true)),
            BatchFd::Fd(_) => None,
        };
        let dir_ref = |f: &Option<BatchFd>| match f {
            Some(BatchFd::FromEntry(i)) => Some((*i, true)),
            _ => None,
        };
        let data_ref = |a: &BatchArg| match a {
            BatchArg::OutputOf(i) => Some((*i, false)),
            BatchArg::Bytes(_) => None,
        };
        match self {
            BatchEntry::Open { dirfd, .. } => [dir_ref(dirfd), None],
            BatchEntry::Close { fd }
            | BatchEntry::Read { fd, .. }
            | BatchEntry::Pread { fd, .. }
            | BatchEntry::Readv { fd, .. }
            | BatchEntry::Preadv { fd, .. }
            | BatchEntry::Writev { fd, .. }
            | BatchEntry::Ftruncate { fd, .. }
            | BatchEntry::Fstat { fd }
            | BatchEntry::ReadDir { fd } => [fd_ref(fd), None],
            BatchEntry::Write { fd, data }
            | BatchEntry::Pwrite { fd, data, .. }
            | BatchEntry::Append { fd, data } => [fd_ref(fd), data_ref(data)],
            BatchEntry::Stat { dirfd, .. }
            | BatchEntry::ReadFile { dirfd, .. }
            | BatchEntry::Unlink { dirfd, .. } => [dir_ref(dirfd), None],
            BatchEntry::WriteFile { dirfd, data, .. } => [dir_ref(dirfd), data_ref(data)],
        }
    }

    /// Whether this entry's output is a descriptor (`BatchOut::Fd`).
    pub(crate) fn produces_fd(&self) -> bool {
        matches!(self, BatchEntry::Open { .. })
    }

    /// Whether this entry's output is data (`BatchOut::Data`).
    pub(crate) fn produces_data(&self) -> bool {
        matches!(
            self,
            BatchEntry::Read { .. }
                | BatchEntry::Pread { .. }
                | BatchEntry::Readv { .. }
                | BatchEntry::Preadv { .. }
                | BatchEntry::ReadFile { .. }
        )
    }
}

/// Per-entry result payload.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOut {
    /// Side-effect-only entry completed (close, truncate, unlink).
    Unit,
    /// Descriptor produced by an `Open` entry.
    Fd(Fd),
    /// Bytes produced by a read-class entry.
    Data(Vec<u8>),
    /// Byte count produced by a write-class entry.
    Written(usize),
    /// Metadata produced by a stat-class entry.
    Stat(Stat),
    /// Directory entry names produced by `ReadDir`.
    Names(Vec<String>),
}

impl BatchOut {
    /// Extract a `Stat` payload; `EINVAL` for any other variant.
    pub fn into_stat(self) -> SysResult<Stat> {
        match self {
            BatchOut::Stat(st) => Ok(st),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Extract a data payload; `EINVAL` for any other variant.
    pub fn into_data(self) -> SysResult<Vec<u8>> {
        match self {
            BatchOut::Data(d) => Ok(d),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Extract a written-byte count; `EINVAL` for any other variant.
    pub fn into_written(self) -> SysResult<usize> {
        match self {
            BatchOut::Written(n) => Ok(n),
            _ => Err(Errno::EINVAL),
        }
    }
}

/// An ordered sequence of entries submitted as one kernel crossing, plus
/// the dependency edges that constrain out-of-order execution.
///
/// # Examples
///
/// Slot references fuse a whole open→read→copy pipeline into one
/// submission: [`BatchFd::FromEntry`] names the descriptor an earlier
/// `Open` produced, [`BatchArg::OutputOf`] the bytes an earlier read
/// produced, and neither the descriptor nor the payload ever surfaces to
/// the submitter. The explicit [`SyscallBatch::after`] edge keeps the
/// close behind the read (two users of one descriptor — a conflict the
/// kernel cannot infer from the references alone):
///
/// ```
/// use shill_kernel::{BatchArg, BatchEntry, BatchFd, BatchOut, Kernel, OpenFlags, SyscallBatch};
/// use shill_vfs::{Cred, Mode};
///
/// let mut k = Kernel::new();
/// k.fs.put_file("/tmp/src", b"payload", Mode(0o644),
///               shill_vfs::Uid::ROOT, shill_vfs::Gid::WHEEL).unwrap();
/// let pid = k.spawn_user(Cred::ROOT);
///
/// let mut batch = SyscallBatch::new(Vec::new());
/// let open = batch.push(BatchEntry::Open {
///     dirfd: None, path: "/tmp/src".into(), flags: OpenFlags::RDONLY, mode: Mode(0),
/// });
/// let read = batch.push(BatchEntry::Read { fd: BatchFd::FromEntry(open), len: 64 });
/// let copy = batch.push(BatchEntry::WriteFile {
///     dirfd: None, path: "/tmp/dst".into(), data: BatchArg::OutputOf(read),
///     mode: Mode(0o644), append: false,
/// });
/// let close = batch.push(BatchEntry::Close { fd: BatchFd::FromEntry(open) });
/// let batch = batch.after(close, read);
///
/// // One kernel crossing; the scheduler may run `copy` and `close` in
/// // either order (they conflict with nothing unordered).
/// let out = k.submit_batch(pid, &batch).unwrap();
/// assert_eq!(out[read], Ok(BatchOut::Data(b"payload".to_vec())));
/// assert_eq!(out[copy], Ok(BatchOut::Written(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SyscallBatch {
    /// The operations, in submission (slot) order.
    pub entries: Vec<BatchEntry>,
    /// What happens to dependents when an entry fails.
    pub fail_mode: FailMode,
    /// Explicit ordering edges as `(entry, depends_on)` pairs with
    /// `depends_on < entry`. Slot references add data edges implicitly;
    /// declared edges are for conflicts the kernel cannot see (two entries
    /// touching the same descriptor offset or the same path).
    pub deps: Vec<(usize, usize)>,
}

impl SyscallBatch {
    /// A batch of independent entries ([`FailMode::Continue`], no edges).
    pub fn new(entries: Vec<BatchEntry>) -> SyscallBatch {
        SyscallBatch {
            entries,
            fail_mode: FailMode::Continue,
            deps: Vec::new(),
        }
    }

    /// A one-entry batch (the fused-entry convenience shape).
    pub fn single(entry: BatchEntry) -> SyscallBatch {
        SyscallBatch::new(vec![entry])
    }

    /// A batch with `&&`-chain failure semantics ([`FailMode::Abort`]).
    pub fn aborting(entries: Vec<BatchEntry>) -> SyscallBatch {
        SyscallBatch {
            entries,
            fail_mode: FailMode::Abort,
            deps: Vec::new(),
        }
    }

    /// Declare that `entry` must execute after `on` (builder form).
    pub fn after(mut self, entry: usize, on: usize) -> SyscallBatch {
        self.deps.push((entry, on));
        self
    }

    /// Append an entry, returning its slot index (for slot references).
    pub fn push(&mut self, entry: BatchEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Whether any entry consumes another entry's output.
    pub fn uses_slots(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.slot_refs().iter().any(|r| r.is_some()))
    }
}

/// One directory step of a cached dirname resolution: where the lookup
/// happened, the dcache generation observed, and what it resolved to (for
/// replaying the `post_lookup` propagation notification).
#[derive(Debug, Clone)]
pub struct PrefixStep {
    /// Directory the component was looked up in.
    pub dir: NodeId,
    /// `dir`'s dcache generation observed by the original walk.
    pub gen: u64,
    /// The component name.
    pub name: String,
    /// What the lookup resolved to.
    pub child: NodeId,
}

/// A cached dirname resolution, valid while every step's generation and the
/// policy stack's combined epoch are unchanged.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    /// The directory containing the final component.
    pub parent: NodeId,
    /// MAC combined epoch at resolution time.
    pub epoch: u64,
    /// Every directory step the walk took (revalidated on reuse).
    pub steps: Vec<PrefixStep>,
}

/// Walk-time recording used to build a [`PrefixHit`].
#[derive(Debug, Default)]
pub struct PrefixTrace {
    /// Directory steps recorded while walking the dirname.
    pub steps: Vec<PrefixStep>,
    /// The directory containing the final component, once resolved.
    pub parent_of_last: Option<NodeId>,
    /// Set when the prefix traversed a symlink: such resolutions are never
    /// cached (the generation fence does not cover link targets).
    pub tainted: bool,
}

/// Live state of a batched submission, installed on the kernel for the
/// duration of `submit_batch` (or of one scheduler wave). `charge`, `ctx`,
/// and `namei` consult it.
pub struct BatchState {
    /// The MAC subject context, built once.
    pub ctx: MacCtx,
    /// cpu_ticks at submit time.
    pub base: u64,
    /// The subject's `max_cpu_ticks`.
    pub limit: u64,
    /// Ticks consumed so far by the batch's inner syscalls.
    pub used: AtomicU64,
    /// Whether `namei` may reuse dirname resolutions (all loaded policies
    /// opted into verdict caching, or none are loaded — and the AVC is on,
    /// since prefix reuse memoizes MAC lookup verdicts under the same
    /// contract the AVC does).
    pub reuse_prefixes: bool,
    /// start node → dirname text → resolution. Two-level so probes hash a
    /// borrowed `&str` slice of the caller's path, no allocation.
    pub prefixes: Mutex<HashMap<NodeId, HashMap<String, PrefixHit>>>,
}

/// Split a path into `(dirname, last-component)` textually, consistent with
/// `namei`'s component semantics. `None` when the path has fewer than two
/// components (nothing to reuse).
pub(crate) fn split_dirname(path: &str) -> Option<(&str, &str)> {
    let trimmed = path.trim_end_matches('/');
    let idx = trimmed.rfind('/')?;
    let (dir, last) = (&trimmed[..idx], &trimmed[idx + 1..]);
    if last.is_empty() || !dir.split('/').any(|c| !c.is_empty()) {
        return None;
    }
    Some((dir, last))
}

impl BatchState {
    /// Consume one cpu tick from the pre-read budget; trips `EAGAIN` at
    /// exactly the tick where sequential per-call charging would.
    pub fn consume_tick(&self) -> SysResult<()> {
        let used = self.used.fetch_add(1, Ordering::Relaxed) + 1;
        if self.base + used > self.limit {
            return Err(Errno::EAGAIN);
        }
        Ok(())
    }
}

/// Scope guard for the kernel's live [`BatchState`]: installing it arms the
/// amortizations, and dropping it **always** clears the state and writes
/// the consumed ticks back — including when entry execution unwinds
/// mid-batch (say, a buggy policy module panicking inside a check). Before
/// this guard existed, an unwind left `Kernel::batch` populated and every
/// later submission returned `EINVAL` as a phantom "nested batch".
pub(crate) struct BatchGuard<'a> {
    pub k: &'a mut Kernel,
    pid: Pid,
}

impl<'a> BatchGuard<'a> {
    /// Install batch state for `pid`: one ulimit accounting read, one MAC
    /// context construction. `EINVAL` if a batch is already live (no nested
    /// submissions: the amortized accounting is per-batch), `ESRCH` for a
    /// dead process.
    pub fn install(k: &'a mut Kernel, pid: Pid) -> SysResult<BatchGuard<'a>> {
        if k.batch.is_some() {
            return Err(Errno::EINVAL);
        }
        // One ulimit accounting operation for the whole installation.
        KernelStats::bump(&k.stats.charge_calls);
        let (base, limit) = {
            let p = k.process(pid)?;
            if !p.alive() {
                return Err(Errno::ESRCH);
            }
            (p.cpu_ticks, p.ulimits.max_cpu_ticks)
        };
        // One MAC context construction for the whole installation.
        KernelStats::bump(&k.stats.mac_ctx_setups);
        let ctx = MacCtx {
            pid,
            cred: k.process(pid)?.cred,
        };
        let reuse_prefixes = k.prefix_reuse_allowed();
        k.batch = Some(BatchState {
            ctx,
            base,
            limit,
            used: AtomicU64::new(0),
            reuse_prefixes,
            prefixes: Mutex::new(HashMap::new()),
        });
        Ok(BatchGuard { k, pid })
    }

    /// The MAC context built at install time.
    pub fn ctx(&self) -> MacCtx {
        self.k.batch.as_ref().expect("batch state live").ctx
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if let Some(st) = self.k.batch.take() {
            // Write the consumed ticks back in one process-table access
            // (entries that ran before an unwind stay charged).
            if let Ok(p) = self.k.process_mut(self.pid) {
                p.cpu_ticks = st.base + st.used.load(Ordering::Relaxed);
            }
        }
    }
}

impl Kernel {
    /// Submit a batch for `pid`. Entries execute in submission order (slot
    /// references and declared dependencies are honoured trivially — edges
    /// point backward); the returned vector has one slot per entry. The
    /// outer `Err` is reserved for submission-level failures (no such
    /// process, nested submission, malformed slot references).
    ///
    /// See the module docs for the amortization and equivalence contract;
    /// see [`crate::Kernel::submit_scheduled`] for the out-of-order
    /// completion model over the same batches.
    pub fn submit_batch(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
    ) -> SysResult<Vec<SysResult<BatchOut>>> {
        let dag = BatchDag::build(batch)?;
        let batch_span = self.trace_span(
            crate::trace::TraceSite::Batch,
            pid.0 as u64,
            batch.entries.len() as u64,
        );
        let (out, ctx) = {
            let guard = BatchGuard::install(self, pid)?;
            KernelStats::bump(&guard.k.stats.batches);
            let ctx = guard.ctx();
            let out = guard.k.run_entries_in_order(pid, batch, &dag, true);
            (out, ctx)
        };
        drop(batch_span);
        // One audit span per batch with per-entry outcomes and the wave
        // structure the dependency DAG implies. The in-order path has no
        // per-wave timing (waves are a layering of a sequential run):
        // `wave_ns` is empty, which policies render as zeros.
        let outcomes: Vec<Option<Errno>> = out.iter().map(|r| r.as_ref().err().copied()).collect();
        for p in self.policies() {
            p.batch_complete(ctx, &outcomes, dag.waves(), &[]);
        }
        Ok(out)
    }

    /// Submit a single (typically fused) entry: one kernel crossing, one
    /// result. The convenience wrapper the whole-file helpers build on.
    pub fn submit_single(&mut self, pid: Pid, entry: BatchEntry) -> SysResult<BatchOut> {
        self.submit_batch(pid, &SyscallBatch::single(entry))?
            .into_iter()
            .next()
            .unwrap_or(Err(Errno::EINVAL))
    }

    /// Execute the same entries through the plain sequential path: one
    /// charge and one MAC context per inner syscall, no prefix reuse, no
    /// batch audit span. Slot references and dependency poisoning are
    /// honoured identically (this is the equivalence oracle — the property
    /// suites and the ablation bench compare both `submit_batch` and
    /// `submit_scheduled` against it).
    pub fn run_sequential(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
    ) -> SysResult<Vec<SysResult<BatchOut>>> {
        if self.batch.is_some() {
            return Err(Errno::EINVAL);
        }
        if !self.process(pid)?.alive() {
            return Err(Errno::ESRCH);
        }
        let dag = BatchDag::build(batch)?;
        Ok(self.run_entries_in_order(pid, batch, &dag, false))
    }

    /// Index-order DAG execution shared by `submit_batch` (with batch state
    /// installed; `as_batch`) and `run_sequential` (without). Submission
    /// order is always a valid topological order because every edge points
    /// backward, so "execute in order, cancelling poisoned slots" realizes
    /// exactly the semantics the wave scheduler realizes out of order.
    pub(crate) fn run_entries_in_order(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
        dag: &BatchDag,
        as_batch: bool,
    ) -> Vec<SysResult<BatchOut>> {
        let mut results: Vec<Option<SysResult<BatchOut>>> = Vec::new();
        results.resize_with(batch.entries.len(), || None);
        for (i, entry) in batch.entries.iter().enumerate() {
            let r = if dag.should_cancel(i, batch.fail_mode, &results) {
                // Cancelled entries never execute: they are not counted in
                // `batch_entries` and their `ECANCELED` slot is an audit
                // cancellation, not a denial.
                Err(Errno::ECANCELED)
            } else if let Err(e) = self.fault_batch_entry(pid, i) {
                // An injected entry fault fails the slot before it runs;
                // dependents are cancelled by the normal poisoning rules —
                // a deterministic mid-batch cancellation.
                Err(e)
            } else {
                if as_batch {
                    KernelStats::bump(&self.stats.batch_entries);
                }
                // Per-entry dispatch span: this loop serves both the
                // sequential oracle and `submit_batch`, so the syscall
                // site covers every in-order execution mode.
                let _syscall_span =
                    self.trace_span(crate::trace::TraceSite::Syscall, pid.0 as u64, i as u64);
                self.exec_entry(pid, entry, &results)
            };
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Resolve a descriptor position against earlier slot results.
    /// Type/range mismatches are rejected at submission, so the fallback
    /// `EINVAL` here is defensive.
    pub(crate) fn resolve_batch_fd(
        &self,
        fd: BatchFd,
        prior: &[Option<SysResult<BatchOut>>],
    ) -> SysResult<Fd> {
        match fd {
            BatchFd::Fd(fd) => Ok(fd),
            BatchFd::FromEntry(i) => {
                KernelStats::bump(&self.stats.slot_links);
                match prior.get(i).and_then(|r| r.as_ref()) {
                    Some(Ok(BatchOut::Fd(fd))) => Ok(*fd),
                    _ => Err(Errno::EINVAL),
                }
            }
        }
    }

    pub(crate) fn resolve_batch_dirfd(
        &self,
        dirfd: &Option<BatchFd>,
        prior: &[Option<SysResult<BatchOut>>],
    ) -> SysResult<Option<Fd>> {
        match dirfd {
            None => Ok(None),
            Some(f) => self.resolve_batch_fd(*f, prior).map(Some),
        }
    }

    /// Resolve a data argument against earlier slot results, by
    /// reference: literal bytes are borrowed from the entry, `OutputOf`
    /// bytes from the producer's result slot — no payload copy on either
    /// path (the producer's slot keeps its result, so several consumers
    /// may reference the same producer).
    pub(crate) fn resolve_batch_data<'p>(
        &self,
        data: &'p BatchArg,
        prior: &'p [Option<SysResult<BatchOut>>],
    ) -> SysResult<&'p [u8]> {
        match data {
            BatchArg::Bytes(b) => Ok(b),
            BatchArg::OutputOf(i) => {
                KernelStats::bump(&self.stats.slot_links);
                match prior.get(*i).and_then(|r| r.as_ref()) {
                    Some(Ok(BatchOut::Data(d))) => Ok(d),
                    _ => Err(Errno::EINVAL),
                }
            }
        }
    }

    /// Dispatch one entry through the ordinary syscall implementations —
    /// the same code paths, checks, and audit events as sequential
    /// execution, modulo the charge/context/prefix amortizations (active
    /// only while a batch is live; see the module docs for exactly what
    /// prefix reuse elides). `prior` carries earlier slots' results for
    /// slot-reference resolution.
    pub(crate) fn exec_entry(
        &mut self,
        pid: Pid,
        entry: &BatchEntry,
        prior: &[Option<SysResult<BatchOut>>],
    ) -> SysResult<BatchOut> {
        match entry {
            BatchEntry::Open {
                dirfd,
                path,
                flags,
                mode,
            } => {
                let dirfd = self.resolve_batch_dirfd(dirfd, prior)?;
                self.openat(pid, dirfd, path, *flags, *mode)
                    .map(BatchOut::Fd)
            }
            BatchEntry::Close { fd } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.close(pid, fd).map(|_| BatchOut::Unit)
            }
            BatchEntry::Read { fd, len } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.read(pid, fd, *len).map(BatchOut::Data)
            }
            BatchEntry::Pread { fd, offset, len } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.pread(pid, fd, *offset, *len).map(BatchOut::Data)
            }
            BatchEntry::Readv { fd, lens } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let mut data = Vec::new();
                for len in lens {
                    let chunk = self.read(pid, fd, *len)?;
                    let eof = chunk.len() < *len;
                    data.extend(chunk);
                    if eof {
                        break;
                    }
                }
                Ok(BatchOut::Data(data))
            }
            BatchEntry::Preadv { fd, offset, lens } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let mut data = Vec::new();
                let mut off = *offset;
                for len in lens {
                    let chunk = self.pread(pid, fd, off, *len)?;
                    let eof = chunk.len() < *len;
                    off += chunk.len() as u64;
                    data.extend(chunk);
                    if eof {
                        break;
                    }
                }
                Ok(BatchOut::Data(data))
            }
            BatchEntry::Write { fd, data } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let data = self.resolve_batch_data(data, prior)?;
                self.write(pid, fd, data).map(BatchOut::Written)
            }
            BatchEntry::Pwrite { fd, offset, data } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let data = self.resolve_batch_data(data, prior)?;
                self.pwrite(pid, fd, *offset, data).map(BatchOut::Written)
            }
            BatchEntry::Writev { fd, bufs } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let mut n = 0usize;
                for buf in bufs {
                    n += self.write(pid, fd, buf)?;
                }
                Ok(BatchOut::Written(n))
            }
            BatchEntry::Append { fd, data } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                let data = self.resolve_batch_data(data, prior)?;
                self.append_fd(pid, fd, data).map(BatchOut::Written)
            }
            BatchEntry::Ftruncate { fd, len } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.ftruncate(pid, fd, *len).map(|_| BatchOut::Unit)
            }
            BatchEntry::Fstat { fd } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.fstat(pid, fd).map(BatchOut::Stat)
            }
            BatchEntry::Stat {
                dirfd,
                path,
                follow,
            } => {
                let dirfd = self.resolve_batch_dirfd(dirfd, prior)?;
                self.fstatat(pid, dirfd, path, *follow).map(BatchOut::Stat)
            }
            BatchEntry::ReadDir { fd } => {
                let fd = self.resolve_batch_fd(*fd, prior)?;
                self.readdirfd(pid, fd).map(BatchOut::Names)
            }
            BatchEntry::ReadFile { dirfd, path } => {
                let dirfd = self.resolve_batch_dirfd(dirfd, prior)?;
                let fd = self.openat(pid, dirfd, path, OpenFlags::RDONLY, Mode(0))?;
                let mut data = Vec::new();
                loop {
                    match self.read(pid, fd, FUSED_CHUNK) {
                        Ok(chunk) if chunk.is_empty() => break,
                        Ok(chunk) => data.extend(chunk),
                        Err(e) => {
                            let _ = self.close(pid, fd);
                            return Err(e);
                        }
                    }
                }
                self.close(pid, fd)?;
                Ok(BatchOut::Data(data))
            }
            BatchEntry::WriteFile {
                dirfd,
                path,
                data,
                mode,
                append,
            } => {
                let dirfd = self.resolve_batch_dirfd(dirfd, prior)?;
                let data = self.resolve_batch_data(data, prior)?;
                let flags = if *append {
                    let mut f = OpenFlags::append_only();
                    f.create = true;
                    f
                } else {
                    OpenFlags::creat_trunc_w()
                };
                let fd = self.openat(pid, dirfd, path, flags, *mode)?;
                match self.write(pid, fd, data) {
                    Ok(n) => {
                        self.close(pid, fd)?;
                        Ok(BatchOut::Written(n))
                    }
                    Err(e) => {
                        let _ = self.close(pid, fd);
                        Err(e)
                    }
                }
            }
            BatchEntry::Unlink {
                dirfd,
                path,
                remove_dir,
            } => {
                let dirfd = self.resolve_batch_dirfd(dirfd, prior)?;
                self.unlinkat(pid, dirfd, path, *remove_dir)
                    .map(|_| BatchOut::Unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{MacPolicy, VnodeOp};
    use shill_vfs::{Cred, Gid, Uid};

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.fs.mkdir_p("/deep/a/b/c", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        for i in 0..4 {
            k.fs.put_file(
                &format!("/deep/a/b/c/f{i}"),
                format!("file-{i}").as_bytes(),
                Mode::FILE_DEFAULT,
                Uid::ROOT,
                Gid::WHEEL,
            )
            .unwrap();
        }
        let pid = k.spawn_user(Cred::ROOT);
        (k, pid)
    }

    fn stat_entry(path: &str) -> BatchEntry {
        BatchEntry::Stat {
            dirfd: None,
            path: path.to_string(),
            follow: true,
        }
    }

    #[test]
    fn batch_matches_sequential_results() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/f1"),
            stat_entry("/deep/a/b/c/missing"),
            BatchEntry::ReadFile {
                dirfd: None,
                path: "/deep/a/b/c/f2".into(),
            },
        ]);
        let batched = k.submit_batch(pid, &batch).unwrap();
        let (mut k2, pid2) = setup();
        let sequential = k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(batched[2], Err(Errno::ENOENT));
        assert_eq!(
            batched[3],
            Ok(BatchOut::Data(b"file-2".to_vec())),
            "fused read returns contents"
        );
    }

    #[test]
    fn prefix_reuse_hits_and_charge_amortized() {
        let (mut k, pid) = setup();
        k.stats.reset();
        let batch = SyscallBatch::new(
            (0..4)
                .map(|i| stat_entry(&format!("/deep/a/b/c/f{i}")))
                .collect(),
        );
        let out = k.submit_batch(pid, &batch).unwrap();
        assert!(out.iter().all(|r| r.is_ok()));
        let st = k.stats.snapshot();
        assert_eq!(st.charge_calls, 1, "one ulimit charge for the batch");
        assert_eq!(st.mac_ctx_setups, 1, "one MAC context for the batch");
        assert_eq!(st.batch_prefix_misses, 1, "first entry walks");
        assert_eq!(st.batch_prefix_hits, 3, "later entries reuse the dirname");
    }

    #[test]
    fn mid_batch_invalidation_falls_back_to_slow_path() {
        let (mut k, pid) = setup();
        k.stats.reset();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            // Mutating /deep/a/b bumps its generation: the cached prefix
            // walked through it and must be revalidated.
            BatchEntry::Unlink {
                dirfd: None,
                path: "/deep/a/b/c".into(),
                remove_dir: true,
            },
            stat_entry("/deep/a/b/c/f1"),
        ]);
        let out = k.submit_batch(pid, &batch).unwrap();
        assert!(out[0].is_ok());
        // The directory was not empty: the unlink itself fails...
        assert_eq!(out[1], Err(Errno::ENOTEMPTY));

        // A mutation *inside the final directory* does not invalidate the
        // cached dirname (the fence is per walked directory), but the final
        // component is always re-resolved, so the ENOENT is still observed.
        let batch2 = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            BatchEntry::Unlink {
                dirfd: None,
                path: "/deep/a/b/c/f1".into(),
                remove_dir: false,
            },
            stat_entry("/deep/a/b/c/f1"),
        ]);
        let out = k.submit_batch(pid, &batch2).unwrap();
        assert!(out[0].is_ok());
        assert!(out[1].is_ok());
        assert_eq!(out[2], Err(Errno::ENOENT), "unlinked mid-batch");

        // A mutation in a directory *on the cached chain* (creating a file
        // in /deep/a/b) bumps that generation: the next probe of the
        // /deep/a/b/c dirname must fall back to the full walk.
        let batch3 = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            BatchEntry::WriteFile {
                dirfd: None,
                path: "/deep/a/b/side".into(),
                data: b"x".to_vec().into(),
                mode: Mode::FILE_DEFAULT,
                append: false,
            },
            stat_entry("/deep/a/b/c/f2"),
            stat_entry("/deep/a/b/c/f0"),
        ]);
        k.stats.reset();
        let out = k.submit_batch(pid, &batch3).unwrap();
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
        let st = k.stats.snapshot();
        // Misses: f0's first walk, the WriteFile's own dirname, and the
        // revalidation failure after the create. The final stat hits again.
        assert_eq!(
            st.batch_prefix_misses, 3,
            "invalidation forced exactly one re-walk"
        );
        assert_eq!(st.batch_prefix_hits, 1);
    }

    #[test]
    fn fail_modes() {
        let (mut k, pid) = setup();
        let entries = vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/missing"),
            stat_entry("/deep/a/b/c/f1"),
        ];
        let cont = k
            .submit_batch(pid, &SyscallBatch::new(entries.clone()))
            .unwrap();
        assert!(cont[0].is_ok());
        assert_eq!(cont[1], Err(Errno::ENOENT));
        assert!(cont[2].is_ok(), "Continue keeps going past a failure");
        let abort = k
            .submit_batch(pid, &SyscallBatch::aborting(entries))
            .unwrap();
        assert!(abort[0].is_ok());
        assert_eq!(abort[1], Err(Errno::ENOENT));
        assert_eq!(
            abort[2],
            Err(Errno::ECANCELED),
            "Abort cancels the rest like an && chain"
        );
    }

    #[test]
    fn cpu_ticks_match_sequential_and_trip_identically() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/f1"),
            stat_entry("/deep/a/b/c/f2"),
        ]);
        let (mut k2, pid2) = setup();
        k.submit_batch(pid, &batch).unwrap();
        k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(
            k.process(pid).unwrap().cpu_ticks,
            k2.process(pid2).unwrap().cpu_ticks,
            "tick accounting identical"
        );
        // With a 2-tick budget the third entry trips EAGAIN in both modes.
        for (kern, p) in [(&mut k, pid), (&mut k2, pid2)] {
            kern.set_ulimits(
                p,
                crate::types::Ulimits {
                    max_cpu_ticks: kern.process(p).unwrap().cpu_ticks + 2,
                    ..Default::default()
                },
            )
            .unwrap();
        }
        let b = k.submit_batch(pid, &batch).unwrap();
        let s = k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(b, s);
        assert_eq!(b[2], Err(Errno::EAGAIN));
    }

    #[test]
    fn nested_submission_is_rejected() {
        let (mut k, pid) = setup();
        // Simulate a live batch (as an exec handler running inside one
        // would see): a second submission must refuse rather than corrupt
        // the amortized accounting.
        k.batch = Some(BatchState {
            ctx: MacCtx {
                pid,
                cred: Cred::ROOT,
            },
            base: 0,
            limit: u64::MAX,
            used: AtomicU64::new(0),
            reuse_prefixes: true,
            prefixes: Mutex::new(HashMap::new()),
        });
        assert_eq!(
            k.submit_batch(pid, &SyscallBatch::default()).unwrap_err(),
            Errno::EINVAL
        );
        k.batch = None;
        assert!(k.submit_batch(pid, &SyscallBatch::default()).is_ok());
    }

    #[test]
    fn write_file_fusion_creates_and_appends() {
        let (mut k, pid) = setup();
        let out = k
            .submit_batch(
                pid,
                &SyscallBatch::new(vec![
                    BatchEntry::WriteFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                        data: b"one\n".to_vec().into(),
                        mode: Mode::FILE_DEFAULT,
                        append: false,
                    },
                    BatchEntry::WriteFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                        data: b"two\n".to_vec().into(),
                        mode: Mode::FILE_DEFAULT,
                        append: true,
                    },
                    BatchEntry::ReadFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                    },
                ]),
            )
            .unwrap();
        assert_eq!(out[2], Ok(BatchOut::Data(b"one\ntwo\n".to_vec())));
    }

    #[test]
    fn slot_references_fuse_an_open_read_write_close_pipeline() {
        let (mut k, pid) = setup();
        k.stats.reset();
        // copy /deep/a/b/c/f0 → /deep/a/b/c/copy in ONE submission: the
        // Open's fd feeds Read and Close, the Read's data feeds WriteFile.
        let batch = SyscallBatch::aborting(vec![
            BatchEntry::Open {
                dirfd: None,
                path: "/deep/a/b/c/f0".into(),
                flags: OpenFlags::RDONLY,
                mode: Mode(0),
            },
            BatchEntry::Read {
                fd: BatchFd::FromEntry(0),
                len: 1024,
            },
            BatchEntry::WriteFile {
                dirfd: None,
                path: "/deep/a/b/c/copy".into(),
                data: BatchArg::OutputOf(1),
                mode: Mode::FILE_DEFAULT,
                append: false,
            },
            BatchEntry::Close {
                fd: BatchFd::FromEntry(0),
            },
        ])
        .after(3, 1);
        let out = k.submit_batch(pid, &batch).unwrap();
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
        assert_eq!(out[2], Ok(BatchOut::Written(6)));
        let st = k.stats.snapshot();
        assert_eq!(st.batches, 1, "whole pipeline in one submission");
        assert_eq!(st.slot_links, 3, "two fd links + one data link");
        let copied = k
            .submit_single(
                pid,
                BatchEntry::ReadFile {
                    dirfd: None,
                    path: "/deep/a/b/c/copy".into(),
                },
            )
            .unwrap();
        assert_eq!(copied, BatchOut::Data(b"file-0".to_vec()));
    }

    #[test]
    fn malformed_slot_references_fail_the_submission() {
        let (mut k, pid) = setup();
        // Forward reference.
        let fwd = SyscallBatch::new(vec![
            BatchEntry::Read {
                fd: BatchFd::FromEntry(1),
                len: 8,
            },
            BatchEntry::Open {
                dirfd: None,
                path: "/deep/a/b/c/f0".into(),
                flags: OpenFlags::RDONLY,
                mode: Mode(0),
            },
        ]);
        assert_eq!(k.submit_batch(pid, &fwd).unwrap_err(), Errno::EINVAL);
        // Type mismatch: a Stat entry does not produce a descriptor.
        let mismatch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            BatchEntry::Read {
                fd: BatchFd::FromEntry(0),
                len: 8,
            },
        ]);
        assert_eq!(k.submit_batch(pid, &mismatch).unwrap_err(), Errno::EINVAL);
        // Self/forward dependency declarations.
        let bad_dep = SyscallBatch::new(vec![stat_entry("/deep/a/b/c/f0")]).after(0, 0);
        assert_eq!(k.submit_batch(pid, &bad_dep).unwrap_err(), Errno::EINVAL);
        // Nothing was left installed by the rejected submissions.
        assert!(k
            .submit_batch(pid, &SyscallBatch::single(stat_entry("/deep/a/b/c/f0")))
            .is_ok());
    }

    #[test]
    fn data_dependents_of_a_failure_are_poisoned_even_under_continue() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::new(vec![
            BatchEntry::ReadFile {
                dirfd: None,
                path: "/deep/a/b/c/missing".into(),
            },
            BatchEntry::WriteFile {
                dirfd: None,
                path: "/deep/a/b/c/out".into(),
                data: BatchArg::OutputOf(0),
                mode: Mode::FILE_DEFAULT,
                append: false,
            },
            stat_entry("/deep/a/b/c/f0"),
        ]);
        let out = k.submit_batch(pid, &batch).unwrap();
        assert_eq!(out[0], Err(Errno::ENOENT));
        assert_eq!(
            out[1],
            Err(Errno::ECANCELED),
            "consumer's input does not exist"
        );
        assert!(out[2].is_ok(), "unrelated entry still runs under Continue");
        assert!(
            k.fstatat(pid, None, "/deep/a/b/c/out", true).is_err(),
            "poisoned WriteFile must not have executed"
        );
        // The sequential oracle agrees.
        let (mut k2, pid2) = setup();
        assert_eq!(out, k2.run_sequential(pid2, &batch).unwrap());
    }

    /// A policy module that panics inside its Nth vnode check — the
    /// realistic way entry execution unwinds mid-batch.
    struct PanickingPolicy {
        checks_until_panic: AtomicU64,
    }

    impl MacPolicy for PanickingPolicy {
        fn name(&self) -> &str {
            "panicking"
        }

        fn vnode_check(&self, _ctx: MacCtx, _node: NodeId, _op: &VnodeOp<'_>) -> SysResult<()> {
            if self.checks_until_panic.fetch_sub(1, Ordering::Relaxed) == 1 {
                panic!("buggy policy module");
            }
            Ok(())
        }
    }

    #[test]
    fn unwind_mid_batch_clears_batch_state() {
        // Regression (ISSUE 4 satellite): before the drop-guard, a panic
        // during entry execution left `Kernel::batch` populated and every
        // later submission returned EINVAL as a phantom nested batch.
        let (mut k, pid) = setup();
        k.register_policy(std::sync::Arc::new(PanickingPolicy {
            checks_until_panic: AtomicU64::new(3),
        }));
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/f1"),
        ]);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = k.submit_batch(pid, &batch);
        }));
        assert!(unwound.is_err(), "the policy panic must surface");
        assert!(k.unregister_policy("panicking"));
        assert!(
            k.batch.is_none(),
            "drop-guard must clear batch state on unwind"
        );
        let out = k.submit_batch(pid, &batch).expect("not EINVAL");
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
    }
}
