//! Batched syscall submission (io_uring-style) across the runtime→kernel
//! boundary.
//!
//! SHILL's enforcement model (paper §2.3) makes every language operation
//! pay a full kernel round-trip: a ulimit charge, a MAC subject-context
//! construction, and a `namei` path walk. PR 1's caches cut the
//! per-*component* cost; this module cuts the per-*call* cost. A
//! [`SyscallBatch`] carries a sequence of [`BatchEntry`] operations that
//! [`crate::Kernel::submit_batch`] executes **in order** with three
//! amortizations:
//!
//! * **One ulimit charge per batch.** The cpu-tick budget is read once at
//!   submit time; entries consume ticks from the pre-read budget (same
//!   `EAGAIN` trip points as sequential execution) and the total is written
//!   back once.
//! * **One MAC context per batch.** No batch entry can change the subject's
//!   credentials, so the `MacCtx` built at submit time is reused by every
//!   check.
//! * **In-batch `namei` prefix reuse.** Entries naming paths under a common
//!   dirname reuse the first entry's dirname resolution. Each reused
//!   prefix is fenced by the PR 1 invalidation machinery: every directory
//!   stepped through is revalidated against its dcache generation and the
//!   policy stack's combined AVC epoch; a mid-batch create/unlink/rename or
//!   authority-shrinking event falls back to the full walk. Reuse is
//!   enabled only when every loaded policy opted into verdict caching
//!   ([`crate::mac::MacPolicy::decisions_cacheable`]) — the same contract
//!   the AVC itself relies on — and the skipped components' `post_lookup`
//!   propagation notifications are replayed so label state evolves exactly
//!   as on the full walk.
//!
//! What prefix reuse skips, precisely: the intermediate components'
//! directory-entry scans, MAC `Lookup` re-checks (fenced by the combined
//! epoch, exactly like an AVC hit), **and their DAC Exec re-checks**. The
//! DAC skip is sound only because of a *vocabulary invariant*, not a
//! runtime fence: no batch entry can change credentials or DAC metadata
//! (no setuid, no chmod/chown entries exist), so directory modes observed
//! by the first walk cannot change before the batch ends. Anyone adding a
//! metadata-mutating entry must also clear [`BatchState::prefixes`] after
//! executing it — otherwise a later entry could resolve through a
//! directory whose search permission was just revoked, diverging from
//! [`crate::Kernel::run_sequential`]. Everything else is unchanged: the
//! final path component always takes the full DAC + MAC path, data-path
//! interposition (`Read`/`Write` checks per chunk) fires per operation
//! exactly as in sequential execution, and denials are never cached.
//! Observable equivalence with sequential execution — same results, same
//! errnos, same audit denials — is a test target
//! (`tests/batch_equivalence.rs`).
//!
//! Failure semantics are selected per batch by [`FailMode`]: under the
//! default [`FailMode::Continue`] a failing entry yields its errno and
//! later entries still run; [`FailMode::Abort`] short-circuits like an
//! `&&` chain, reporting `ECANCELED` for every entry after the first
//! failure (which is never executed).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use shill_vfs::sync::Mutex;
use shill_vfs::{Errno, Mode, NodeId, Stat, SysResult};

use crate::kernel::Kernel;
use crate::mac::MacCtx;
use crate::stats::KernelStats;
use crate::types::{Fd, OpenFlags, Pid};

/// Read/write chunk used by the fused file operations.
const FUSED_CHUNK: usize = 65536;

/// What happens to the rest of the batch when an entry fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// Entries are independent: a failure yields its errno in that slot and
    /// later entries still execute (the common case for stat sweeps).
    #[default]
    Continue,
    /// `&&`-chain semantics: the first failure cancels every later entry,
    /// which reports `ECANCELED` without executing.
    Abort,
}

/// One operation in a batch. Path-carrying entries resolve relative to
/// `dirfd` (or the cwd when `None`), exactly like their `*at` syscall
/// counterparts.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchEntry {
    /// `openat` → [`BatchOut::Fd`].
    Open {
        dirfd: Option<Fd>,
        path: String,
        flags: OpenFlags,
        mode: Mode,
    },
    /// `close` → [`BatchOut::Unit`].
    Close { fd: Fd },
    /// `read` at the descriptor offset → [`BatchOut::Data`].
    Read { fd: Fd, len: usize },
    /// Positional `pread` → [`BatchOut::Data`].
    Pread { fd: Fd, offset: u64, len: usize },
    /// Vectored read at the descriptor offset: one chunk per len, stopping
    /// at EOF → [`BatchOut::Data`] (concatenated).
    Readv { fd: Fd, lens: Vec<usize> },
    /// Vectored positional read → [`BatchOut::Data`] (concatenated).
    Preadv {
        fd: Fd,
        offset: u64,
        lens: Vec<usize>,
    },
    /// `write` at the descriptor offset → [`BatchOut::Written`].
    Write { fd: Fd, data: Vec<u8> },
    /// Positional `pwrite` → [`BatchOut::Written`].
    Pwrite { fd: Fd, offset: u64, data: Vec<u8> },
    /// Vectored write at the descriptor offset → [`BatchOut::Written`]
    /// (total).
    Writev { fd: Fd, bufs: Vec<Vec<u8>> },
    /// Append regardless of offset → [`BatchOut::Written`].
    Append { fd: Fd, data: Vec<u8> },
    /// `ftruncate` → [`BatchOut::Unit`].
    Ftruncate { fd: Fd, len: u64 },
    /// `fstat` → [`BatchOut::Stat`].
    Fstat { fd: Fd },
    /// `fstatat` → [`BatchOut::Stat`].
    Stat {
        dirfd: Option<Fd>,
        path: String,
        follow: bool,
    },
    /// `getdirentries` on an open directory → [`BatchOut::Names`].
    ReadDir { fd: Fd },
    /// Fused open→read-to-EOF→close → [`BatchOut::Data`]. One entry instead
    /// of N+2 calls; every per-chunk MAC `Read` check still fires.
    ReadFile { dirfd: Option<Fd>, path: String },
    /// Fused open(create)→write→close → [`BatchOut::Written`]. With
    /// `append`, opens append-mode (creating if missing) instead of
    /// truncating.
    WriteFile {
        dirfd: Option<Fd>,
        path: String,
        data: Vec<u8>,
        mode: Mode,
        append: bool,
    },
    /// `unlinkat` → [`BatchOut::Unit`].
    Unlink {
        dirfd: Option<Fd>,
        path: String,
        remove_dir: bool,
    },
}

/// Per-entry result payload.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOut {
    Unit,
    Fd(Fd),
    Data(Vec<u8>),
    Written(usize),
    Stat(Stat),
    Names(Vec<String>),
}

impl BatchOut {
    /// Extract a `Stat` payload; `EINVAL` for any other variant.
    pub fn into_stat(self) -> SysResult<Stat> {
        match self {
            BatchOut::Stat(st) => Ok(st),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Extract a data payload; `EINVAL` for any other variant.
    pub fn into_data(self) -> SysResult<Vec<u8>> {
        match self {
            BatchOut::Data(d) => Ok(d),
            _ => Err(Errno::EINVAL),
        }
    }
}

/// An ordered sequence of entries submitted as one kernel crossing.
#[derive(Debug, Clone, Default)]
pub struct SyscallBatch {
    pub entries: Vec<BatchEntry>,
    pub fail_mode: FailMode,
}

impl SyscallBatch {
    pub fn new(entries: Vec<BatchEntry>) -> SyscallBatch {
        SyscallBatch {
            entries,
            fail_mode: FailMode::Continue,
        }
    }

    pub fn single(entry: BatchEntry) -> SyscallBatch {
        SyscallBatch::new(vec![entry])
    }

    pub fn aborting(entries: Vec<BatchEntry>) -> SyscallBatch {
        SyscallBatch {
            entries,
            fail_mode: FailMode::Abort,
        }
    }
}

/// One directory step of a cached dirname resolution: where the lookup
/// happened, the dcache generation observed, and what it resolved to (for
/// replaying the `post_lookup` propagation notification).
#[derive(Debug, Clone)]
pub struct PrefixStep {
    pub dir: NodeId,
    pub gen: u64,
    pub name: String,
    pub child: NodeId,
}

/// A cached dirname resolution, valid while every step's generation and the
/// policy stack's combined epoch are unchanged.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    /// The directory containing the final component.
    pub parent: NodeId,
    /// MAC combined epoch at resolution time.
    pub epoch: u64,
    pub steps: Vec<PrefixStep>,
}

/// Walk-time recording used to build a [`PrefixHit`].
#[derive(Debug, Default)]
pub struct PrefixTrace {
    pub steps: Vec<PrefixStep>,
    pub parent_of_last: Option<NodeId>,
    /// Set when the prefix traversed a symlink: such resolutions are never
    /// cached (the generation fence does not cover link targets).
    pub tainted: bool,
}

/// Live state of a batched submission, installed on the kernel for the
/// duration of `submit_batch`. `charge`, `ctx`, and `namei` consult it.
pub struct BatchState {
    /// The MAC subject context, built once.
    pub ctx: MacCtx,
    /// cpu_ticks at submit time.
    pub base: u64,
    /// The subject's `max_cpu_ticks`.
    pub limit: u64,
    /// Ticks consumed so far by the batch's inner syscalls.
    pub used: AtomicU64,
    /// Whether `namei` may reuse dirname resolutions (all loaded policies
    /// opted into verdict caching, or none are loaded — and the AVC is on,
    /// since prefix reuse memoizes MAC lookup verdicts under the same
    /// contract the AVC does).
    pub reuse_prefixes: bool,
    /// start node → dirname text → resolution. Two-level so probes hash a
    /// borrowed `&str` slice of the caller's path, no allocation.
    pub prefixes: Mutex<HashMap<NodeId, HashMap<String, PrefixHit>>>,
}

/// Split a path into `(dirname, last-component)` textually, consistent with
/// `namei`'s component semantics. `None` when the path has fewer than two
/// components (nothing to reuse).
pub(crate) fn split_dirname(path: &str) -> Option<(&str, &str)> {
    let trimmed = path.trim_end_matches('/');
    let idx = trimmed.rfind('/')?;
    let (dir, last) = (&trimmed[..idx], &trimmed[idx + 1..]);
    if last.is_empty() || !dir.split('/').any(|c| !c.is_empty()) {
        return None;
    }
    Some((dir, last))
}

impl BatchState {
    /// Consume one cpu tick from the pre-read budget; trips `EAGAIN` at
    /// exactly the tick where sequential per-call charging would.
    pub fn consume_tick(&self) -> SysResult<()> {
        let used = self.used.fetch_add(1, Ordering::Relaxed) + 1;
        if self.base + used > self.limit {
            return Err(Errno::EAGAIN);
        }
        Ok(())
    }
}

impl Kernel {
    /// Submit a batch for `pid`. Entries execute in order; the returned
    /// vector has one slot per entry. The outer `Err` is reserved for
    /// submission-level failures (no such process, nested submission).
    ///
    /// See the module docs for the amortization and equivalence contract.
    pub fn submit_batch(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
    ) -> SysResult<Vec<SysResult<BatchOut>>> {
        if self.batch.is_some() {
            // No nested submissions: the amortized accounting is per-batch.
            return Err(Errno::EINVAL);
        }
        KernelStats::bump(&self.stats.batches);
        // One ulimit accounting operation for the whole batch.
        KernelStats::bump(&self.stats.charge_calls);
        let (base, limit) = {
            let p = self.process(pid)?;
            if !p.alive() {
                return Err(Errno::ESRCH);
            }
            (p.cpu_ticks, p.ulimits.max_cpu_ticks)
        };
        // One MAC context construction for the whole batch.
        KernelStats::bump(&self.stats.mac_ctx_setups);
        let ctx = MacCtx {
            pid,
            cred: self.process(pid)?.cred,
        };
        let reuse_prefixes = self.prefix_reuse_allowed();
        self.batch = Some(BatchState {
            ctx,
            base,
            limit,
            used: AtomicU64::new(0),
            reuse_prefixes,
            prefixes: Mutex::new(HashMap::new()),
        });

        let mut out: Vec<SysResult<BatchOut>> = Vec::with_capacity(batch.entries.len());
        let mut aborted = false;
        for entry in &batch.entries {
            if aborted {
                // Cancelled entries never execute: they are not counted in
                // `batch_entries` and their `ECANCELED` slot is an audit
                // cancellation, not a denial.
                out.push(Err(Errno::ECANCELED));
                continue;
            }
            KernelStats::bump(&self.stats.batch_entries);
            let r = self.exec_entry(pid, entry);
            if r.is_err() && batch.fail_mode == FailMode::Abort {
                aborted = true;
            }
            out.push(r);
        }

        let st = self.batch.take().expect("batch state present");
        // Write the consumed ticks back in one process-table access.
        if let Ok(p) = self.process_mut(pid) {
            p.cpu_ticks = st.base + st.used.load(Ordering::Relaxed);
        }
        // One audit span per batch with per-entry outcomes.
        let outcomes: Vec<Option<Errno>> = out.iter().map(|r| r.as_ref().err().copied()).collect();
        for p in self.policies() {
            p.batch_complete(st.ctx, &outcomes);
        }
        Ok(out)
    }

    /// Submit a single (typically fused) entry: one kernel crossing, one
    /// result. The convenience wrapper the whole-file helpers build on.
    pub fn submit_single(&mut self, pid: Pid, entry: BatchEntry) -> SysResult<BatchOut> {
        self.submit_batch(pid, &SyscallBatch::single(entry))?
            .into_iter()
            .next()
            .unwrap_or(Err(Errno::EINVAL))
    }

    /// Execute the same entries through the plain sequential path: one
    /// charge and one MAC context per inner syscall, no prefix reuse, no
    /// batch audit span. This is the equivalence baseline the property
    /// suite and the ablation bench compare `submit_batch` against.
    pub fn run_sequential(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
    ) -> SysResult<Vec<SysResult<BatchOut>>> {
        if self.batch.is_some() {
            return Err(Errno::EINVAL);
        }
        if !self.process(pid)?.alive() {
            return Err(Errno::ESRCH);
        }
        let mut out = Vec::with_capacity(batch.entries.len());
        let mut aborted = false;
        for entry in &batch.entries {
            if aborted {
                out.push(Err(Errno::ECANCELED));
                continue;
            }
            let r = self.exec_entry(pid, entry);
            if r.is_err() && batch.fail_mode == FailMode::Abort {
                aborted = true;
            }
            out.push(r);
        }
        Ok(out)
    }

    /// Dispatch one entry through the ordinary syscall implementations —
    /// the same code paths, checks, and audit events as sequential
    /// execution, modulo the charge/context/prefix amortizations (active
    /// only while a batch is live; see the module docs for exactly what
    /// prefix reuse elides).
    fn exec_entry(&mut self, pid: Pid, entry: &BatchEntry) -> SysResult<BatchOut> {
        match entry {
            BatchEntry::Open {
                dirfd,
                path,
                flags,
                mode,
            } => self
                .openat(pid, *dirfd, path, *flags, *mode)
                .map(BatchOut::Fd),
            BatchEntry::Close { fd } => self.close(pid, *fd).map(|_| BatchOut::Unit),
            BatchEntry::Read { fd, len } => self.read(pid, *fd, *len).map(BatchOut::Data),
            BatchEntry::Pread { fd, offset, len } => {
                self.pread(pid, *fd, *offset, *len).map(BatchOut::Data)
            }
            BatchEntry::Readv { fd, lens } => {
                let mut data = Vec::new();
                for len in lens {
                    let chunk = self.read(pid, *fd, *len)?;
                    let eof = chunk.len() < *len;
                    data.extend(chunk);
                    if eof {
                        break;
                    }
                }
                Ok(BatchOut::Data(data))
            }
            BatchEntry::Preadv { fd, offset, lens } => {
                let mut data = Vec::new();
                let mut off = *offset;
                for len in lens {
                    let chunk = self.pread(pid, *fd, off, *len)?;
                    let eof = chunk.len() < *len;
                    off += chunk.len() as u64;
                    data.extend(chunk);
                    if eof {
                        break;
                    }
                }
                Ok(BatchOut::Data(data))
            }
            BatchEntry::Write { fd, data } => self.write(pid, *fd, data).map(BatchOut::Written),
            BatchEntry::Pwrite { fd, offset, data } => {
                self.pwrite(pid, *fd, *offset, data).map(BatchOut::Written)
            }
            BatchEntry::Writev { fd, bufs } => {
                let mut n = 0usize;
                for buf in bufs {
                    n += self.write(pid, *fd, buf)?;
                }
                Ok(BatchOut::Written(n))
            }
            BatchEntry::Append { fd, data } => {
                self.append_fd(pid, *fd, data).map(BatchOut::Written)
            }
            BatchEntry::Ftruncate { fd, len } => {
                self.ftruncate(pid, *fd, *len).map(|_| BatchOut::Unit)
            }
            BatchEntry::Fstat { fd } => self.fstat(pid, *fd).map(BatchOut::Stat),
            BatchEntry::Stat {
                dirfd,
                path,
                follow,
            } => self.fstatat(pid, *dirfd, path, *follow).map(BatchOut::Stat),
            BatchEntry::ReadDir { fd } => self.readdirfd(pid, *fd).map(BatchOut::Names),
            BatchEntry::ReadFile { dirfd, path } => {
                let fd = self.openat(pid, *dirfd, path, OpenFlags::RDONLY, Mode(0))?;
                let mut data = Vec::new();
                loop {
                    match self.read(pid, fd, FUSED_CHUNK) {
                        Ok(chunk) if chunk.is_empty() => break,
                        Ok(chunk) => data.extend(chunk),
                        Err(e) => {
                            let _ = self.close(pid, fd);
                            return Err(e);
                        }
                    }
                }
                self.close(pid, fd)?;
                Ok(BatchOut::Data(data))
            }
            BatchEntry::WriteFile {
                dirfd,
                path,
                data,
                mode,
                append,
            } => {
                let flags = if *append {
                    let mut f = OpenFlags::append_only();
                    f.create = true;
                    f
                } else {
                    OpenFlags::creat_trunc_w()
                };
                let fd = self.openat(pid, *dirfd, path, flags, *mode)?;
                match self.write(pid, fd, data) {
                    Ok(n) => {
                        self.close(pid, fd)?;
                        Ok(BatchOut::Written(n))
                    }
                    Err(e) => {
                        let _ = self.close(pid, fd);
                        Err(e)
                    }
                }
            }
            BatchEntry::Unlink {
                dirfd,
                path,
                remove_dir,
            } => self
                .unlinkat(pid, *dirfd, path, *remove_dir)
                .map(|_| BatchOut::Unit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_vfs::{Cred, Gid, Uid};

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.fs.mkdir_p("/deep/a/b/c", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        for i in 0..4 {
            k.fs.put_file(
                &format!("/deep/a/b/c/f{i}"),
                format!("file-{i}").as_bytes(),
                Mode::FILE_DEFAULT,
                Uid::ROOT,
                Gid::WHEEL,
            )
            .unwrap();
        }
        let pid = k.spawn_user(Cred::ROOT);
        (k, pid)
    }

    fn stat_entry(path: &str) -> BatchEntry {
        BatchEntry::Stat {
            dirfd: None,
            path: path.to_string(),
            follow: true,
        }
    }

    #[test]
    fn batch_matches_sequential_results() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/f1"),
            stat_entry("/deep/a/b/c/missing"),
            BatchEntry::ReadFile {
                dirfd: None,
                path: "/deep/a/b/c/f2".into(),
            },
        ]);
        let batched = k.submit_batch(pid, &batch).unwrap();
        let (mut k2, pid2) = setup();
        let sequential = k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(batched[2], Err(Errno::ENOENT));
        assert_eq!(
            batched[3],
            Ok(BatchOut::Data(b"file-2".to_vec())),
            "fused read returns contents"
        );
    }

    #[test]
    fn prefix_reuse_hits_and_charge_amortized() {
        let (mut k, pid) = setup();
        k.stats.reset();
        let batch = SyscallBatch::new(
            (0..4)
                .map(|i| stat_entry(&format!("/deep/a/b/c/f{i}")))
                .collect(),
        );
        let out = k.submit_batch(pid, &batch).unwrap();
        assert!(out.iter().all(|r| r.is_ok()));
        let st = k.stats.snapshot();
        assert_eq!(st.charge_calls, 1, "one ulimit charge for the batch");
        assert_eq!(st.mac_ctx_setups, 1, "one MAC context for the batch");
        assert_eq!(st.batch_prefix_misses, 1, "first entry walks");
        assert_eq!(st.batch_prefix_hits, 3, "later entries reuse the dirname");
    }

    #[test]
    fn mid_batch_invalidation_falls_back_to_slow_path() {
        let (mut k, pid) = setup();
        k.stats.reset();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            // Mutating /deep/a/b bumps its generation: the cached prefix
            // walked through it and must be revalidated.
            BatchEntry::Unlink {
                dirfd: None,
                path: "/deep/a/b/c".into(),
                remove_dir: true,
            },
            stat_entry("/deep/a/b/c/f1"),
        ]);
        let out = k.submit_batch(pid, &batch).unwrap();
        assert!(out[0].is_ok());
        // The directory was not empty: the unlink itself fails...
        assert_eq!(out[1], Err(Errno::ENOTEMPTY));

        // A mutation *inside the final directory* does not invalidate the
        // cached dirname (the fence is per walked directory), but the final
        // component is always re-resolved, so the ENOENT is still observed.
        let batch2 = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            BatchEntry::Unlink {
                dirfd: None,
                path: "/deep/a/b/c/f1".into(),
                remove_dir: false,
            },
            stat_entry("/deep/a/b/c/f1"),
        ]);
        let out = k.submit_batch(pid, &batch2).unwrap();
        assert!(out[0].is_ok());
        assert!(out[1].is_ok());
        assert_eq!(out[2], Err(Errno::ENOENT), "unlinked mid-batch");

        // A mutation in a directory *on the cached chain* (creating a file
        // in /deep/a/b) bumps that generation: the next probe of the
        // /deep/a/b/c dirname must fall back to the full walk.
        let batch3 = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            BatchEntry::WriteFile {
                dirfd: None,
                path: "/deep/a/b/side".into(),
                data: b"x".to_vec(),
                mode: Mode::FILE_DEFAULT,
                append: false,
            },
            stat_entry("/deep/a/b/c/f2"),
            stat_entry("/deep/a/b/c/f0"),
        ]);
        k.stats.reset();
        let out = k.submit_batch(pid, &batch3).unwrap();
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
        let st = k.stats.snapshot();
        // Misses: f0's first walk, the WriteFile's own dirname, and the
        // revalidation failure after the create. The final stat hits again.
        assert_eq!(
            st.batch_prefix_misses, 3,
            "invalidation forced exactly one re-walk"
        );
        assert_eq!(st.batch_prefix_hits, 1);
    }

    #[test]
    fn fail_modes() {
        let (mut k, pid) = setup();
        let entries = vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/missing"),
            stat_entry("/deep/a/b/c/f1"),
        ];
        let cont = k
            .submit_batch(pid, &SyscallBatch::new(entries.clone()))
            .unwrap();
        assert!(cont[0].is_ok());
        assert_eq!(cont[1], Err(Errno::ENOENT));
        assert!(cont[2].is_ok(), "Continue keeps going past a failure");
        let abort = k
            .submit_batch(pid, &SyscallBatch::aborting(entries))
            .unwrap();
        assert!(abort[0].is_ok());
        assert_eq!(abort[1], Err(Errno::ENOENT));
        assert_eq!(
            abort[2],
            Err(Errno::ECANCELED),
            "Abort cancels the rest like an && chain"
        );
    }

    #[test]
    fn cpu_ticks_match_sequential_and_trip_identically() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::new(vec![
            stat_entry("/deep/a/b/c/f0"),
            stat_entry("/deep/a/b/c/f1"),
            stat_entry("/deep/a/b/c/f2"),
        ]);
        let (mut k2, pid2) = setup();
        k.submit_batch(pid, &batch).unwrap();
        k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(
            k.process(pid).unwrap().cpu_ticks,
            k2.process(pid2).unwrap().cpu_ticks,
            "tick accounting identical"
        );
        // With a 2-tick budget the third entry trips EAGAIN in both modes.
        for (kern, p) in [(&mut k, pid), (&mut k2, pid2)] {
            kern.set_ulimits(
                p,
                crate::types::Ulimits {
                    max_cpu_ticks: kern.process(p).unwrap().cpu_ticks + 2,
                    ..Default::default()
                },
            )
            .unwrap();
        }
        let b = k.submit_batch(pid, &batch).unwrap();
        let s = k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(b, s);
        assert_eq!(b[2], Err(Errno::EAGAIN));
    }

    #[test]
    fn nested_submission_is_rejected() {
        let (mut k, pid) = setup();
        // Simulate a live batch (as an exec handler running inside one
        // would see): a second submission must refuse rather than corrupt
        // the amortized accounting.
        k.batch = Some(BatchState {
            ctx: MacCtx {
                pid,
                cred: Cred::ROOT,
            },
            base: 0,
            limit: u64::MAX,
            used: AtomicU64::new(0),
            reuse_prefixes: true,
            prefixes: Mutex::new(HashMap::new()),
        });
        assert_eq!(
            k.submit_batch(pid, &SyscallBatch::default()).unwrap_err(),
            Errno::EINVAL
        );
        k.batch = None;
        assert!(k.submit_batch(pid, &SyscallBatch::default()).is_ok());
    }

    #[test]
    fn write_file_fusion_creates_and_appends() {
        let (mut k, pid) = setup();
        let out = k
            .submit_batch(
                pid,
                &SyscallBatch::new(vec![
                    BatchEntry::WriteFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                        data: b"one\n".to_vec(),
                        mode: Mode::FILE_DEFAULT,
                        append: false,
                    },
                    BatchEntry::WriteFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                        data: b"two\n".to_vec(),
                        mode: Mode::FILE_DEFAULT,
                        append: true,
                    },
                    BatchEntry::ReadFile {
                        dirfd: None,
                        path: "/deep/a/b/c/new.txt".into(),
                    },
                ]),
            )
            .unwrap();
        assert_eq!(out[2], Ok(BatchOut::Data(b"one\ntwo\n".to_vec())));
    }
}
