//! Deterministic fault-injection plane.
//!
//! A [`FaultPlane`] is a seeded schedule of failures threaded through the
//! kernel's hot paths: ulimit charging, pid allocation, path resolution,
//! the vfs data path (via [`shill_vfs::FaultHook`]), batch-entry
//! execution, and the MAC vnode hook (as an injected policy panic). The
//! point is to prove the degradation story: under any schedule the kernel
//! returns clean errnos, the batch machinery cancels dependents instead of
//! wedging, and the four execution modes (sequential, batched, scheduled,
//! sharded pool) stay observationally identical.
//!
//! ## Determinism model
//!
//! Two kinds of trigger, both replayable bit-for-bit:
//!
//! - **Hash-rate firing**: a site fires iff
//!   `mix(seed, site, key) % rate == 0`. The key is derived from
//!   *mode-invariant* identities — shard-relative pids and node ids, path
//!   hashes, batch slot indices — never from global hit order. Stateless
//!   firing is what makes one schedule produce the *same* faults whether
//!   entries run in submission order, out-of-order by wave, or on a
//!   sharded worker pool: reordering cannot change which operations fail.
//! - **Explicit nth-hit entries**: `site@n=ERRNO` fires on the n-th hit
//!   of that site (per-plane counter). Hit order is deterministic within
//!   one execution mode, so these are for targeted regression tests, not
//!   for cross-mode differential schedules.
//!
//! ## Schedule syntax (`SHILL_FAULTS`)
//!
//! Semicolon-separated clauses:
//!
//! ```text
//! seed=7;rate=41;sites=namei+fs.read+fs.write+batch
//! namei@3=EIO;fs.write@1=short:2;mac_panic@2=panic
//! ```
//!
//! `rate=N` means each enabled site fires on ~1/N of its keys (`rate=0`
//! or no `sites=` clause disables hash firing). Site names: `charge`,
//! `alloc_pid`, `namei`, `fs.read`, `fs.write`, `batch`, `mac_panic`,
//! `pipe.read`, `pipe.write`, `sock.send`, `sock.recv`, `fence`.
//! Explicit actions: an errno name (`EIO`), `short:K` (data sites only:
//! truncate the op to `K` bytes), or `panic`.
//!
//! ## Accounting
//!
//! Every fired fault bumps `faults_injected`; faults that surface as a
//! clean errno (or short op) bump `faults_survived` at the same instant.
//! An injected panic bumps only `faults_injected` — the containment site
//! that catches it (the `BatchPool` worker, a session body's unwind
//! guard) books `faults_survived`. `injected == survived` after a run is
//! therefore the machine-checkable statement that no panic escaped.
//! Counters accumulate in the plane and drain into
//! [`crate::stats::KernelStats`] at [`crate::kernel::Kernel::stats_snapshot`]
//! time, like policy stripe contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shill_vfs::sync::Mutex;
use shill_vfs::{Errno, FaultHook, IoFault};

use crate::trace::{TracePlane, TraceSite};

/// Number of [`FaultSite`] variants (sizes the per-site hit counters).
const N_SITES: usize = 12;

/// Injection points the plane knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// Ulimit charging at syscall entry ([`crate::kernel::Kernel`]'s
    /// `charge`): fires in every execution mode, keyed by shard-relative
    /// pid — a cursed pid fails every syscall with the injected errno.
    Charge = 0,
    /// Pid allocation (`fork`, `spawn_user`): simulated pid-space
    /// exhaustion, keyed by the shard-relative pid about to be handed out.
    AllocPid = 1,
    /// Path resolution entry (`namei`), keyed by a hash of the path
    /// string — a cursed path fails resolution everywhere, whether or not
    /// the walk would have been answered by the dcache or prefix cache.
    Namei = 2,
    /// File reads at the vfs boundary (below MAC), keyed by
    /// (shard-relative node, offset, length). May fail or go short.
    FsRead = 3,
    /// File writes at the vfs boundary, same keying as reads.
    FsWrite = 4,
    /// Batch-entry execution, keyed by (shard-relative pid, slot index) —
    /// slot identity, not execution order, so the same entry fails under
    /// in-order, out-of-order, and pooled execution.
    Batch = 5,
    /// Injected panic in the MAC vnode hook, modeling a buggy policy
    /// module. Keyed by shard-relative pid.
    MacPanic = 6,
    /// Pipe drains inside [`crate::pipe::PipeTable`], keyed by
    /// (shard-relative pipe id, requested length) — below MAC, above the
    /// buffer, so every execution mode that touches the pipe sees the
    /// same verdict. May fail or go short.
    PipeRead = 7,
    /// Pipe fills, same keying as pipe reads (shard-relative pipe id,
    /// payload length).
    PipeWrite = 8,
    /// Socket sends inside [`crate::net::NetStack`], keyed by
    /// (shard-relative socket id, payload length) — fires after the
    /// connection is classified, modeling a peer that resets mid-send.
    SockSend = 9,
    /// Socket receives, keyed by (shard-relative socket id, requested
    /// length). May fail or deliver short.
    SockRecv = 10,
    /// Injected panic inside a multi-shard rendezvous
    /// ([`crate::shard::KernelShards::fenced_ordered`]), fired *after*
    /// every fence lock is acquired — modeling a shard that dies
    /// mid-rendezvous with the cross-shard locks held. Keyed by the
    /// (home, fence-set) fingerprint, which is a property of the job's
    /// fence declaration, never of execution order. Panic-only, like
    /// `mac_panic`: survival is booked by the containment boundary that
    /// catches the unwind (the `BatchPool` worker).
    Fence = 11,
}

impl FaultSite {
    /// The schedule-syntax name of this site (`charge`, `fs.read`, …).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Charge => "charge",
            FaultSite::AllocPid => "alloc_pid",
            FaultSite::Namei => "namei",
            FaultSite::FsRead => "fs.read",
            FaultSite::FsWrite => "fs.write",
            FaultSite::Batch => "batch",
            FaultSite::MacPanic => "mac_panic",
            FaultSite::PipeRead => "pipe.read",
            FaultSite::PipeWrite => "pipe.write",
            FaultSite::SockSend => "sock.send",
            FaultSite::SockRecv => "sock.recv",
            FaultSite::Fence => "fence",
        }
    }

    fn from_name(s: &str) -> Option<FaultSite> {
        Some(match s {
            "charge" => FaultSite::Charge,
            "alloc_pid" => FaultSite::AllocPid,
            "namei" => FaultSite::Namei,
            "fs.read" => FaultSite::FsRead,
            "fs.write" => FaultSite::FsWrite,
            "batch" => FaultSite::Batch,
            "mac_panic" => FaultSite::MacPanic,
            "pipe.read" => FaultSite::PipeRead,
            "pipe.write" => FaultSite::PipeWrite,
            "sock.send" => FaultSite::SockSend,
            "sock.recv" => FaultSite::SockRecv,
            "fence" => FaultSite::Fence,
            _ => return None,
        })
    }

    /// Errno menu a hash firing picks from at this site.
    fn menu(self) -> &'static [Errno] {
        match self {
            FaultSite::Charge | FaultSite::AllocPid => &[Errno::EAGAIN],
            FaultSite::Namei => &[Errno::EIO, Errno::EACCES, Errno::ENOENT],
            FaultSite::FsRead => &[Errno::EIO],
            FaultSite::FsWrite => &[Errno::EIO, Errno::ENOSPC],
            FaultSite::Batch => &[Errno::EIO, Errno::EAGAIN],
            FaultSite::MacPanic | FaultSite::Fence => &[],
            FaultSite::PipeRead => &[Errno::EIO],
            FaultSite::PipeWrite => &[Errno::EPIPE, Errno::EIO],
            FaultSite::SockSend => &[Errno::ECONNRESET, Errno::EPIPE],
            FaultSite::SockRecv => &[Errno::ECONNRESET, Errno::EIO],
        }
    }
}

/// What an explicit `site@n=…` entry does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExplicitAction {
    Fail(Errno),
    Short(usize),
    Panic,
}

#[derive(Debug)]
struct ExplicitEntry {
    site: FaultSite,
    nth: u64,
    action: ExplicitAction,
}

/// A seeded, replayable fault schedule. Interior-mutable (atomics only)
/// so `&self` call sites — `namei`, `mac_vnode`, the vfs read path — can
/// consult it.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    rate: u64,
    site_mask: u32,
    explicit: Vec<ExplicitEntry>,
    hits: [AtomicU64; N_SITES],
    /// Faults fired but not yet drained into kernel stats.
    pending_injected: AtomicU64,
    /// Faults that surfaced as clean errnos (or were contained), not yet
    /// drained.
    pending_survived: AtomicU64,
    /// Tracing plane handle, when armed: every firing records an
    /// instant event tagged with the fault-site name. Only touched on
    /// the (rare) firing path, never on the hit-count fast path.
    trace: Mutex<Option<Arc<TracePlane>>>,
}

impl FaultPlane {
    /// A plane with hash firing over `sites` at 1-in-`rate` and no
    /// explicit entries.
    pub fn seeded(seed: u64, rate: u64, sites: &[FaultSite]) -> FaultPlane {
        let mut mask = 0u32;
        for s in sites {
            mask |= 1 << (*s as usize);
        }
        FaultPlane {
            seed,
            rate,
            site_mask: mask,
            explicit: Vec::new(),
            hits: Default::default(),
            pending_injected: AtomicU64::new(0),
            pending_survived: AtomicU64::new(0),
            trace: Mutex::new(None),
        }
    }

    /// Arm tracing: subsequent firings record [`TraceSite::Fault`]
    /// instant events tagged with the fault-site name.
    pub fn attach_trace(&self, plane: &Arc<TracePlane>) {
        *self.trace.lock() = Some(Arc::clone(plane));
    }

    fn trace_fire(&self, site: FaultSite) {
        if let Some(plane) = self.trace.lock().as_ref() {
            plane.instant(TraceSite::Fault, 0, 0, site.name());
        }
    }

    /// Add an explicit nth-hit errno failure (1-based `nth`).
    pub fn fail_on(mut self, site: FaultSite, nth: u64, errno: Errno) -> FaultPlane {
        self.explicit.push(ExplicitEntry {
            site,
            nth,
            action: ExplicitAction::Fail(errno),
        });
        self
    }

    /// Add an explicit nth-hit short-I/O truncation (data sites only).
    pub fn short_on(mut self, site: FaultSite, nth: u64, len: usize) -> FaultPlane {
        self.explicit.push(ExplicitEntry {
            site,
            nth,
            action: ExplicitAction::Short(len),
        });
        self
    }

    /// Add an explicit nth-hit injected panic.
    pub fn panic_on(mut self, site: FaultSite, nth: u64) -> FaultPlane {
        self.explicit.push(ExplicitEntry {
            site,
            nth,
            action: ExplicitAction::Panic,
        });
        self
    }

    /// Parse a `SHILL_FAULTS` schedule string.
    pub fn parse(spec: &str) -> Result<FaultPlane, String> {
        let mut plane = FaultPlane::seeded(1, 0, &[]);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (lhs, rhs) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause without '=': {clause:?}"))?;
            match lhs {
                "seed" => {
                    plane.seed = rhs.parse().map_err(|_| format!("bad seed in {clause:?}"))?;
                }
                "rate" => {
                    plane.rate = rhs.parse().map_err(|_| format!("bad rate in {clause:?}"))?;
                }
                "sites" => {
                    for name in rhs.split('+').filter(|s| !s.is_empty()) {
                        let site = FaultSite::from_name(name)
                            .ok_or_else(|| format!("unknown fault site {name:?}"))?;
                        plane.site_mask |= 1 << (site as usize);
                    }
                }
                _ => {
                    // site@n=ACTION
                    let (site_name, nth) = lhs
                        .split_once('@')
                        .ok_or_else(|| format!("unknown fault clause {clause:?}"))?;
                    let site = FaultSite::from_name(site_name)
                        .ok_or_else(|| format!("unknown fault site {site_name:?}"))?;
                    let nth: u64 = nth
                        .parse()
                        .map_err(|_| format!("bad hit index in {clause:?}"))?;
                    if nth == 0 {
                        return Err(format!("hit indices are 1-based: {clause:?}"));
                    }
                    let action = if rhs == "panic" {
                        ExplicitAction::Panic
                    } else if let Some(len) = rhs.strip_prefix("short:") {
                        ExplicitAction::Short(
                            len.parse()
                                .map_err(|_| format!("bad short length in {clause:?}"))?,
                        )
                    } else {
                        ExplicitAction::Fail(
                            errno_from_name(rhs).ok_or_else(|| format!("unknown errno {rhs:?}"))?,
                        )
                    };
                    plane.explicit.push(ExplicitEntry { site, nth, action });
                }
            }
        }
        Ok(plane)
    }

    /// Build a plane from the `SHILL_FAULTS` environment variable, if set.
    /// A malformed schedule panics — a fault plane that silently does
    /// nothing would make a red CI run green.
    pub fn from_env() -> Option<FaultPlane> {
        let spec = std::env::var("SHILL_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultPlane::parse(&spec).expect("malformed SHILL_FAULTS schedule"))
    }

    /// splitmix64-style avalanche over (seed, site, key).
    fn mix(&self, site: FaultSite, key: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(key.wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    fn record_hit(&self, site: FaultSite) -> u64 {
        self.hits[site as usize].fetch_add(1, Ordering::Relaxed) + 1
    }

    fn explicit_for(&self, site: FaultSite, hit: u64) -> Option<ExplicitAction> {
        self.explicit
            .iter()
            .find(|e| e.site == site && e.nth == hit)
            .map(|e| e.action)
    }

    fn hash_fires(&self, site: FaultSite, key: u64) -> Option<u64> {
        if self.rate == 0 || self.site_mask & (1 << (site as usize)) == 0 {
            return None;
        }
        let h = self.mix(site, key);
        h.is_multiple_of(self.rate).then_some(h / self.rate)
    }

    fn book_errno(&self, site: FaultSite) {
        self.pending_injected.fetch_add(1, Ordering::Relaxed);
        self.pending_survived.fetch_add(1, Ordering::Relaxed);
        self.trace_fire(site);
    }

    /// Consult the plane at a control-path site. `Some(errno)` means the
    /// caller must fail the operation with that errno (already booked as
    /// injected *and* survived — errno faults are survived by
    /// construction).
    pub fn check(&self, site: FaultSite, key: u64) -> Option<Errno> {
        let hit = self.record_hit(site);
        if let Some(action) = self.explicit_for(site, hit) {
            match action {
                ExplicitAction::Fail(e) => {
                    self.book_errno(site);
                    return Some(e);
                }
                ExplicitAction::Panic => {
                    self.pending_injected.fetch_add(1, Ordering::Relaxed);
                    self.trace_fire(site);
                    panic!("injected fault: panic at site {}", site.name());
                }
                ExplicitAction::Short(_) => return None,
            }
        }
        let roll = self.hash_fires(site, key)?;
        let menu = site.menu();
        if menu.is_empty() {
            return None;
        }
        self.book_errno(site);
        Some(menu[(roll % menu.len() as u64) as usize])
    }

    /// Consult the plane at a data-path site (`fs.read` / `fs.write`).
    /// Short verdicts truncate the op to fewer bytes; they are injected
    /// *and* survived (the caller proceeds with a legal partial result).
    pub fn check_io(&self, site: FaultSite, key: u64, len: usize) -> Option<IoFault> {
        let hit = self.record_hit(site);
        if let Some(action) = self.explicit_for(site, hit) {
            match action {
                ExplicitAction::Fail(e) => {
                    self.book_errno(site);
                    return Some(IoFault::Fail(e));
                }
                ExplicitAction::Short(n) => {
                    self.book_errno(site);
                    return Some(IoFault::Short(n));
                }
                ExplicitAction::Panic => {
                    self.pending_injected.fetch_add(1, Ordering::Relaxed);
                    self.trace_fire(site);
                    panic!("injected fault: panic at site {}", site.name());
                }
            }
        }
        let roll = self.hash_fires(site, key)?;
        self.book_errno(site);
        // Alternate failures and short ops off the roll: bit 0 picks the
        // kind, higher bits pick the errno or the truncated length. A
        // short length of `len` (no truncation) is excluded so a firing
        // is always observable.
        if roll & 1 == 0 || len == 0 {
            let menu = site.menu();
            Some(IoFault::Fail(
                menu[((roll >> 1) % menu.len() as u64) as usize],
            ))
        } else {
            Some(IoFault::Short(((roll >> 1) % len as u64) as usize))
        }
    }

    /// Consult the `mac_panic` site; panics if it fires. The panic is
    /// booked as injected only — whoever contains it calls
    /// [`FaultPlane::book_survived`], keeping `injected == survived` the
    /// no-escape invariant.
    pub fn maybe_panic(&self, key: u64) {
        self.maybe_panic_at(FaultSite::MacPanic, key);
    }

    /// Consult a panic-only site (`mac_panic`, `fence`); panics if it
    /// fires. Booked as injected only, exactly like
    /// [`FaultPlane::maybe_panic`]: the containment boundary that catches
    /// the unwind books survival.
    pub fn maybe_panic_at(&self, site: FaultSite, key: u64) {
        let hit = self.record_hit(site);
        let fires = matches!(self.explicit_for(site, hit), Some(ExplicitAction::Panic))
            || self.hash_fires(site, key).is_some();
        if fires {
            self.pending_injected.fetch_add(1, Ordering::Relaxed);
            self.trace_fire(site);
            panic!("injected fault: panic at site {}", site.name());
        }
    }

    /// Book one contained fault (a caught injected panic).
    pub fn book_survived(&self) {
        self.pending_survived.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain pending (injected, survived) counts — called by
    /// [`crate::kernel::Kernel::stats_snapshot`].
    pub fn drain(&self) -> (u64, u64) {
        (
            self.pending_injected.swap(0, Ordering::Relaxed),
            self.pending_survived.swap(0, Ordering::Relaxed),
        )
    }

    /// Total hits recorded at a site (fired or not) — test observability.
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.hits[site as usize].load(Ordering::Relaxed)
    }
}

/// The plane doubles as the vfs data-path hook: reads and writes key on
/// (shard-relative node, offset, length), all mode- and shard-invariant.
impl FaultHook for FaultPlane {
    fn on_read(&self, rel_node: u64, offset: u64, len: usize) -> Option<IoFault> {
        let key = rel_node ^ offset.rotate_left(17) ^ (len as u64).rotate_left(37);
        self.check_io(FaultSite::FsRead, key, len)
    }

    fn on_write(&self, rel_node: u64, offset: u64, len: usize) -> Option<IoFault> {
        let key = rel_node ^ offset.rotate_left(17) ^ (len as u64).rotate_left(37);
        self.check_io(FaultSite::FsWrite, key, len)
    }
}

/// FNV-1a over a path string: the mode-invariant key for `namei` faults.
pub fn path_key(path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn errno_from_name(name: &str) -> Option<Errno> {
    const ALL: &[Errno] = &[
        Errno::EPERM,
        Errno::ENOENT,
        Errno::ESRCH,
        Errno::EINTR,
        Errno::EIO,
        Errno::EBADF,
        Errno::ECHILD,
        Errno::EAGAIN,
        Errno::ENOMEM,
        Errno::EACCES,
        Errno::EFAULT,
        Errno::EBUSY,
        Errno::EEXIST,
        Errno::EXDEV,
        Errno::ENODEV,
        Errno::ENOTDIR,
        Errno::EISDIR,
        Errno::EINVAL,
        Errno::ENFILE,
        Errno::EMFILE,
        Errno::EFBIG,
        Errno::ENOSPC,
        Errno::EROFS,
        Errno::EMLINK,
        Errno::EPIPE,
        Errno::ELOOP,
        Errno::ENAMETOOLONG,
        Errno::ENOTEMPTY,
        Errno::ENOSYS,
        Errno::ENOEXEC,
        Errno::ECANCELED,
        Errno::ECONNRESET,
    ];
    ALL.iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_firing_is_deterministic_and_key_dependent() {
        let a = FaultPlane::seeded(7, 3, &[FaultSite::Namei]);
        let b = FaultPlane::seeded(7, 3, &[FaultSite::Namei]);
        let keys: Vec<u64> = (0..256).collect();
        let fire_a: Vec<_> = keys.iter().map(|k| a.check(FaultSite::Namei, *k)).collect();
        let fire_b: Vec<_> = keys.iter().map(|k| b.check(FaultSite::Namei, *k)).collect();
        assert_eq!(fire_a, fire_b, "same seed, same keys, same verdicts");
        let fired = fire_a.iter().filter(|r| r.is_some()).count();
        assert!(
            fired > 20,
            "rate=3 over 256 keys should fire often: {fired}"
        );
        assert!(fired < 200, "rate=3 must not fire on everything: {fired}");
        // A different seed reshuffles which keys fire.
        let c = FaultPlane::seeded(8, 3, &[FaultSite::Namei]);
        let fire_c: Vec<_> = keys.iter().map(|k| c.check(FaultSite::Namei, *k)).collect();
        assert_ne!(fire_a, fire_c);
    }

    #[test]
    fn firing_is_order_independent() {
        let a = FaultPlane::seeded(42, 5, &[FaultSite::Batch]);
        let b = FaultPlane::seeded(42, 5, &[FaultSite::Batch]);
        let mut fwd: Vec<_> = (0..64).map(|k| (k, a.check(FaultSite::Batch, k))).collect();
        let mut rev: Vec<_> = (0..64)
            .rev()
            .map(|k| (k, b.check(FaultSite::Batch, k)))
            .collect();
        fwd.sort_by_key(|(k, _)| *k);
        rev.sort_by_key(|(k, _)| *k);
        assert_eq!(fwd, rev, "hash firing must not depend on visit order");
    }

    #[test]
    fn explicit_nth_hit_fires_once_at_exactly_that_hit() {
        let p = FaultPlane::seeded(1, 0, &[]).fail_on(FaultSite::Charge, 3, Errno::EAGAIN);
        assert_eq!(p.check(FaultSite::Charge, 0), None);
        assert_eq!(p.check(FaultSite::Charge, 0), None);
        assert_eq!(p.check(FaultSite::Charge, 0), Some(Errno::EAGAIN));
        assert_eq!(p.check(FaultSite::Charge, 0), None);
        assert_eq!(p.hits(FaultSite::Charge), 4);
        assert_eq!(p.drain(), (1, 1));
        assert_eq!(p.drain(), (0, 0), "drain is destructive");
    }

    #[test]
    fn parse_round_trips_the_documented_syntax() {
        let p = FaultPlane::parse("seed=7;rate=41;sites=namei+fs.read+batch").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.rate, 41);
        for s in [FaultSite::Namei, FaultSite::FsRead, FaultSite::Batch] {
            assert!(p.site_mask & (1 << (s as usize)) != 0);
        }
        assert!(p.site_mask & (1 << (FaultSite::Charge as usize)) == 0);

        let p = FaultPlane::parse("namei@3=EIO;fs.write@1=short:2;mac_panic@2=panic").unwrap();
        assert_eq!(p.explicit.len(), 3);
        assert_eq!(p.explicit[0].action, ExplicitAction::Fail(Errno::EIO));
        assert_eq!(p.explicit[1].action, ExplicitAction::Short(2));
        assert_eq!(p.explicit[2].action, ExplicitAction::Panic);

        assert!(FaultPlane::parse("sites=warp_core").is_err());
        assert!(FaultPlane::parse("namei@0=EIO").is_err(), "1-based hits");
        assert!(FaultPlane::parse("namei@1=EWHAT").is_err());
        assert!(FaultPlane::parse("garbage").is_err());
    }

    #[test]
    fn short_io_truncates_and_books_both_counters() {
        let p = FaultPlane::seeded(1, 0, &[]).short_on(FaultSite::FsWrite, 1, 2);
        assert_eq!(
            p.check_io(FaultSite::FsWrite, 9, 100),
            Some(IoFault::Short(2))
        );
        assert_eq!(p.drain(), (1, 1));
    }

    #[test]
    fn injected_panic_books_injected_only_until_contained() {
        let p = FaultPlane::seeded(1, 0, &[]).panic_on(FaultSite::MacPanic, 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.maybe_panic(0)));
        assert!(r.is_err(), "explicit panic entry must fire");
        assert_eq!(p.drain(), (1, 0));
        p.book_survived();
        assert_eq!(p.drain(), (0, 1));
    }

    #[test]
    fn pipe_and_socket_sites_parse_and_fire() {
        let p = FaultPlane::parse("seed=3;rate=2;sites=pipe.read+pipe.write+sock.send+sock.recv")
            .unwrap();
        for s in [
            FaultSite::PipeRead,
            FaultSite::PipeWrite,
            FaultSite::SockSend,
            FaultSite::SockRecv,
        ] {
            assert!(
                p.site_mask & (1 << (s as usize)) != 0,
                "{} enabled",
                s.name()
            );
            assert_eq!(FaultSite::from_name(s.name()), Some(s), "name round-trip");
            let fired = (0..64).filter(|k| p.check_io(s, *k, 16).is_some()).count();
            assert!(fired > 8, "rate=2 must fire at {}: {fired}", s.name());
        }
        // Data-path menus stay inside the errnos a real pipe/socket can
        // produce (plus EIO), so injected faults are indistinguishable
        // from organic ones to a script.
        assert!(FaultSite::SockSend.menu().contains(&Errno::ECONNRESET));
        assert!(FaultSite::PipeWrite.menu().contains(&Errno::EPIPE));
        assert!(FaultPlane::parse("sock.recv@1=ECONNRESET").is_ok());
    }

    #[test]
    fn path_key_distinguishes_paths() {
        assert_ne!(path_key("/a/b"), path_key("/a/c"));
        assert_eq!(path_key("/a/b"), path_key("/a/b"));
    }
}
