//! Kernel sharding: N independent kernel instances behind per-shard locks,
//! with sessions pinned to shards and epoch-fenced cross-shard
//! invalidation through the shared MAC policy module.
//!
//! PR 3 made the kernel's hot state thread-safe and PR 4 let a worker pool
//! acquire the kernel **per dependency wave** — but every wave of every
//! session still serialized on the ONE `SharedKernel` lock, and
//! `BENCH_concurrency.json` recorded the consequence: threaded/single
//! ≈ 1.0×. This module is the sharding step the ROADMAP called for:
//!
//! * **[`KernelShards`]** owns `N` [`Kernel`]s, each behind its own lock.
//!   Every shard owns its *entire* hot state: process table, filesystem
//!   tree (and the per-shard dcache inside it), AVC, pipe and socket
//!   tables, stats. Two sessions pinned to different shards share **no**
//!   kernel lock and no kernel data structure — their syscalls genuinely
//!   overlap on a multi-core box.
//! * **Sessions are pinned to a shard** at launch: the sandbox executor
//!   (`shill-sandbox`) runs the whole `fork`/`shill_init`/grant/
//!   `shill_enter` choreography against one shard's kernel, and every pid
//!   encodes its shard ([`KernelShards::shard_of`]) so later submissions
//!   route without a table lookup.
//! * **Id spaces are disjoint by construction.** Shards share one MAC
//!   policy module (the `ShillPolicy`), whose labels are keyed by pid and
//!   [`crate::types::ObjId`]. [`Kernel::new_shard`] therefore offsets every
//!   id allocator by the shard's stride ([`SHARD_PID_STRIDE`],
//!   [`SHARD_OBJ_STRIDE`]) so a grant on one shard's object can never alias
//!   another shard's.
//!
//! ## Cross-shard invalidation
//!
//! The only state shards share is the policy module itself, and its
//! invalidation channel is exactly the one PR 1 built: the policy's cache
//! epoch (an `AtomicU64` read without any lock) feeds every shard's
//! `combined_epoch`, so an authority-shrinking event performed while
//! holding *any* shard's lock — or no kernel lock at all — is observed by
//! *every* shard's AVC and batch prefix cache on its next probe. No
//! cross-shard broadcast call is needed: epochs are validated at probe
//! time, which is what makes shard-local waves safe to run concurrently
//! with policy-state changes driven from other shards. Dcache generations
//! stay shard-private (each shard has its own namespace tree, hence its
//! own dcache).
//!
//! ## Rendezvous
//!
//! Operations that must be ordered against **every** shard's waves —
//! policy attach/detach, cache-mode toggles, aggregate stats reads, and
//! cross-shard batch jobs — pay an explicit rendezvous:
//! [`KernelShards::rendezvous`] (all shards) or [`KernelShards::fenced`]
//! (an explicit shard set) acquires the touched shard locks in **ascending
//! shard order** (the deadlock-freedom discipline; there is no other
//! multi-shard acquisition path) and runs the closure while all of them
//! are held. A fenced scheduler wave is therefore totally ordered with
//! respect to every wave of every touched shard. The price is exactly the
//! serialization sharding removes, which is why the scheduler classifies
//! waves shard-local (the overwhelming case: route straight to the pinned
//! shard's lock) vs cross-shard (rendezvous), and why
//! [`KernelShards::rendezvous_count`] is exposed for tests and benches to
//! prove the fast path stays fast.
//!
//! See `docs/concurrency.md` for the written specification (lock order,
//! pinning, epoch fencing, rendezvous protocol) these invariants are
//! tested against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard};

use shill_vfs::sync::Mutex;
use shill_vfs::SysResult;

use crate::batch::SyscallBatch;
use crate::hist::SiteHistsSnapshot;
use crate::kernel::Kernel;
use crate::mac::MacPolicy;
use crate::sched::Completion;
use crate::stats::StatsSnapshot;
use crate::trace::{Telemetry, TracePlane};
use crate::types::Pid;

/// Pid-space stride between shards: shard `i` allocates pids from
/// `i * SHARD_PID_STRIDE + 2` upward (pid 1 is each shard's `init`).
/// `shard_of_pid` is a shift, not a table lookup.
pub const SHARD_PID_STRIDE: u32 = 1 << 20;

/// Object-id-space stride between shards: shard `i`'s vnode, pipe, and
/// socket ids start at `i * SHARD_OBJ_STRIDE`. Disjoint ranges keep the
/// shared policy module's labels from aliasing across shards.
pub const SHARD_OBJ_STRIDE: u64 = 1 << 32;

/// Hard cap on the shard count (the pid stride supports 4095; this is a
/// sanity bound far above any sensible configuration).
pub const MAX_SHARDS: usize = 1024;

/// Environment knob the stress suites and benches read to pick a shard
/// count (`SHILL_SHARDS=1,2,4` in CI).
pub const SHILL_SHARDS_ENV: &str = "SHILL_SHARDS";

/// The shard count requested via [`SHILL_SHARDS_ENV`], or `default` when
/// unset/unparsable. Clamped to `1..=MAX_SHARDS`.
pub fn shard_count_from_env(default: usize) -> usize {
    std::env::var(SHILL_SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
        .clamp(1, MAX_SHARDS)
}

/// FNV-1a over (home, fence set): the mode-invariant key for `fence`
/// faults. Two jobs with the same home shard and fence declaration share
/// a verdict; the verdict never depends on which worker ran the wave or
/// in what order rendezvous were paid.
fn fence_fingerprint(home: usize, ordered: &[usize]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ ((home as u64 + 1).rotate_left(17));
    for &i in ordered {
        h ^= i as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Inner {
    shards: Vec<Mutex<Kernel>>,
    /// Cross-shard fences paid so far ([`KernelShards::rendezvous`] and
    /// [`KernelShards::fenced`] acquisitions spanning >1 shard).
    rendezvous: AtomicU64,
}

/// `N` kernels behind per-shard locks. Cheaply cloneable (`Arc` inside);
/// clones address the same shards. The single-shard form is exactly the
/// PR 3 `SharedKernel` and behaves identically.
///
/// # Examples
///
/// Pids encode their shard, so submissions route without a table lookup:
///
/// ```
/// use shill_kernel::KernelShards;
/// use shill_vfs::Cred;
///
/// let shards = KernelShards::new(2);
/// let pid = shards.with_shard(1, |k| k.spawn_user(Cred::ROOT));
/// assert_eq!(shards.shard_of(pid), 1);
/// // Shard-local crossings never touch another shard's lock:
/// shards.with_pid(pid, |k| assert_eq!(k.shard_index(), 1));
/// assert_eq!(shards.rendezvous_count(), 0);
/// ```
#[derive(Clone)]
pub struct KernelShards {
    inner: Arc<Inner>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KernelShards>();
};

impl KernelShards {
    /// Create `n` shards (at least one), each a fresh [`Kernel::new_shard`].
    pub fn new(n: usize) -> KernelShards {
        let n = n.clamp(1, MAX_SHARDS);
        KernelShards {
            inner: Arc::new(Inner {
                shards: (0..n).map(|i| Mutex::new(Kernel::new_shard(i))).collect(),
                rendezvous: AtomicU64::new(0),
            }),
        }
    }

    /// Create `n` shards and run `init` on each before any lock is shared
    /// (per-shard filesystem population, policy-free setup).
    pub fn new_with(n: usize, mut init: impl FnMut(&mut Kernel, usize)) -> KernelShards {
        let n = n.clamp(1, MAX_SHARDS);
        KernelShards {
            inner: Arc::new(Inner {
                shards: (0..n)
                    .map(|i| {
                        let mut k = Kernel::new_shard(i);
                        init(&mut k, i);
                        Mutex::new(k)
                    })
                    .collect(),
                rendezvous: AtomicU64::new(0),
            }),
        }
    }

    /// Wrap an existing kernel as a single shard (the PR 3 `SharedKernel`
    /// construction; the kernel keeps whatever state it already has).
    pub fn from_kernel(kernel: Kernel) -> KernelShards {
        KernelShards {
            inner: Arc::new(Inner {
                shards: vec![Mutex::new(kernel)],
                rendezvous: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a pid is pinned to. Pids allocated by
    /// [`Kernel::new_shard`] encode their shard in the pid-stride bits;
    /// the modulo keeps foreign pids (a [`KernelShards::from_kernel`]
    /// wrap of an arbitrary kernel) on shard 0.
    pub fn shard_of(&self, pid: Pid) -> usize {
        (pid.0 / SHARD_PID_STRIDE) as usize % self.count()
    }

    /// Lock one shard directly (multi-step setup/teardown choreography).
    pub fn lock_shard(&self, shard: usize) -> MutexGuard<'_, Kernel> {
        self.inner.shards[shard].lock()
    }

    /// Run one kernel crossing under `shard`'s lock.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.inner.shards[shard].lock())
    }

    /// Run one kernel crossing under the lock of the shard `pid` is pinned
    /// to (the shard-local fast path — no other shard is touched).
    pub fn with_pid<R>(&self, pid: Pid, f: impl FnOnce(&mut Kernel) -> R) -> R {
        self.with_shard(self.shard_of(pid), f)
    }

    /// The rendezvous: acquire **every** shard's lock in ascending order
    /// and run `f` with all of them held. Use for operations whose effects
    /// must be ordered against every shard's waves (policy attach, cache
    /// toggles, aggregate reads). This is the serialization sharding
    /// exists to avoid — keep it off hot paths.
    pub fn rendezvous<R>(&self, f: impl FnOnce(&mut [&mut Kernel]) -> R) -> R {
        if self.count() > 1 {
            self.inner.rendezvous.fetch_add(1, Ordering::Relaxed);
        }
        let mut guards: Vec<MutexGuard<'_, Kernel>> =
            self.inner.shards.iter().map(|m| m.lock()).collect();
        let mut refs: Vec<&mut Kernel> = guards.iter_mut().map(|g| &mut **g).collect();
        f(&mut refs)
    }

    /// Normalize a fence declaration into the ascending, deduped lock set
    /// (always containing `home`) that [`KernelShards::fenced_ordered`]
    /// consumes. Callers that fence repeatedly (the batch pool, once per
    /// wave) compute this once per job into a reusable buffer.
    ///
    /// # Panics
    ///
    /// If `home` or any fence entry is out of range (the same contract as
    /// [`KernelShards::lock_shard`]). Silently dropping an out-of-range
    /// fence entry would quietly run the job *unfenced* — losing exactly
    /// the cross-shard ordering guarantee the fence was declared for,
    /// with no error and no `rendezvous_count` signal.
    pub fn fence_set(&self, home: usize, fence: &[usize], set: &mut Vec<usize>) {
        assert!(
            home < self.count(),
            "home shard {home} out of range (count {})",
            self.count()
        );
        for &i in fence {
            assert!(
                i < self.count(),
                "fence shard {i} out of range (count {})",
                self.count()
            );
        }
        set.clear();
        set.extend(fence.iter().copied().chain(std::iter::once(home)));
        set.sort_unstable();
        set.dedup();
    }

    /// A partial rendezvous: acquire the locks of `home` plus every shard
    /// in `fence` (ascending order, duplicates ignored) and run `f` on
    /// `home`'s kernel while all of them are held. A scheduler wave run
    /// under this fence is totally ordered against every wave of every
    /// touched shard — this is what a cross-shard batch job pays per wave.
    ///
    /// # Panics
    ///
    /// If `home` is out of range (see [`KernelShards::fence_set`]).
    pub fn fenced<R>(&self, home: usize, fence: &[usize], f: impl FnOnce(&mut Kernel) -> R) -> R {
        let mut set = Vec::new();
        self.fence_set(home, fence, &mut set);
        self.fenced_ordered(home, &set, f)
    }

    /// [`KernelShards::fenced`] over a pre-normalized lock set (from
    /// [`KernelShards::fence_set`]): no per-call sort or allocation, so a
    /// worker fencing every wave of a job pays the normalization once.
    ///
    /// # Panics
    ///
    /// If `ordered` is not an ascending, deduped, in-range set containing
    /// `home` (debug-asserted; the home lookup fails hard either way).
    pub fn fenced_ordered<R>(
        &self,
        home: usize,
        ordered: &[usize],
        f: impl FnOnce(&mut Kernel) -> R,
    ) -> R {
        debug_assert!(ordered.windows(2).all(|w| w[0] < w[1]), "set not ascending");
        debug_assert!(ordered.iter().all(|&i| i < self.count()), "out of range");
        let home_at = ordered
            .iter()
            .position(|&i| i == home)
            .expect("fence set must contain the home shard");
        if ordered.len() > 1 {
            self.inner.rendezvous.fetch_add(1, Ordering::Relaxed);
        }
        let mut guards: Vec<MutexGuard<'_, Kernel>> = Vec::with_capacity(ordered.len());
        for &i in ordered {
            guards.push(self.inner.shards[i].lock());
        }
        if ordered.len() > 1 {
            // Mid-rendezvous fault injection: every fence lock is held at
            // this point, so a firing models a shard dying with the
            // cross-shard locks acquired. The key is the (home, fence-set)
            // fingerprint — a property of the job's fence declaration, not
            // of wave order or worker identity — so one schedule kills the
            // same rendezvous in every execution mode. Unwinding drops the
            // guards (the sync shim never poisons): no lock is left held,
            // which the no-escape regression pins down.
            if let Some(plane) = guards[home_at].fault_plane() {
                plane.maybe_panic_at(
                    crate::fault::FaultSite::Fence,
                    fence_fingerprint(home, ordered),
                );
            }
        }
        f(&mut guards[home_at])
    }

    /// Multi-shard lock acquisitions paid so far (tests and benches assert
    /// the shard-local fast path stays rendezvous-free).
    pub fn rendezvous_count(&self) -> u64 {
        self.inner.rendezvous.load(Ordering::Relaxed)
    }

    /// Attach one policy module to every shard, under a rendezvous: no
    /// shard may run a wave between "policy live on shard A" and "policy
    /// live on shard B". Each shard flushes its own AVC on attach, exactly
    /// as [`Kernel::register_policy`] does standalone.
    pub fn register_policy(&self, policy: Arc<dyn MacPolicy>) {
        self.rendezvous(|shards| {
            for k in shards {
                k.register_policy(Arc::clone(&policy));
            }
        });
    }

    /// Install one fault schedule on every shard, under a rendezvous so
    /// no wave runs with half the shards armed. Each shard gets its own
    /// plane parsed from the same spec — per-shard hit counters keep
    /// nth-hit entries deterministic per shard, while the shared seed and
    /// shard-relative keying make hash-rate firing agree across shards.
    /// Pass `None` to disarm.
    ///
    /// # Panics
    ///
    /// On a malformed spec (same contract as [`crate::fault::FaultPlane::parse`]
    /// via `SHILL_FAULTS`: a schedule that silently fails to arm would
    /// make a red run green).
    pub fn set_fault_plane(&self, spec: Option<&str>) {
        self.rendezvous(|shards| {
            for k in shards {
                let plane = spec
                    .map(|s| crate::fault::FaultPlane::parse(s).expect("malformed fault schedule"));
                k.set_fault_plane(plane);
            }
        });
    }

    /// Install a tracing plane on every shard, under a rendezvous so no
    /// wave runs with half the shards instrumented. Each shard gets its
    /// own plane parsed from the same spec (per-shard rings keep the hot
    /// path lock-shard-local); [`Kernel::set_trace_plane`] stamps the
    /// shard id into each plane so merged event streams stay
    /// attributable. Pass `None` to disarm.
    ///
    /// # Panics
    ///
    /// On a malformed spec (same contract as [`crate::trace::TracePlane::parse`]
    /// via `SHILL_TRACE`).
    pub fn set_trace_plane(&self, spec: Option<&str>) {
        self.rendezvous(|shards| {
            for k in shards {
                let plane = spec
                    .map(|s| Arc::new(TracePlane::parse(s).expect("malformed SHILL_TRACE spec")));
                k.set_trace_plane(plane);
            }
        });
    }

    /// Toggle the resolution caches on every shard under one rendezvous
    /// (the sharded form of [`Kernel::set_cache_enabled`]).
    pub fn set_cache_enabled(&self, dcache: bool, avc: bool) {
        self.rendezvous(|shards| {
            for k in shards {
                k.set_cache_enabled(dcache, avc);
            }
        });
    }

    /// Aggregate stats snapshot across all shards, under a rendezvous so
    /// no wave is mid-flight while counters are read. Uses the draining
    /// form ([`Kernel::stats_snapshot`]) so policy-side contention counters
    /// land in `policy_stripe_contention` exactly once even though one
    /// policy module is attached to every shard.
    pub fn stats(&self) -> StatsSnapshot {
        self.rendezvous(|shards| {
            shards
                .iter()
                .map(|k| k.stats_snapshot())
                .fold(StatsSnapshot::default(), |acc, s| acc.merged(&s))
        })
    }

    /// Aggregate telemetry snapshot across all shards, under one
    /// rendezvous: merged (draining) stats, field-wise merged latency
    /// histograms, and the concatenation of every shard's drained trace
    /// ring (shard attribution lives inside each event). Shards without
    /// an armed plane contribute empty histograms and no events.
    pub fn telemetry(&self) -> Telemetry {
        self.rendezvous(|shards| {
            let mut stats = StatsSnapshot::default();
            let mut hists: Vec<SiteHistsSnapshot> = Vec::with_capacity(shards.len());
            let mut events = Vec::new();
            for k in shards.iter_mut() {
                let t = k.telemetry();
                stats = stats.merged(&t.stats);
                hists.push(t.hists);
                events.extend(t.events);
            }
            events.sort_by_key(|e| e.ts_ns);
            Telemetry {
                stats,
                hists: SiteHistsSnapshot::merged(&hists),
                events,
            }
        })
    }

    /// Submit a scheduled batch for `pid` on its pinned shard (the
    /// shard-local one-shot path; worker pools use the steppable per-wave
    /// form instead — see `shill-sandbox`'s `BatchPool`).
    pub fn submit_scheduled(&self, pid: Pid, batch: &SyscallBatch) -> SysResult<Vec<Completion>> {
        self.with_pid(pid, |k| k.submit_scheduled(pid, batch))
    }

    /// Recover the kernels once every clone is gone (`None` while other
    /// handles are alive). Shard order is preserved.
    pub fn try_into_kernels(self) -> Option<Vec<Kernel>> {
        Arc::try_unwrap(self.inner)
            .ok()
            .map(|inner| inner.shards.into_iter().map(|m| m.into_inner()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchEntry;
    use crate::types::ObjId;
    use shill_vfs::{Cred, Gid, Mode, Uid};

    #[test]
    fn shard_id_spaces_are_disjoint() {
        let shards = KernelShards::new(3);
        let mut pids = Vec::new();
        let mut roots = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..3 {
            shards.with_shard(i, |k| {
                assert_eq!(k.shard_index(), i);
                pids.push(k.spawn_user(Cred::user(100)));
                roots.push(k.fs.root());
                k.fs.put_file("/data.txt", b"x", Mode(0o644), Uid::ROOT, Gid::WHEEL)
                    .unwrap();
                nodes.push(k.fs.resolve_abs("/data.txt").unwrap());
            });
        }
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    continue;
                }
                assert_ne!(pids[a], pids[b], "pid spaces must not alias");
                assert_ne!(roots[a], roots[b], "root vnodes must not alias");
                assert_ne!(nodes[a], nodes[b], "vnode ids must not alias");
            }
        }
        // Pins route back to the allocating shard.
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(shards.shard_of(pid), i);
        }
    }

    #[test]
    fn pipe_and_socket_ids_are_disjoint_across_shards() {
        let shards = KernelShards::new(2);
        let mut pipe_objs = Vec::new();
        for i in 0..2 {
            shards.with_shard(i, |k| {
                let pid = k.spawn_user(Cred::user(100));
                let (r, _w) = k.pipe(pid).unwrap();
                pipe_objs.push(k.fd_object(pid, r).unwrap());
            });
        }
        assert_ne!(
            format!("{:?}", pipe_objs[0]),
            format!("{:?}", pipe_objs[1]),
            "pipe ids must not alias across shards"
        );
    }

    #[test]
    fn new_shard_zero_matches_new() {
        let a = Kernel::new();
        let b = Kernel::new_shard(0);
        assert_eq!(a.fs.root(), b.fs.root());
        assert_eq!(a.shard_index(), b.shard_index());
        assert!(b.fs.resolve_abs("/dev/null").is_ok());
    }

    #[test]
    fn rendezvous_counts_only_multi_shard_acquisitions() {
        let shards = KernelShards::new(2);
        shards.with_shard(0, |_| {});
        shards.with_shard(1, |_| {});
        assert_eq!(shards.rendezvous_count(), 0, "shard-local path is free");
        shards.rendezvous(|ks| assert_eq!(ks.len(), 2));
        assert_eq!(shards.rendezvous_count(), 1);
        shards.fenced(0, &[1], |_| {});
        assert_eq!(shards.rendezvous_count(), 2);
        shards.fenced(0, &[0], |_| {});
        assert_eq!(shards.rendezvous_count(), 2, "degenerate fence is local");

        let single = KernelShards::new(1);
        single.rendezvous(|_| {});
        assert_eq!(single.rendezvous_count(), 0, "one shard never pays a fence");
    }

    #[test]
    fn policy_attach_reaches_every_shard() {
        let shards = KernelShards::new(2);
        shards.register_policy(Arc::new(crate::mac::NullPolicy));
        for i in 0..2 {
            assert!(shards.with_shard(i, |k| k.has_policy("null")));
        }
        shards.set_cache_enabled(false, false);
        for i in 0..2 {
            assert_eq!(shards.with_shard(i, |k| k.cache_enabled()), (false, false));
        }
    }

    #[test]
    fn scheduled_submission_routes_to_the_pinned_shard() {
        let shards = KernelShards::new_with(2, |k, i| {
            k.fs.put_file(
                &format!("/s{i}.txt"),
                format!("shard-{i}").as_bytes(),
                Mode(0o644),
                Uid::ROOT,
                Gid::WHEEL,
            )
            .unwrap();
        });
        let pid1 = shards.with_shard(1, |k| k.spawn_user(Cred::ROOT));
        let out = shards
            .submit_scheduled(
                pid1,
                &SyscallBatch::single(BatchEntry::ReadFile {
                    dirfd: None,
                    path: "/s1.txt".into(),
                }),
            )
            .unwrap();
        assert_eq!(
            out[0].out,
            Ok(crate::batch::BatchOut::Data(b"shard-1".to_vec()))
        );
        // The other shard's namespace is genuinely elsewhere.
        let miss = shards.submit_scheduled(
            pid1,
            &SyscallBatch::single(BatchEntry::ReadFile {
                dirfd: None,
                path: "/s0.txt".into(),
            }),
        );
        assert_eq!(
            crate::sched::completions_to_slots(1, &miss.unwrap())[0],
            Err(shill_vfs::Errno::ENOENT)
        );
        assert_eq!(shards.stats().batches, 2);
    }

    #[test]
    fn shared_policy_labels_never_alias_across_shards() {
        // The reason the id strides exist: one policy, two shards, a label
        // on shard 0's node must not leak authority to shard 1's namesake.
        let shards = KernelShards::new(2);
        let n0 = shards.with_shard(0, |k| {
            k.fs.put_file("/f", b"0", Mode(0o644), Uid::ROOT, Gid::WHEEL)
                .unwrap();
            k.fs.resolve_abs("/f").unwrap()
        });
        let n1 = shards.with_shard(1, |k| {
            k.fs.put_file("/f", b"1", Mode(0o644), Uid::ROOT, Gid::WHEEL)
                .unwrap();
            k.fs.resolve_abs("/f").unwrap()
        });
        assert_ne!(ObjId::Vnode(n0), ObjId::Vnode(n1));
    }

    #[test]
    fn try_into_kernels_requires_sole_ownership() {
        let shards = KernelShards::new(2);
        let clone = shards.clone();
        assert!(clone.try_into_kernels().is_none());
        let kernels = shards.try_into_kernels().expect("sole owner");
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[1].shard_index(), 1);
    }

    #[test]
    fn fence_fault_fires_mid_rendezvous_and_leaves_no_lock_held() {
        let shards = KernelShards::new(2);
        shards.set_fault_plane(Some("fence@1=panic"));
        // The fence site consults the HOME shard's plane with all fence
        // locks held; the explicit first-hit entry fires on the first
        // multi-shard acquisition.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shards.fenced(0, &[1], |_| {})
        }));
        assert!(r.is_err(), "armed fence site must panic mid-rendezvous");
        // No lock left held: every shard lock is immediately reacquirable,
        // including a full rendezvous over all of them.
        shards.with_shard(0, |_| {});
        shards.with_shard(1, |_| {});
        shards.rendezvous(|ks| assert_eq!(ks.len(), 2));
        // Containment bookkeeping is the catcher's job; book it here the
        // way a pool worker would, then check the accounting balances.
        shards.with_shard(0, |k| k.fault_plane().unwrap().book_survived());
        let stats = shards.stats();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.faults_survived, 1);
        // A degenerate (single-shard) fence never consults the site.
        shards.set_fault_plane(Some("fence@1=panic"));
        shards.fenced(1, &[1], |_| {});
        // And a disarmed plane never fires.
        shards.set_fault_plane(None);
        shards.fenced(0, &[1], |_| {});
    }

    #[test]
    fn fence_fingerprint_is_mode_invariant_and_set_dependent() {
        let a = fence_fingerprint(0, &[0, 1]);
        assert_eq!(a, fence_fingerprint(0, &[0, 1]), "pure function of inputs");
        assert_ne!(a, fence_fingerprint(1, &[0, 1]), "home matters");
        assert_ne!(a, fence_fingerprint(0, &[0, 1, 2]), "fence set matters");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fenced_rejects_an_out_of_range_home() {
        let shards = KernelShards::new(2);
        shards.fenced(5, &[0], |_| {});
    }

    #[test]
    #[should_panic(expected = "fence shard 3 out of range")]
    fn fenced_rejects_out_of_range_fence_entries_rather_than_unfencing() {
        // Silently dropping the entry would run the job unfenced — losing
        // the cross-shard ordering the caller declared the fence for.
        let shards = KernelShards::new(2);
        shards.fenced(0, &[3], |_| {});
    }

    #[test]
    #[should_panic(expected = "MAX_SHARDS")]
    fn new_shard_rejects_indices_beyond_the_stride() {
        let _ = Kernel::new_shard(MAX_SHARDS);
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        // Not set in the test environment by default.
        if std::env::var(SHILL_SHARDS_ENV).is_err() {
            assert_eq!(shard_count_from_env(2), 2);
        }
        assert!(shard_count_from_env(0) >= 1);
    }
}
