//! The MAC framework: the simulated analogue of the TrustedBSD MAC
//! framework the paper builds its sandbox on (§3.2).
//!
//! The framework "allows FreeBSD's access control mechanisms to be extended
//! with third-party mandatory access control policies by mediating access to
//! sensitive kernel objects and invoking access control checks specified by
//! third-party policy modules". Here, policy modules implement [`MacPolicy`]
//! and the kernel invokes each hook at the same points the TrustedBSD
//! framework would, including the two hooks the paper *added*:
//! `mac_vnode_post_lookup` and `mac_vnode_post_create` (§3.2.2).
//!
//! Labels: TrustedBSD attaches policy-agnostic labels to kernel objects.
//! Policies in this simulator keep their own label tables keyed by
//! [`crate::types::ObjId`] (interior mutability behind `&self` hooks), which
//! is observationally equivalent and avoids threading label storage through
//! every kernel object.

use shill_vfs::{Cred, Errno, FileType, NodeId, SysResult};

use crate::types::{ObjId, Pid, SockAddr, SockDomain};

/// Subject context passed to every hook: which process is acting and under
/// which credentials. Policies that need richer state (e.g. the SHILL
/// sandbox's sessions) key their own tables by `pid`.
#[derive(Debug, Clone, Copy)]
pub struct MacCtx {
    pub pid: Pid,
    pub cred: Cred,
}

/// Vnode operations mediated by the framework. Each corresponds to one
/// `mac_vnode_check_*` entry point; the SHILL policy maps these onto its
/// twenty-four filesystem privileges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VnodeOp<'a> {
    /// Read file contents.
    Read,
    /// Write file contents. NOTE: the framework "exposes a single entry
    /// point for operations that write to filesystem objects" (§3.2.3), so
    /// the kernel emits `Write` for both write and append system calls and
    /// policies cannot distinguish them. (The SHILL *language* can.)
    Write,
    /// Execute a file image.
    Exec,
    /// Read metadata (`stat`).
    Stat,
    /// Look up `name` within a directory.
    Lookup(&'a str),
    /// Enumerate directory entries.
    ReadDir,
    /// Create a regular file named `name` in a directory.
    CreateFile(&'a str),
    /// Create a subdirectory.
    CreateDir(&'a str),
    /// Create a symlink.
    CreateSymlink(&'a str),
    /// Remove the file link `name` from a directory.
    UnlinkFile(&'a str),
    /// Remove the subdirectory `name`.
    UnlinkDir(&'a str),
    /// Remove the symlink `name`.
    UnlinkSymlink(&'a str),
    /// Install a hard link named `name` to an existing file.
    Link(&'a str),
    /// Move an entry out of this directory (rename source side).
    RenameFrom(&'a str),
    /// Move an entry into this directory (rename destination side).
    RenameTo(&'a str),
    /// Change permission bits.
    Chmod,
    /// Change ownership.
    Chown,
    /// Change file flags (`chflags`).
    Chflags,
    /// Change timestamps.
    Utimes,
    /// Truncate or extend the file.
    Truncate,
    /// Read a symlink target.
    ReadSymlink,
    /// Use the directory as working directory (`chdir`).
    Chdir,
    /// Translate the vnode back to a path (the paper's new `path` syscall).
    PathLookup,
}

/// Socket-level operations (`mac_socket_check_*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketOp {
    Create(SockDomain),
    Bind(SockAddr),
    Connect(SockAddr),
    Listen,
    Accept,
    Send,
    Recv,
}

/// Pipe operations (`mac_pipe_check_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeOp {
    Read,
    Write,
    Stat,
}

/// Process-on-process operations (`mac_proc_check_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOp {
    Signal(Pid),
    Wait(Pid),
    Debug(Pid),
}

/// Global (non-object) surfaces a policy may restrict; paper Figure 7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemOp {
    /// `sysctl` read.
    SysctlRead(String),
    /// `sysctl` write.
    SysctlWrite(String),
    /// Kernel environment access (`kenv`).
    KernelEnv,
    /// Kernel module load/unload (`kldload`/`kldunload`).
    KernelModule,
    /// POSIX IPC objects (shm/sem/mq).
    PosixIpc,
    /// System V IPC objects.
    SysvIpc,
}

/// A mandatory access control policy module.
///
/// All check hooks return `Ok(())` to permit; an `Err` veto aborts the system
/// call with that errno (the framework composes policies by conjunction,
/// exactly like TrustedBSD). Notification hooks (`post_*`, lifecycle) return
/// nothing. Hooks take `&self`: policies use interior mutability for their
/// label state, as label updates happen inside read-path system calls.
pub trait MacPolicy: Send + Sync {
    /// Short policy name (e.g. `"shill"`), used in logs.
    fn name(&self) -> &str;

    // --- access-vector cache contract -----------------------------------
    /// Whether this policy's *allow* verdicts may be memoized by the
    /// kernel's access-vector cache ([`crate::avc`]). Opting in promises:
    ///
    /// * vnode verdicts depend only on the subject process, the vnode, and
    ///   the operation *class* (not on lookup/create component names);
    /// * between bumps of [`MacPolicy::cache_epoch`], the policy's
    ///   authority only grows (privilege propagation, debug auto-grants) —
    ///   an operation once allowed stays allowed.
    ///
    /// Defaults to `false`: an unknown third-party policy disables the AVC
    /// entirely rather than risk caching around a revocation.
    fn decisions_cacheable(&self) -> bool {
        false
    }

    /// Monotonic counter a cacheable policy bumps whenever authority could
    /// *shrink* — e.g. a session being entered (permissive → restricted) or
    /// reclaimed (labels scrubbed). Every bump invalidates all cached
    /// verdicts. Constant for policies whose verdicts are never revoked.
    fn cache_epoch(&self) -> u64 {
        0
    }

    /// Drain the number of *contended* internal lock acquisitions the
    /// policy accumulated since the last drain (a striped policy counts an
    /// acquisition whose `try_lock` probe found the stripe held). The
    /// kernel pulls this at snapshot time and folds it into
    /// `KernelStats::policy_stripe_contention`; draining (return-and-reset)
    /// keeps the aggregate exact even with one policy attached to many
    /// shards. Policies without internal striping report 0.
    fn take_contention(&self) -> u64 {
        0
    }

    /// Drain the number of audit-log events the policy discarded because
    /// its bounded log ring was full (see `SHILL_LOG_CAP` in the sandbox
    /// crate). Pulled at snapshot time into `KernelStats::log_dropped`,
    /// with the same return-and-reset discipline as
    /// [`MacPolicy::take_contention`]. Policies without an audit log
    /// report 0.
    fn take_log_dropped(&self) -> u64 {
        0
    }

    /// The kernel's tracing plane ([`crate::trace::TracePlane`]) was
    /// armed; policies that instrument their own waits (e.g. stripe-lock
    /// contention spans) keep the handle. Called once per
    /// `set_trace_plane`/`register_policy` pairing; the default ignores
    /// it.
    fn attach_trace(&self, _plane: &std::sync::Arc<crate::trace::TracePlane>) {}

    // --- checks ---------------------------------------------------------
    fn vnode_check(&self, _ctx: MacCtx, _node: NodeId, _op: &VnodeOp<'_>) -> SysResult<()> {
        Ok(())
    }
    fn pipe_check(&self, _ctx: MacCtx, _pipe: ObjId, _op: PipeOp) -> SysResult<()> {
        Ok(())
    }
    fn socket_check(&self, _ctx: MacCtx, _sock: ObjId, _op: &SocketOp) -> SysResult<()> {
        Ok(())
    }
    fn proc_check(&self, _ctx: MacCtx, _op: ProcOp) -> SysResult<()> {
        Ok(())
    }
    fn system_check(&self, _ctx: MacCtx, _op: &SystemOp) -> SysResult<()> {
        Ok(())
    }

    // --- notifications --------------------------------------------------
    /// Invoked after a lookup completes successfully; the paper added this
    /// hook so the policy can propagate privileges to the child vnode.
    fn vnode_post_lookup(&self, _ctx: MacCtx, _dir: NodeId, _name: &str, _child: NodeId) {}

    /// Invoked after a create completes successfully (paper-added hook).
    fn vnode_post_create(
        &self,
        _ctx: MacCtx,
        _dir: NodeId,
        _name: &str,
        _child: NodeId,
        _ftype: FileType,
    ) {
    }

    /// A batched submission ([`crate::batch`]) completed for `ctx.pid`.
    /// `outcomes` has one slot per entry, `None` for success and the errno
    /// otherwise; `waves` is the dependency-DAG layering the submission
    /// executed in (slot indices per wave — a single wave for a flat
    /// batch, one wave per link for an `&&` chain). Policies with an audit
    /// log record one span per batch instead of one event per call, split
    /// per wave. `wave_ns` carries per-wave execution durations in
    /// nanoseconds when the tracing plane measured them (empty or zeroed
    /// otherwise — timing is observability, never policy input).
    fn batch_complete(
        &self,
        _ctx: MacCtx,
        _outcomes: &[Option<Errno>],
        _waves: &[Vec<usize>],
        _wave_ns: &[u64],
    ) {
    }

    /// A pipe pair was created by `ctx.pid`.
    fn pipe_post_create(&self, _ctx: MacCtx, _pipe: ObjId) {}

    /// A socket was created by `ctx.pid`.
    fn socket_post_create(&self, _ctx: MacCtx, _sock: ObjId) {}

    /// A vnode is being reclaimed; drop labels.
    fn vnode_destroy(&self, _node: NodeId) {}

    // --- process lifecycle ----------------------------------------------
    /// `child` was forked from `parent` (label/session inheritance).
    fn proc_fork(&self, _parent: Pid, _child: Pid) {}

    /// `pid` exited; release per-process state (session membership etc.).
    fn proc_exit(&self, _pid: Pid) {}
}

/// A do-nothing policy used by tests to verify hook plumbing and by the
/// "SHILL installed" benchmark configuration (module loaded, no sandbox).
#[derive(Debug, Default)]
pub struct NullPolicy;

impl MacPolicy for NullPolicy {
    fn name(&self) -> &str {
        "null"
    }

    fn decisions_cacheable(&self) -> bool {
        true // allows everything, forever: trivially monotone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_vfs::Cred;

    #[test]
    fn null_policy_permits_everything() {
        let p = NullPolicy;
        let ctx = MacCtx {
            pid: Pid(1),
            cred: Cred::ROOT,
        };
        assert!(p.vnode_check(ctx, NodeId(1), &VnodeOp::Read).is_ok());
        assert!(p
            .socket_check(
                ctx,
                ObjId::Socket(crate::types::SockId(1)),
                &SocketOp::Listen
            )
            .is_ok());
        assert!(p.system_check(ctx, &SystemOp::KernelModule).is_ok());
    }
}
