//! File, pipe, socket, and system-surface system calls, plus `exec`.
//!
//! Every syscall follows the paper's enforcement order (§2.3): the
//! operation must pass **both** the operating system's DAC checks and the
//! MAC framework's policy checks ("an operation on a resource by a sandboxed
//! execution is permitted only if it passes the checks performed by the
//! operating system based on the user's ambient authority and is also
//! permitted by the capabilities possessed by the sandbox").

use shill_vfs::{
    dac, Access, DeviceKind, Errno, FileType, Gid, Mode, NodeBody, NodeId, Stat, SysResult, Uid,
};

use crate::kernel::{ExecHandler, Kernel};
use crate::mac::{PipeOp, SocketOp, SystemOp, VnodeOp};
use crate::process::{FdObject, OpenFile};
use crate::stats::KernelStats;
use crate::types::{Fd, ObjId, OpenFlags, Pid, PipeEnd, SockAddr, SockDomain, SockId};

impl Kernel {
    fn dac_node(&self, pid: Pid, node: NodeId, access: Access) -> SysResult<()> {
        let cred = self.process(pid)?.cred;
        if dac::check_access(self.fs.node(node)?, cred, access) {
            Ok(())
        } else {
            Err(Errno::EACCES)
        }
    }

    // --- open/close -------------------------------------------------------

    /// `openat(2)`. `dirfd = None` resolves relative paths against the cwd.
    pub fn openat(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        flags: OpenFlags,
        mode: Mode,
    ) -> SysResult<Fd> {
        self.charge(pid)?;
        let lk = self.namei(pid, dirfd, path, !flags.nofollow, flags.create)?;
        let node = match lk.node {
            Some(n) => {
                if flags.create && flags.exclusive {
                    return Err(Errno::EEXIST);
                }
                n
            }
            None => {
                if !flags.create {
                    return Err(Errno::ENOENT);
                }
                // Create path: DAC write + MAC create-file on the parent.
                self.dac_node(pid, lk.parent, Access::Write)?;
                self.mac_vnode(pid, lk.parent, &VnodeOp::CreateFile(&lk.name))?;
                let cred = self.process(pid)?.cred;
                let n = self
                    .fs
                    .create_file(lk.parent, &lk.name, mode, cred.uid, cred.gid)?;
                self.mac_post_create(pid, lk.parent, &lk.name, n, FileType::Regular);
                n
            }
        };
        let vn = self.fs.node(node)?;
        let ftype = vn.file_type();
        if flags.directory && ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        if ftype == FileType::Directory && (flags.write || flags.truncate) {
            return Err(Errno::EISDIR);
        }
        if ftype == FileType::Symlink {
            // Only reachable with nofollow.
            return Err(Errno::ELOOP);
        }
        // DAC at open time, as Unix does.
        if flags.read {
            self.dac_node(pid, node, Access::Read)?;
        }
        if flags.write || flags.append || flags.truncate {
            self.dac_node(pid, node, Access::Write)?;
        }
        // MAC at open time. Character devices are still checked at *open*;
        // it is per-byte read/write the framework cannot see (§3.2.3).
        if flags.read {
            let op = if ftype == FileType::Directory {
                VnodeOp::ReadDir
            } else {
                VnodeOp::Read
            };
            // Opening a directory read-only is permitted with either
            // +contents or plain lookup use; emit Stat-level check instead
            // would be too lax — use ReadDir only when listing. For open we
            // check Read on files and nothing extra on directories (listing
            // is checked in readdirfd).
            if ftype != FileType::Directory {
                let _ = op;
                self.mac_vnode(pid, node, &VnodeOp::Read)?;
            }
        }
        if flags.write || flags.append {
            self.mac_vnode(pid, node, &VnodeOp::Write)?;
        }
        if flags.truncate && ftype == FileType::Regular {
            self.mac_vnode(pid, node, &VnodeOp::Truncate)?;
            self.fs.truncate(node, 0)?;
        }
        self.install_vnode_fd(
            pid,
            node,
            flags.read,
            flags.write || flags.append,
            flags.append,
        )
    }

    /// `open(2)`: cwd-relative `openat`.
    pub fn open(&mut self, pid: Pid, path: &str, flags: OpenFlags, mode: Mode) -> SysResult<Fd> {
        self.openat(pid, None, path, flags, mode)
    }

    // --- read/write -------------------------------------------------------

    fn device_read(&mut self, kind: DeviceKind, len: usize) -> Vec<u8> {
        match kind {
            DeviceKind::Null | DeviceKind::Tty => Vec::new(),
            DeviceKind::Zero => vec![0u8; len],
            DeviceKind::Random => (0..len).map(|_| self.next_random()).collect(),
        }
    }

    /// `read(2)`: read at the descriptor offset, advancing it.
    pub fn read(&mut self, pid: Pid, fd: Fd, len: usize) -> SysResult<Vec<u8>> {
        self.charge(pid)?;
        let (object, offset, readable) = {
            let of = self.process(pid)?.file(fd)?;
            (of.object.clone(), of.offset, of.readable)
        };
        match object {
            FdObject::Vnode(node) => {
                if !readable {
                    return Err(Errno::EBADF);
                }
                let body_kind = self.fs.node(node)?.file_type();
                match body_kind {
                    FileType::Regular => {
                        // Per-operation MAC check: this is the interposition
                        // the Figure 11 microbenchmarks measure.
                        self.mac_vnode(pid, node, &VnodeOp::Read)?;
                        let data = self.fs.read(node, offset, len)?;
                        self.process_mut(pid)?.file_mut(fd)?.offset += data.len() as u64;
                        Ok(data)
                    }
                    FileType::CharDevice => {
                        // §3.2.3: "The MAC framework does not interpose on
                        // read or write operations on character devices."
                        let kind = match &self.fs.node(node)?.body {
                            NodeBody::CharDevice(k) => *k,
                            _ => unreachable!(),
                        };
                        Ok(self.device_read(kind, len))
                    }
                    FileType::Directory => Err(Errno::EISDIR),
                    _ => Err(Errno::EINVAL),
                }
            }
            FdObject::Pipe(id, end) => {
                if end != PipeEnd::Read {
                    return Err(Errno::EBADF);
                }
                self.mac_pipe(pid, ObjId::Pipe(id), PipeOp::Read)?;
                self.pipes.read(id, len)
            }
            FdObject::Socket(s) => {
                self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Recv)?;
                self.net.recv(s, len)
            }
        }
    }

    /// `pread(2)`: positional read; does not move the offset.
    pub fn pread(&mut self, pid: Pid, fd: Fd, offset: u64, len: usize) -> SysResult<Vec<u8>> {
        self.charge(pid)?;
        let (object, readable) = {
            let of = self.process(pid)?.file(fd)?;
            (of.object.clone(), of.readable)
        };
        match object {
            FdObject::Vnode(node) => {
                if !readable {
                    return Err(Errno::EBADF);
                }
                match self.fs.node(node)?.file_type() {
                    FileType::Regular => {
                        self.mac_vnode(pid, node, &VnodeOp::Read)?;
                        self.fs.read(node, offset, len)
                    }
                    FileType::CharDevice => {
                        let kind = match &self.fs.node(node)?.body {
                            NodeBody::CharDevice(k) => *k,
                            _ => unreachable!(),
                        };
                        Ok(self.device_read(kind, len))
                    }
                    FileType::Directory => Err(Errno::EISDIR),
                    _ => Err(Errno::EINVAL),
                }
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// `write(2)` at the descriptor offset (or EOF for append-mode fds).
    pub fn write(&mut self, pid: Pid, fd: Fd, buf: &[u8]) -> SysResult<usize> {
        self.charge(pid)?;
        let (object, offset, writable, append) = {
            let of = self.process(pid)?.file(fd)?;
            (of.object.clone(), of.offset, of.writable, of.append)
        };
        match object {
            FdObject::Vnode(node) => {
                if !writable {
                    return Err(Errno::EBADF);
                }
                match self.fs.node(node)?.file_type() {
                    FileType::Regular => {
                        // One MAC entry point for write AND append (§3.2.3):
                        // the framework cannot tell them apart.
                        self.mac_vnode(pid, node, &VnodeOp::Write)?;
                        let at = if append {
                            self.fs.node(node)?.file_data()?.len() as u64
                        } else {
                            offset
                        };
                        let max = self.process(pid)?.ulimits.max_file_size;
                        if at.saturating_add(buf.len() as u64) > max {
                            return Err(Errno::EFBIG);
                        }
                        let n = self.fs.write(node, at, buf)?;
                        self.process_mut(pid)?.file_mut(fd)?.offset = at + n as u64;
                        Ok(n)
                    }
                    FileType::CharDevice => {
                        let kind = match &self.fs.node(node)?.body {
                            NodeBody::CharDevice(k) => *k,
                            _ => unreachable!(),
                        };
                        if kind == DeviceKind::Tty {
                            self.console.extend_from_slice(buf);
                        }
                        Ok(buf.len())
                    }
                    FileType::Directory => Err(Errno::EISDIR),
                    _ => Err(Errno::EINVAL),
                }
            }
            FdObject::Pipe(id, end) => {
                if end != PipeEnd::Write {
                    return Err(Errno::EBADF);
                }
                self.mac_pipe(pid, ObjId::Pipe(id), PipeOp::Write)?;
                self.pipes.write(id, buf)
            }
            FdObject::Socket(s) => {
                self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Send)?;
                self.net.send(s, buf)
            }
        }
    }

    /// `pwrite(2)`: positional write; does not move the offset.
    pub fn pwrite(&mut self, pid: Pid, fd: Fd, offset: u64, buf: &[u8]) -> SysResult<usize> {
        self.charge(pid)?;
        let (object, writable) = {
            let of = self.process(pid)?.file(fd)?;
            (of.object.clone(), of.writable)
        };
        match object {
            FdObject::Vnode(node) => {
                if !writable {
                    return Err(Errno::EBADF);
                }
                match self.fs.node(node)?.file_type() {
                    FileType::Regular => {
                        self.mac_vnode(pid, node, &VnodeOp::Write)?;
                        let max = self.process(pid)?.ulimits.max_file_size;
                        if offset.saturating_add(buf.len() as u64) > max {
                            return Err(Errno::EFBIG);
                        }
                        self.fs.write(node, offset, buf)
                    }
                    FileType::CharDevice => Ok(buf.len()),
                    FileType::Directory => Err(Errno::EISDIR),
                    _ => Err(Errno::EINVAL),
                }
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Append to a regular file regardless of the descriptor offset.
    /// Convenience for the SHILL runtime's `append` builtin; emits the same
    /// single MAC `Write` entry point as `write` (§3.2.3 granularity).
    pub fn append_fd(&mut self, pid: Pid, fd: Fd, buf: &[u8]) -> SysResult<usize> {
        self.charge(pid)?;
        let (object, writable) = {
            let of = self.process(pid)?.file(fd)?;
            (of.object.clone(), of.writable)
        };
        match object {
            FdObject::Vnode(node) => {
                if !writable {
                    return Err(Errno::EBADF);
                }
                match self.fs.node(node)?.file_type() {
                    FileType::Regular => {
                        self.mac_vnode(pid, node, &VnodeOp::Write)?;
                        let at = self.fs.node(node)?.file_data()?.len() as u64;
                        let max = self.process(pid)?.ulimits.max_file_size;
                        if at.saturating_add(buf.len() as u64) > max {
                            return Err(Errno::EFBIG);
                        }
                        self.fs.write(node, at, buf)
                    }
                    FileType::CharDevice => {
                        let kind = match &self.fs.node(node)?.body {
                            NodeBody::CharDevice(k) => *k,
                            _ => unreachable!(),
                        };
                        if kind == DeviceKind::Tty {
                            self.console.extend_from_slice(buf);
                        }
                        Ok(buf.len())
                    }
                    _ => Err(Errno::EINVAL),
                }
            }
            FdObject::Pipe(id, end) => {
                if end != PipeEnd::Write {
                    return Err(Errno::EBADF);
                }
                self.mac_pipe(pid, ObjId::Pipe(id), PipeOp::Write)?;
                self.pipes.write(id, buf)
            }
            FdObject::Socket(s) => {
                self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Send)?;
                self.net.send(s, buf)
            }
        }
    }

    /// `lseek(2)` (absolute positioning only; that is all callers need).
    pub fn lseek(&mut self, pid: Pid, fd: Fd, offset: u64) -> SysResult<u64> {
        self.charge(pid)?;
        let of = self.process_mut(pid)?.file_mut(fd)?;
        of.offset = offset;
        Ok(offset)
    }

    // --- metadata ---------------------------------------------------------

    /// `fstat(2)`.
    pub fn fstat(&mut self, pid: Pid, fd: Fd) -> SysResult<Stat> {
        self.charge(pid)?;
        match self.process(pid)?.file(fd)?.object {
            FdObject::Vnode(node) => {
                self.mac_vnode(pid, node, &VnodeOp::Stat)?;
                Ok(self.fs.node(node)?.stat())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// `fstatat(2)`.
    pub fn fstatat(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        follow: bool,
    ) -> SysResult<Stat> {
        self.charge(pid)?;
        let node = self.resolve(pid, dirfd, path, follow)?;
        self.mac_vnode(pid, node, &VnodeOp::Stat)?;
        Ok(self.fs.node(node)?.stat())
    }

    /// List a directory open at `fd` (`getdirentries`).
    pub fn readdirfd(&mut self, pid: Pid, fd: Fd) -> SysResult<Vec<String>> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        self.dac_node(pid, node, Access::Read)?;
        self.mac_vnode(pid, node, &VnodeOp::ReadDir)?;
        self.fs.readdir(node)
    }

    /// `readlinkat(2)`.
    pub fn readlinkat(&mut self, pid: Pid, dirfd: Option<Fd>, path: &str) -> SysResult<String> {
        self.charge(pid)?;
        let node = self.resolve(pid, dirfd, path, false)?;
        self.mac_vnode(pid, node, &VnodeOp::ReadSymlink)?;
        self.fs.readlink(node)
    }

    /// `fchmod(2)`.
    pub fn fchmod(&mut self, pid: Pid, fd: Fd, mode: Mode) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        self.chmod_node(pid, node, mode)
    }

    /// `fchmodat(2)`.
    pub fn fchmodat(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        mode: Mode,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.resolve(pid, dirfd, path, true)?;
        self.chmod_node(pid, node, mode)
    }

    fn chmod_node(&mut self, pid: Pid, node: NodeId, mode: Mode) -> SysResult<()> {
        let cred = self.process(pid)?.cred;
        let n = self.fs.node(node)?;
        if !cred.is_root() && cred.uid != n.uid {
            return Err(Errno::EPERM);
        }
        self.mac_vnode(pid, node, &VnodeOp::Chmod)?;
        self.fs.chmod(node, mode)
    }

    /// `fchown(2)` (root only, as on Unix).
    pub fn fchown(&mut self, pid: Pid, fd: Fd, uid: Uid, gid: Gid) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        if !self.process(pid)?.cred.is_root() {
            return Err(Errno::EPERM);
        }
        self.mac_vnode(pid, node, &VnodeOp::Chown)?;
        self.fs.chown(node, uid, gid)
    }

    /// `futimes(2)` — modeled as touching mtime.
    pub fn futimes(&mut self, pid: Pid, fd: Fd) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        self.dac_node(pid, node, Access::Write)?;
        self.mac_vnode(pid, node, &VnodeOp::Utimes)?;
        // Touch by a zero-length truncate-to-same-size write equivalent:
        let len = self.fs.node(node)?.size();
        if self.fs.node(node)?.is_file() {
            self.fs.truncate(node, len)?;
        }
        Ok(())
    }

    /// `ftruncate(2)`.
    pub fn ftruncate(&mut self, pid: Pid, fd: Fd, len: u64) -> SysResult<()> {
        self.charge(pid)?;
        let (node, writable) = {
            let of = self.process(pid)?.file(fd)?;
            match of.object {
                FdObject::Vnode(n) => (n, of.writable),
                _ => return Err(Errno::EINVAL),
            }
        };
        if !writable {
            return Err(Errno::EBADF);
        }
        self.mac_vnode(pid, node, &VnodeOp::Truncate)?;
        if len > self.process(pid)?.ulimits.max_file_size {
            return Err(Errno::EFBIG);
        }
        self.fs.truncate(node, len)
    }

    // --- namespace mutation -----------------------------------------------

    /// `mkdirat(2)`, with the paper's extension: returns a descriptor for
    /// the newly created directory (§3.1.3: "a version of mkdirat that
    /// returns a file descriptor for the newly created directory").
    pub fn mkdirat(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        mode: Mode,
    ) -> SysResult<Fd> {
        self.charge(pid)?;
        let lk = self.namei(pid, dirfd, path, true, true)?;
        if lk.node.is_some() {
            return Err(Errno::EEXIST);
        }
        self.dac_node(pid, lk.parent, Access::Write)?;
        self.mac_vnode(pid, lk.parent, &VnodeOp::CreateDir(&lk.name))?;
        let cred = self.process(pid)?.cred;
        let node = self
            .fs
            .create_dir(lk.parent, &lk.name, mode, cred.uid, cred.gid)?;
        self.mac_post_create(pid, lk.parent, &lk.name, node, FileType::Directory);
        self.install_vnode_fd(pid, node, true, false, false)
    }

    /// `symlinkat(2)`.
    pub fn symlinkat(
        &mut self,
        pid: Pid,
        target: &str,
        dirfd: Option<Fd>,
        path: &str,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let lk = self.namei(pid, dirfd, path, false, true)?;
        if lk.node.is_some() {
            return Err(Errno::EEXIST);
        }
        self.dac_node(pid, lk.parent, Access::Write)?;
        self.mac_vnode(pid, lk.parent, &VnodeOp::CreateSymlink(&lk.name))?;
        let cred = self.process(pid)?.cred;
        let node = self
            .fs
            .create_symlink(lk.parent, &lk.name, target, cred.uid, cred.gid)?;
        self.mac_post_create(pid, lk.parent, &lk.name, node, FileType::Symlink);
        Ok(())
    }

    /// `unlinkat(2)`; `remove_dir` selects `AT_REMOVEDIR` behaviour.
    pub fn unlinkat(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        remove_dir: bool,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let lk = self.namei(pid, dirfd, path, false, true)?;
        let node = lk.node.ok_or(Errno::ENOENT)?;
        self.dac_node(pid, lk.parent, Access::Write)?;
        let ftype = self.fs.node(node)?.file_type();
        let op = match (remove_dir, ftype) {
            (true, FileType::Directory) => VnodeOp::UnlinkDir(&lk.name),
            (true, _) => return Err(Errno::ENOTDIR),
            (false, FileType::Directory) => return Err(Errno::EISDIR),
            (false, FileType::Symlink) => VnodeOp::UnlinkSymlink(&lk.name),
            (false, _) => VnodeOp::UnlinkFile(&lk.name),
        };
        self.mac_vnode(pid, lk.parent, &op)?;
        if remove_dir {
            self.fs.rmdir(lk.parent, &lk.name)?;
        } else {
            self.fs.unlink(lk.parent, &lk.name)?;
        }
        if !self.fs.exists(node) {
            self.notify_vnode_destroy(node);
        }
        Ok(())
    }

    /// The paper's new `funlinkat`: remove the link `name` in the directory
    /// open at `dirfd` **only if** it still refers to the file open at
    /// `filefd`, closing the TOCTTOU gap of path-based `unlinkat` (§3.1.3).
    pub fn funlinkat(&mut self, pid: Pid, dirfd: Fd, filefd: Fd, name: &str) -> SysResult<()> {
        self.charge(pid)?;
        let dir = self.process(pid)?.fd_node(dirfd)?;
        let file = self.process(pid)?.fd_node(filefd)?;
        if !shill_vfs::node::valid_component(name) || name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        let linked = self.fs.lookup(dir, name)?;
        if linked != file {
            // The name no longer refers to the expected file.
            return Err(Errno::EINVAL);
        }
        self.dac_node(pid, dir, Access::Write)?;
        let ftype = self.fs.node(file)?.file_type();
        let op = match ftype {
            FileType::Symlink => VnodeOp::UnlinkSymlink(name),
            FileType::Directory => return Err(Errno::EISDIR),
            _ => VnodeOp::UnlinkFile(name),
        };
        self.mac_vnode(pid, dir, &op)?;
        self.fs.unlink(dir, name)?;
        if !self.fs.exists(file) {
            self.notify_vnode_destroy(file);
        }
        Ok(())
    }

    /// `linkat(2)` (path-designated source, as on FreeBSD).
    pub fn linkat(
        &mut self,
        pid: Pid,
        srcdirfd: Option<Fd>,
        srcpath: &str,
        dstdirfd: Option<Fd>,
        dstpath: &str,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let src = self.resolve(pid, srcdirfd, srcpath, false)?;
        self.flink_node(pid, src, dstdirfd, dstpath)
    }

    /// The paper's new `flinkat`: install a link to the **file open at
    /// `filefd`** (not a path) into a directory (§3.1.3).
    pub fn flinkat(&mut self, pid: Pid, filefd: Fd, dstdirfd: Fd, name: &str) -> SysResult<()> {
        self.charge(pid)?;
        let file = self.process(pid)?.fd_node(filefd)?;
        let dir = self.process(pid)?.fd_node(dstdirfd)?;
        if !shill_vfs::node::valid_component(name) || name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        self.dac_node(pid, dir, Access::Write)?;
        self.mac_vnode(pid, dir, &VnodeOp::Link(name))?;
        self.fs.link(dir, name, file)
    }

    fn flink_node(
        &mut self,
        pid: Pid,
        src: NodeId,
        dstdirfd: Option<Fd>,
        dstpath: &str,
    ) -> SysResult<()> {
        let lk = self.namei(pid, dstdirfd, dstpath, false, true)?;
        if lk.node.is_some() {
            return Err(Errno::EEXIST);
        }
        self.dac_node(pid, lk.parent, Access::Write)?;
        self.mac_vnode(pid, lk.parent, &VnodeOp::Link(&lk.name))?;
        self.fs.link(lk.parent, &lk.name, src)
    }

    /// `renameat(2)`.
    pub fn renameat(
        &mut self,
        pid: Pid,
        srcdirfd: Option<Fd>,
        srcpath: &str,
        dstdirfd: Option<Fd>,
        dstpath: &str,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let s = self.namei(pid, srcdirfd, srcpath, false, true)?;
        s.node.ok_or(Errno::ENOENT)?;
        let d = self.namei(pid, dstdirfd, dstpath, false, true)?;
        self.dac_node(pid, s.parent, Access::Write)?;
        self.dac_node(pid, d.parent, Access::Write)?;
        self.mac_vnode(pid, s.parent, &VnodeOp::RenameFrom(&s.name))?;
        self.mac_vnode(pid, d.parent, &VnodeOp::RenameTo(&d.name))?;
        let replaced = d.node;
        self.fs.rename(s.parent, &s.name, d.parent, &d.name)?;
        if let Some(r) = replaced {
            if !self.fs.exists(r) {
                self.notify_vnode_destroy(r);
            }
        }
        Ok(())
    }

    /// The paper's new `frenameat`: like `funlinkat` but re-installs the
    /// link in a target directory — move the **file open at `filefd`**,
    /// verified to still be linked at `srcdirfd/name`, to `dstdirfd/newname`.
    #[allow(clippy::too_many_arguments)]
    pub fn frenameat(
        &mut self,
        pid: Pid,
        filefd: Fd,
        srcdirfd: Fd,
        name: &str,
        dstdirfd: Fd,
        newname: &str,
    ) -> SysResult<()> {
        self.charge(pid)?;
        let file = self.process(pid)?.fd_node(filefd)?;
        let sdir = self.process(pid)?.fd_node(srcdirfd)?;
        let ddir = self.process(pid)?.fd_node(dstdirfd)?;
        if self.fs.lookup(sdir, name)? != file {
            return Err(Errno::EINVAL);
        }
        if !shill_vfs::node::valid_component(newname) || newname == "." || newname == ".." {
            return Err(Errno::EINVAL);
        }
        self.dac_node(pid, sdir, Access::Write)?;
        self.dac_node(pid, ddir, Access::Write)?;
        self.mac_vnode(pid, sdir, &VnodeOp::RenameFrom(name))?;
        self.mac_vnode(pid, ddir, &VnodeOp::RenameTo(newname))?;
        self.fs.rename(sdir, name, ddir, newname)
    }

    // --- fd → path (the paper's `path` syscall) ----------------------------

    /// The paper's new `path` system call: "attempts to retrieve an
    /// accessible path for a file descriptor from the filesystem's lookup
    /// cache" (§3.1.3). `ENOENT` when the cache no longer covers the node;
    /// the SHILL runtime then falls back to the descriptor's last known path.
    pub fn path_syscall(&mut self, pid: Pid, fd: Fd) -> SysResult<String> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        self.mac_vnode(pid, node, &VnodeOp::PathLookup)?;
        self.fs.path_of(node).ok_or(Errno::ENOENT)
    }

    /// Last path recorded at open time (runtime-side fallback for `path`).
    pub fn fd_last_path(&self, pid: Pid, fd: Fd) -> SysResult<Option<String>> {
        Ok(self.process(pid)?.file(fd)?.last_path.clone())
    }

    // --- cwd ----------------------------------------------------------------

    /// `fchdir(2)`.
    pub fn fchdir(&mut self, pid: Pid, fd: Fd) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.process(pid)?.fd_node(fd)?;
        if !self.fs.node(node)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        self.dac_node(pid, node, Access::Exec)?;
        self.mac_vnode(pid, node, &VnodeOp::Chdir)?;
        self.process_mut(pid)?.cwd = node;
        Ok(())
    }

    /// `chdir(2)`.
    pub fn chdir(&mut self, pid: Pid, path: &str) -> SysResult<()> {
        self.charge(pid)?;
        let node = self.resolve(pid, None, path, true)?;
        if !self.fs.node(node)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        self.dac_node(pid, node, Access::Exec)?;
        self.mac_vnode(pid, node, &VnodeOp::Chdir)?;
        self.process_mut(pid)?.cwd = node;
        Ok(())
    }

    /// `getcwd(3)` via the name cache.
    pub fn getcwd(&mut self, pid: Pid) -> SysResult<String> {
        self.charge(pid)?;
        let cwd = self.process(pid)?.cwd;
        self.fs.path_of(cwd).ok_or(Errno::ENOENT)
    }

    // --- pipes ---------------------------------------------------------------

    /// `pipe(2)`: returns `(read_end, write_end)`.
    pub fn pipe(&mut self, pid: Pid) -> SysResult<(Fd, Fd)> {
        self.charge(pid)?;
        let id = self.pipes.create();
        if let Ok(ctx) = self.ctx(pid) {
            for p in self.policies() {
                p.pipe_post_create(ctx, ObjId::Pipe(id));
            }
        }
        let p = self.process_mut(pid)?;
        let rfd = p.alloc_fd()?;
        p.install_fd(
            rfd,
            OpenFile {
                object: FdObject::Pipe(id, PipeEnd::Read),
                offset: 0,
                readable: true,
                writable: false,
                append: false,
                last_path: None,
            },
        );
        let wfd = p.alloc_fd()?;
        p.install_fd(
            wfd,
            OpenFile {
                object: FdObject::Pipe(id, PipeEnd::Write),
                offset: 0,
                readable: false,
                writable: true,
                append: false,
                last_path: None,
            },
        );
        Ok((rfd, wfd))
    }

    // --- sockets ---------------------------------------------------------------

    /// `socket(2)`.
    pub fn socket(&mut self, pid: Pid, domain: SockDomain) -> SysResult<Fd> {
        self.charge(pid)?;
        // The create check is session-scoped for the SHILL policy (socket
        // factory capability); the object id is not yet known, so pass a
        // placeholder.
        self.mac_socket(pid, ObjId::Socket(SockId(0)), &SocketOp::Create(domain))?;
        let sid = self.net.socket(domain);
        if let Ok(ctx) = self.ctx(pid) {
            for p in self.policies() {
                p.socket_post_create(ctx, ObjId::Socket(sid));
            }
        }
        let p = self.process_mut(pid)?;
        let fd = p.alloc_fd()?;
        p.install_fd(
            fd,
            OpenFile {
                object: FdObject::Socket(sid),
                offset: 0,
                readable: true,
                writable: true,
                append: false,
                last_path: None,
            },
        );
        Ok(fd)
    }

    fn fd_sock(&self, pid: Pid, fd: Fd) -> SysResult<SockId> {
        match self.process(pid)?.file(fd)?.object {
            FdObject::Socket(s) => Ok(s),
            _ => Err(Errno::ENOTSOCK),
        }
    }

    /// `bind(2)`.
    pub fn bind(&mut self, pid: Pid, fd: Fd, addr: SockAddr) -> SysResult<()> {
        self.charge(pid)?;
        let s = self.fd_sock(pid, fd)?;
        self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Bind(addr.clone()))?;
        if let SockAddr::Unix { path } = &addr {
            // Unix sockets occupy a filesystem bind point.
            let lk = self.namei(pid, None, path, false, true)?;
            if lk.node.is_some() {
                return Err(Errno::EADDRINUSE);
            }
            self.dac_node(pid, lk.parent, Access::Write)?;
            self.mac_vnode(pid, lk.parent, &VnodeOp::CreateFile(&lk.name))?;
            let cred = self.process(pid)?.cred;
            let n =
                self.fs
                    .create_socket_node(lk.parent, &lk.name, Mode(0o666), cred.uid, cred.gid)?;
            self.mac_post_create(pid, lk.parent, &lk.name, n, FileType::Socket);
        }
        self.net.bind(s, addr)
    }

    /// `listen(2)`.
    pub fn listen(&mut self, pid: Pid, fd: Fd) -> SysResult<()> {
        self.charge(pid)?;
        let s = self.fd_sock(pid, fd)?;
        self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Listen)?;
        self.net.listen(s)
    }

    /// `accept(2)`; `EAGAIN` when no client is queued.
    pub fn accept(&mut self, pid: Pid, fd: Fd) -> SysResult<Fd> {
        self.charge(pid)?;
        let s = self.fd_sock(pid, fd)?;
        self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Accept)?;
        let conn = self.net.accept(s)?;
        if let Ok(ctx) = self.ctx(pid) {
            for p in self.policies() {
                p.socket_post_create(ctx, ObjId::Socket(conn));
            }
        }
        let p = self.process_mut(pid)?;
        let cfd = p.alloc_fd()?;
        p.install_fd(
            cfd,
            OpenFile {
                object: FdObject::Socket(conn),
                offset: 0,
                readable: true,
                writable: true,
                append: false,
                last_path: None,
            },
        );
        Ok(cfd)
    }

    /// `connect(2)`.
    pub fn connect(&mut self, pid: Pid, fd: Fd, addr: SockAddr) -> SysResult<()> {
        self.charge(pid)?;
        let s = self.fd_sock(pid, fd)?;
        self.mac_socket(pid, ObjId::Socket(s), &SocketOp::Connect(addr.clone()))?;
        self.net.connect(s, addr)
    }

    // --- system surfaces (paper Figure 7) -------------------------------------

    /// `sysctl` read.
    pub fn sysctl_read(&mut self, pid: Pid, name: &str) -> SysResult<String> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::SysctlRead(name.to_string()))?;
        self.sysctls.get(name).cloned().ok_or(Errno::ENOENT)
    }

    /// `sysctl` write.
    pub fn sysctl_write(&mut self, pid: Pid, name: &str, value: &str) -> SysResult<()> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::SysctlWrite(name.to_string()))?;
        if !self.process(pid)?.cred.is_root() {
            return Err(Errno::EPERM);
        }
        // `security.cache.*` knobs take effect immediately and validate
        // before the store, so a malformed write changes nothing (and,
        // because sysctl writes are denied inside a sandbox, a confined
        // process can never toggle the caches it is being checked through).
        self.apply_cache_sysctl(name, value)?;
        self.sysctls.insert(name.to_string(), value.to_string());
        Ok(())
    }

    /// Kernel environment access (`kenv(2)`).
    pub fn kenv_get(&mut self, pid: Pid, name: &str) -> SysResult<String> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::KernelEnv)?;
        self.kenv.get(name).cloned().ok_or(Errno::ENOENT)
    }

    /// Kernel environment write.
    pub fn kenv_set(&mut self, pid: Pid, name: &str, value: &str) -> SysResult<()> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::KernelEnv)?;
        if !self.process(pid)?.cred.is_root() {
            return Err(Errno::EPERM);
        }
        self.kenv.insert(name.to_string(), value.to_string());
        Ok(())
    }

    /// `kldunload(2)`: unloading the MAC policy module. The SHILL policy
    /// denies this from inside a sandbox — "no sandboxed executable has a
    /// capability to unload kernel modules, including the module that
    /// enforces the MAC policy" (§2.3).
    pub fn kldunload(&mut self, pid: Pid, module: &str) -> SysResult<()> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::KernelModule)?;
        if !self.process(pid)?.cred.is_root() {
            return Err(Errno::EPERM);
        }
        if self.unregister_policy(module) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    /// POSIX IPC surface (shm_open and friends) — denied by the SHILL policy.
    pub fn posix_ipc_open(&mut self, pid: Pid, _name: &str) -> SysResult<()> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::PosixIpc)?;
        Ok(())
    }

    /// System V IPC surface (`shmget` etc.) — denied by the SHILL policy.
    pub fn sysv_ipc_get(&mut self, pid: Pid, _key: u32) -> SysResult<()> {
        self.charge(pid)?;
        self.mac_system(pid, &SystemOp::SysvIpc)?;
        Ok(())
    }

    // --- exec ------------------------------------------------------------------

    /// Execute the file open at `node` with `argv`, running its registered
    /// handler synchronously as `pid`. Returns the exit status.
    ///
    /// Executable format: a first line `#!SIMBIN <program>`; subsequent
    /// `NEEDS <path>` lines declare shared-library dependencies readable by
    /// the simulated `ldd` (used by `pkg_native`).
    pub fn exec_node(&mut self, pid: Pid, node: NodeId, argv: &[String]) -> SysResult<i32> {
        self.charge(pid)?;
        KernelStats::bump(&self.stats.execs);
        self.dac_node(pid, node, Access::Exec)?;
        self.mac_vnode(pid, node, &VnodeOp::Exec)?;
        let content = self.fs.node(node)?.file_data()?.clone();
        let text = String::from_utf8_lossy(&content);
        let program = parse_simbin(&text).ok_or(Errno::ENOEXEC)?;
        let handler: ExecHandler = self.exec_handler(&program).ok_or(Errno::ENOEXEC)?;
        Ok(handler(self, pid, argv))
    }

    /// Resolve and execute by path.
    pub fn exec_at(
        &mut self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        argv: &[String],
    ) -> SysResult<i32> {
        let node = self.resolve(pid, dirfd, path, true)?;
        self.exec_node(pid, node, argv)
    }

    /// Shared-library dependencies of an executable (simulated `ldd`).
    /// Reads through the *filesystem*, not the registry, so a capability to
    /// the executable file is what's needed — matching `pkg_native`'s
    /// behaviour of invoking `ldd` on the binary (§3.1.4).
    pub fn ldd(&self, node: NodeId) -> SysResult<Vec<String>> {
        let content = self.fs.node(node)?.file_data()?;
        let text = String::from_utf8_lossy(content);
        if parse_simbin(&text).is_none() {
            return Err(Errno::ENOEXEC);
        }
        Ok(text
            .lines()
            .filter_map(|l| l.strip_prefix("NEEDS "))
            .map(|s| s.trim().to_string())
            .collect())
    }
}

/// Parse the `#!SIMBIN <program>` header.
fn parse_simbin(text: &str) -> Option<String> {
    let first = text.lines().next()?;
    let rest = first.strip_prefix("#!SIMBIN ")?;
    let name = rest.trim();
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_vfs::Cred;
    use std::sync::Arc;

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let pid = k.spawn_user(Cred::ROOT);
        (k, pid)
    }

    #[test]
    fn open_create_write_read() {
        let (mut k, pid) = setup();
        let fd = k
            .open(
                pid,
                "/tmp/a.txt",
                OpenFlags::creat_trunc_w(),
                Mode::FILE_DEFAULT,
            )
            .unwrap();
        assert_eq!(k.write(pid, fd, b"hello").unwrap(), 5);
        k.close(pid, fd).unwrap();
        let fd = k
            .open(pid, "/tmp/a.txt", OpenFlags::RDONLY, Mode::FILE_DEFAULT)
            .unwrap();
        assert_eq!(k.read(pid, fd, 100).unwrap(), b"hello");
        assert_eq!(k.read(pid, fd, 100).unwrap(), b""); // EOF: offset advanced
        k.close(pid, fd).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let (mut k, pid) = setup();
        let fd = k
            .open(
                pid,
                "/tmp/log",
                OpenFlags::creat_trunc_w(),
                Mode::FILE_DEFAULT,
            )
            .unwrap();
        k.write(pid, fd, b"one\n").unwrap();
        k.close(pid, fd).unwrap();
        let fd = k
            .open(
                pid,
                "/tmp/log",
                OpenFlags::append_only(),
                Mode::FILE_DEFAULT,
            )
            .unwrap();
        k.write(pid, fd, b"two\n").unwrap();
        k.close(pid, fd).unwrap();
        let fd = k
            .open(pid, "/tmp/log", OpenFlags::RDONLY, Mode::FILE_DEFAULT)
            .unwrap();
        assert_eq!(k.read(pid, fd, 100).unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn dac_denies_unreadable_file() {
        let mut k = Kernel::new();
        let alice = k.spawn_user(Cred::user(100));
        let bob = k.spawn_user(Cred::user(200));
        let fd = k
            .open(
                alice,
                "/tmp/secret",
                OpenFlags::creat_trunc_w(),
                Mode(0o600),
            )
            .unwrap();
        k.close(alice, fd).unwrap();
        assert_eq!(
            k.open(bob, "/tmp/secret", OpenFlags::RDONLY, Mode(0))
                .unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn mkdirat_returns_usable_dirfd() {
        let (mut k, pid) = setup();
        let dfd = k
            .mkdirat(pid, None, "/tmp/work", Mode::DIR_DEFAULT)
            .unwrap();
        let f = k
            .openat(
                pid,
                Some(dfd),
                "inner.txt",
                OpenFlags::creat_trunc_w(),
                Mode::FILE_DEFAULT,
            )
            .unwrap();
        k.write(pid, f, b"x").unwrap();
        k.close(pid, f).unwrap();
        assert!(k.fs.resolve_abs("/tmp/work/inner.txt").is_ok());
    }

    #[test]
    fn dotdot_walks_up() {
        let (mut k, pid) = setup();
        k.fs.mkdir_p("/home/bob", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        k.fs.put_file(
            "/home/alice/dog.jpg",
            b"jpg",
            Mode::FILE_DEFAULT,
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        k.chdir(pid, "/home/bob").unwrap();
        let fd = k
            .open(pid, "../alice/dog.jpg", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        assert_eq!(k.read(pid, fd, 3).unwrap(), b"jpg");
    }

    #[test]
    fn funlinkat_checks_identity() {
        let (mut k, pid) = setup();
        k.fs.put_file("/tmp/a", b"1", Mode::FILE_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        let dirfd = k.open(pid, "/tmp", OpenFlags::dir(), Mode(0)).unwrap();
        let filefd = k.open(pid, "/tmp/a", OpenFlags::RDONLY, Mode(0)).unwrap();
        // Replace /tmp/a with a different file behind our back.
        k.unlinkat(pid, None, "/tmp/a", false).unwrap();
        k.fs.put_file("/tmp/a", b"2", Mode::FILE_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        // funlinkat detects the swap.
        assert_eq!(
            k.funlinkat(pid, dirfd, filefd, "a").unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn flinkat_links_by_descriptor() {
        let (mut k, pid) = setup();
        k.fs.put_file(
            "/tmp/orig",
            b"data",
            Mode::FILE_DEFAULT,
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        let filefd = k
            .open(pid, "/tmp/orig", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        let dirfd = k.open(pid, "/tmp", OpenFlags::dir(), Mode(0)).unwrap();
        k.flinkat(pid, filefd, dirfd, "alias").unwrap();
        let fd = k
            .open(pid, "/tmp/alias", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        assert_eq!(k.read(pid, fd, 10).unwrap(), b"data");
    }

    #[test]
    fn frenameat_moves_verified_file() {
        let (mut k, pid) = setup();
        k.fs.mkdir_p("/tmp/dst", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        k.fs.put_file("/tmp/f", b"x", Mode::FILE_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        let sdir = k.open(pid, "/tmp", OpenFlags::dir(), Mode(0)).unwrap();
        let ddir = k.open(pid, "/tmp/dst", OpenFlags::dir(), Mode(0)).unwrap();
        let f = k.open(pid, "/tmp/f", OpenFlags::RDONLY, Mode(0)).unwrap();
        k.frenameat(pid, f, sdir, "f", ddir, "g").unwrap();
        assert!(k.fs.resolve_abs("/tmp/dst/g").is_ok());
        assert!(k.fs.resolve_abs("/tmp/f").is_err());
    }

    #[test]
    fn path_syscall_and_fallback() {
        let (mut k, pid) = setup();
        k.fs.put_file("/tmp/p.txt", b"", Mode::FILE_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        let fd = k
            .open(pid, "/tmp/p.txt", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        assert_eq!(k.path_syscall(pid, fd).unwrap(), "/tmp/p.txt");
        k.unlinkat(pid, None, "/tmp/p.txt", false).unwrap();
        assert_eq!(k.path_syscall(pid, fd).unwrap_err(), Errno::ENOENT);
        assert_eq!(k.fd_last_path(pid, fd).unwrap().unwrap(), "/tmp/p.txt");
    }

    #[test]
    fn device_read_write_and_console() {
        let (mut k, pid) = setup();
        let null = k
            .open(pid, "/dev/null", OpenFlags::rdwr(), Mode(0))
            .unwrap();
        assert_eq!(k.read(pid, null, 10).unwrap(), b"");
        assert_eq!(k.write(pid, null, b"gone").unwrap(), 4);
        let zero = k
            .open(pid, "/dev/zero", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        assert_eq!(k.read(pid, zero, 4).unwrap(), vec![0, 0, 0, 0]);
        let tty = k.open(pid, "/dev/tty", OpenFlags::rdwr(), Mode(0)).unwrap();
        k.write(pid, tty, b"hello console").unwrap();
        assert_eq!(k.console, b"hello console");
    }

    #[test]
    fn pipe_roundtrip_via_fds() {
        let (mut k, pid) = setup();
        let (r, w) = k.pipe(pid).unwrap();
        k.write(pid, w, b"through the pipe").unwrap();
        assert_eq!(k.read(pid, r, 7).unwrap(), b"through");
        k.close(pid, w).unwrap();
        assert_eq!(k.read(pid, r, 100).unwrap(), b" the pipe");
        assert_eq!(k.read(pid, r, 100).unwrap(), b""); // EOF
    }

    #[test]
    fn exec_runs_registered_handler() {
        let (mut k, pid) = setup();
        k.register_exec(
            "hello",
            Arc::new(|k: &mut Kernel, pid: Pid, argv: &[String]| {
                let fd = k
                    .open(
                        pid,
                        "/tmp/out",
                        OpenFlags::creat_trunc_w(),
                        Mode::FILE_DEFAULT,
                    )
                    .unwrap();
                k.write(pid, fd, format!("args={}", argv.join(",")).as_bytes())
                    .unwrap();
                k.close(pid, fd).unwrap();
                0
            }),
        );
        k.fs.put_file(
            "/bin/hello",
            b"#!SIMBIN hello\nNEEDS /lib/libc.so\n",
            Mode(0o755),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        let status = k
            .exec_at(pid, None, "/bin/hello", &["hello".into(), "world".into()])
            .unwrap();
        assert_eq!(status, 0);
        let node = k.fs.resolve_abs("/tmp/out").unwrap();
        assert_eq!(k.fs.read(node, 0, 100).unwrap(), b"args=hello,world");
    }

    #[test]
    fn exec_requires_exec_bit_and_format() {
        let (mut k, pid) = setup();
        k.fs.put_file(
            "/bin/noexec",
            b"#!SIMBIN hello\n",
            Mode(0o644),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        let user = k.spawn_user(Cred::user(100));
        assert_eq!(
            k.exec_at(user, None, "/bin/noexec", &[]).unwrap_err(),
            Errno::EACCES
        );
        k.fs.put_file(
            "/bin/garbage",
            b"not a binary",
            Mode(0o755),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        assert_eq!(
            k.exec_at(pid, None, "/bin/garbage", &[]).unwrap_err(),
            Errno::ENOEXEC
        );
    }

    #[test]
    fn ldd_reads_needs_lines() {
        let (mut k, _) = setup();
        k.fs.put_file(
            "/bin/x",
            b"#!SIMBIN x\nNEEDS /lib/libc.so\nNEEDS /usr/lib/libm.so\n",
            Mode(0o755),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        let n = k.fs.resolve_abs("/bin/x").unwrap();
        assert_eq!(k.ldd(n).unwrap(), vec!["/lib/libc.so", "/usr/lib/libm.so"]);
    }

    #[test]
    fn sysctl_and_kenv() {
        let (mut k, pid) = setup();
        assert_eq!(k.sysctl_read(pid, "kern.ostype").unwrap(), "SimBSD");
        k.sysctl_write(pid, "kern.custom", "1").unwrap();
        assert_eq!(k.sysctl_read(pid, "kern.custom").unwrap(), "1");
        let user = k.spawn_user(Cred::user(100));
        assert_eq!(
            k.sysctl_write(user, "kern.custom", "2").unwrap_err(),
            Errno::EPERM
        );
        k.kenv_set(pid, "smbios.bios", "sim").unwrap();
        assert_eq!(k.kenv_get(pid, "smbios.bios").unwrap(), "sim");
    }

    #[test]
    fn socket_remote_roundtrip_via_syscalls() {
        let (mut k, pid) = setup();
        let addr = SockAddr::Inet {
            host: "files.example".into(),
            port: 80,
        };
        k.net
            .register_remote(addr.clone(), Box::new(|_| b"payload".to_vec()));
        let fd = k.socket(pid, SockDomain::Inet).unwrap();
        k.connect(pid, fd, addr).unwrap();
        k.write(pid, fd, b"GET /").unwrap();
        assert_eq!(k.read(pid, fd, 100).unwrap(), b"payload");
        k.close(pid, fd).unwrap();
    }

    #[test]
    fn unix_socket_bind_creates_node() {
        let (mut k, pid) = setup();
        let fd = k.socket(pid, SockDomain::Unix).unwrap();
        k.bind(
            pid,
            fd,
            SockAddr::Unix {
                path: "/tmp/sock".into(),
            },
        )
        .unwrap();
        let n = k.fs.resolve_abs("/tmp/sock").unwrap();
        assert_eq!(k.fs.node(n).unwrap().file_type(), FileType::Socket);
    }

    #[test]
    fn fsize_ulimit_enforced() {
        let (mut k, pid) = setup();
        k.set_ulimits(
            pid,
            crate::types::Ulimits {
                max_file_size: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let fd = k
            .open(
                pid,
                "/tmp/big",
                OpenFlags::creat_trunc_w(),
                Mode::FILE_DEFAULT,
            )
            .unwrap();
        assert_eq!(k.write(pid, fd, b"abcd").unwrap(), 4);
        assert_eq!(k.write(pid, fd, b"e").unwrap_err(), Errno::EFBIG);
    }

    #[test]
    fn symlink_resolution_through_open() {
        let (mut k, pid) = setup();
        k.fs.put_file(
            "/data/real.txt",
            b"real",
            Mode::FILE_DEFAULT,
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
        k.symlinkat(pid, "/data/real.txt", None, "/tmp/link")
            .unwrap();
        let fd = k
            .open(pid, "/tmp/link", OpenFlags::RDONLY, Mode(0))
            .unwrap();
        assert_eq!(k.read(pid, fd, 10).unwrap(), b"real");
        // nofollow refuses the trailing symlink.
        let mut fl = OpenFlags::RDONLY;
        fl.nofollow = true;
        assert_eq!(
            k.open(pid, "/tmp/link", fl, Mode(0)).unwrap_err(),
            Errno::ELOOP
        );
    }
}
