//! Access-vector cache (AVC) for MAC decisions.
//!
//! Modeled on the SELinux/TrustedBSD AVC: the kernel memoizes *allow*
//! verdicts from the policy stack so the hot path (`namei`'s per-component
//! `Lookup` checks, per-`read` interposition, pipe/socket data-path checks)
//! stops paying a virtual call into every registered policy for decisions
//! that cannot have changed. Entries are keyed by [`ObjId`], so vnode,
//! pipe, and socket vectors all share one cache and one epoch discipline.
//!
//! Safety rules, in order of importance:
//!
//! * **Denials are never cached.** A denied operation always re-consults
//!   the policies, so privilege propagation or a debug auto-grant is picked
//!   up immediately and no denial can outlive a grant.
//! * **Allow verdicts are epoch-validated.** Each entry records the
//!   combined epoch (policy registry attach/detach epoch + the sum of every
//!   policy's [`crate::mac::MacPolicy::cache_epoch`]) at insert time; any
//!   authority-shrinking event bumps an epoch and every older entry turns
//!   stale.
//! * **Only name- and address-free operation classes are cached.**
//!   `CreateFile(name)`, `RenameTo(name)`, `Connect(addr)` etc. bypass the
//!   cache entirely: they are checks where a policy may legitimately care
//!   about the operand, not just the object.
//! * The cache is consulted at all only when **every** registered policy
//!   opted in via `decisions_cacheable`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use shill_vfs::sync::Mutex;

use crate::mac::{PipeOp, SocketOp, VnodeOp};
use crate::types::{ObjId, Pid};

/// Soft bound on cached verdicts before a wholesale purge.
const DEFAULT_CAPACITY: usize = 8192;

/// Operand-free operation classes eligible for caching — the analogue of
/// SELinux access-vector permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvcClass {
    Lookup,
    Read,
    Write,
    Exec,
    Stat,
    ReadDir,
    ReadSymlink,
    PathLookup,
    Chdir,
    PipeRead,
    PipeWrite,
    PipeStat,
    SockSend,
    SockRecv,
}

/// Map a vnode operation to its cacheable class; `None` means the operation
/// must always reach the policies (mutations and name-dependent checks).
pub fn avc_class(op: &VnodeOp<'_>) -> Option<AvcClass> {
    match op {
        VnodeOp::Lookup(_) => Some(AvcClass::Lookup),
        VnodeOp::Read => Some(AvcClass::Read),
        VnodeOp::Write => Some(AvcClass::Write),
        VnodeOp::Exec => Some(AvcClass::Exec),
        VnodeOp::Stat => Some(AvcClass::Stat),
        VnodeOp::ReadDir => Some(AvcClass::ReadDir),
        VnodeOp::ReadSymlink => Some(AvcClass::ReadSymlink),
        VnodeOp::PathLookup => Some(AvcClass::PathLookup),
        VnodeOp::Chdir => Some(AvcClass::Chdir),
        _ => None,
    }
}

/// Map a pipe operation to its cacheable class. All pipe operations are
/// operand-free, so every one caches.
pub fn avc_pipe_class(op: PipeOp) -> Option<AvcClass> {
    match op {
        PipeOp::Read => Some(AvcClass::PipeRead),
        PipeOp::Write => Some(AvcClass::PipeWrite),
        PipeOp::Stat => Some(AvcClass::PipeStat),
    }
}

/// Map a socket operation to its cacheable class; `None` for lifecycle and
/// address-carrying checks (`Create`, `Bind`, `Connect`, `Listen`,
/// `Accept`), which always reach the policies.
pub fn avc_socket_class(op: &SocketOp) -> Option<AvcClass> {
    match op {
        SocketOp::Send => Some(AvcClass::SockSend),
        SocketOp::Recv => Some(AvcClass::SockRecv),
        _ => None,
    }
}

/// The access-vector cache. Interior-mutable (lock + atomic) because MAC
/// checks run behind `&Kernel` on read-path syscalls, possibly from several
/// session threads at once.
#[derive(Debug, Default)]
pub struct Avc {
    /// (subject, object, class) → combined epoch at which the allow was
    /// recorded. Presence at the current epoch means "allowed".
    entries: Mutex<HashMap<(Pid, ObjId, AvcClass), u64>>,
    enabled: AtomicBool,
}

impl Avc {
    pub fn new() -> Avc {
        Avc {
            entries: Mutex::new(HashMap::new()),
            enabled: AtomicBool::new(true),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable the cache. Disabling flushes; the return value is
    /// the number of live verdicts that flush dropped (0 for an enable, a
    /// disabled→disabled transition, or an already-empty cache), so callers
    /// can count only flushes that actually did work.
    pub fn set_enabled(&self, enabled: bool) -> usize {
        let dropped = if self.enabled() && !enabled {
            self.flush()
        } else {
            0
        };
        self.enabled.store(enabled, Ordering::Relaxed);
        dropped
    }

    /// Probe for a still-valid allow verdict. Stale entries are dropped.
    pub fn probe(&self, pid: Pid, obj: ObjId, class: AvcClass, epoch: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut entries = self.entries.lock();
        match entries.get(&(pid, obj, class)) {
            Some(e) if *e == epoch => true,
            Some(_) => {
                entries.remove(&(pid, obj, class));
                false
            }
            None => false,
        }
    }

    /// Record an allow verdict at the given combined epoch.
    pub fn record(&self, pid: Pid, obj: ObjId, class: AvcClass, epoch: u64) {
        if !self.enabled() {
            return;
        }
        let mut entries = self.entries.lock();
        if entries.len() >= DEFAULT_CAPACITY {
            // Evict stale epochs first; purge wholesale as a last resort.
            entries.retain(|_, e| *e == epoch);
            if entries.len() >= DEFAULT_CAPACITY {
                entries.clear();
            }
        }
        entries.insert((pid, obj, class), epoch);
    }

    /// Drop every cached verdict; returns how many were live.
    pub fn flush(&self) -> usize {
        let mut entries = self.entries.lock();
        let dropped = entries.len();
        entries.clear();
        dropped
    }

    /// Drop verdicts for one subject (process exit).
    pub fn drop_pid(&self, pid: Pid) {
        self.entries.lock().retain(|(p, _, _), _| *p != pid);
    }

    /// Drop verdicts for one object (vnode reclaimed, pipe/socket closed).
    pub fn drop_obj(&self, obj: ObjId) {
        self.entries.lock().retain(|(_, o, _), _| *o != obj);
    }

    /// Live cached verdicts (tests/diagnostics).
    pub fn entry_count(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PipeId, SockDomain, SockId};
    use shill_vfs::NodeId;

    fn vn(n: u64) -> ObjId {
        ObjId::Vnode(NodeId(n))
    }

    #[test]
    fn probe_record_roundtrip() {
        let avc = Avc::new();
        assert!(!avc.probe(Pid(1), vn(5), AvcClass::Read, 0));
        avc.record(Pid(1), vn(5), AvcClass::Read, 0);
        assert!(avc.probe(Pid(1), vn(5), AvcClass::Read, 0));
        // Different class, pid, or object: separate vectors.
        assert!(!avc.probe(Pid(1), vn(5), AvcClass::Write, 0));
        assert!(!avc.probe(Pid(2), vn(5), AvcClass::Read, 0));
        assert!(!avc.probe(Pid(1), vn(6), AvcClass::Read, 0));
    }

    #[test]
    fn pipe_and_socket_vectors_are_distinct_objects() {
        let avc = Avc::new();
        avc.record(Pid(1), ObjId::Pipe(PipeId(5)), AvcClass::PipeRead, 0);
        avc.record(Pid(1), ObjId::Socket(SockId(5)), AvcClass::SockSend, 0);
        assert!(avc.probe(Pid(1), ObjId::Pipe(PipeId(5)), AvcClass::PipeRead, 0));
        assert!(avc.probe(Pid(1), ObjId::Socket(SockId(5)), AvcClass::SockSend, 0));
        // A vnode with the same raw id is a different key entirely.
        assert!(!avc.probe(Pid(1), vn(5), AvcClass::Read, 0));
        avc.drop_obj(ObjId::Pipe(PipeId(5)));
        assert!(!avc.probe(Pid(1), ObjId::Pipe(PipeId(5)), AvcClass::PipeRead, 0));
        assert_eq!(avc.entry_count(), 1);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let avc = Avc::new();
        avc.record(Pid(1), vn(5), AvcClass::Read, 0);
        assert!(!avc.probe(Pid(1), vn(5), AvcClass::Read, 1));
        // The stale entry was dropped eagerly.
        assert_eq!(avc.entry_count(), 0);
    }

    #[test]
    fn targeted_drops() {
        let avc = Avc::new();
        avc.record(Pid(1), vn(5), AvcClass::Read, 0);
        avc.record(Pid(2), vn(5), AvcClass::Read, 0);
        avc.record(Pid(1), vn(6), AvcClass::Stat, 0);
        avc.drop_pid(Pid(1));
        assert_eq!(avc.entry_count(), 1);
        avc.drop_obj(vn(5));
        assert_eq!(avc.entry_count(), 0);
    }

    #[test]
    fn disabled_avc_is_inert() {
        let avc = Avc::new();
        avc.record(Pid(1), vn(5), AvcClass::Read, 0);
        avc.set_enabled(false);
        assert!(!avc.probe(Pid(1), vn(5), AvcClass::Read, 0));
        avc.record(Pid(1), vn(5), AvcClass::Read, 0);
        assert_eq!(avc.entry_count(), 0, "disable flushed and stays empty");
    }

    #[test]
    fn operand_carrying_ops_have_no_class() {
        assert_eq!(avc_class(&VnodeOp::CreateFile("x")), None);
        assert_eq!(avc_class(&VnodeOp::UnlinkFile("x")), None);
        assert_eq!(avc_class(&VnodeOp::RenameTo("x")), None);
        assert_eq!(avc_class(&VnodeOp::Chmod), None);
        assert_eq!(avc_class(&VnodeOp::Truncate), None);
        assert_eq!(avc_class(&VnodeOp::Lookup("x")), Some(AvcClass::Lookup));
        assert_eq!(avc_pipe_class(PipeOp::Read), Some(AvcClass::PipeRead));
        assert_eq!(avc_pipe_class(PipeOp::Write), Some(AvcClass::PipeWrite));
        assert_eq!(avc_socket_class(&SocketOp::Send), Some(AvcClass::SockSend));
        assert_eq!(avc_socket_class(&SocketOp::Recv), Some(AvcClass::SockRecv));
        assert_eq!(avc_socket_class(&SocketOp::Create(SockDomain::Inet)), None);
        assert_eq!(avc_socket_class(&SocketOp::Listen), None);
        assert_eq!(avc_socket_class(&SocketOp::Accept), None);
    }
}
