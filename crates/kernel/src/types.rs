//! Kernel-level identifiers: processes, descriptors, pipes, sockets.

use std::fmt;

use shill_vfs::NodeId;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// File descriptor, per-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl Fd {
    pub const STDIN: Fd = Fd(0);
    pub const STDOUT: Fd = Fd(1);
    pub const STDERR: Fd = Fd(2);
}

/// Identifier of an anonymous pipe buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(pub u64);

/// Identifier of a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u64);

/// Any labelable kernel object. The MAC framework attaches policy labels to
/// kernel objects (TrustedBSD §3.2); this enum is the label key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjId {
    Vnode(NodeId),
    Pipe(PipeId),
    Socket(SockId),
}

impl From<NodeId> for ObjId {
    fn from(n: NodeId) -> ObjId {
        ObjId::Vnode(n)
    }
}

/// Which end of a pipe a descriptor references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    Read,
    Write,
}

/// Socket domains supported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SockDomain {
    /// IPv4.
    Inet,
    /// Unix-domain.
    Unix,
    /// Anything else (raw, netlink, ...). The SHILL language and sandbox deny
    /// these entirely (paper Figure 7, "Sockets (other): Denied").
    Other,
}

/// A network address: either a simulated remote host or a local port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SockAddr {
    /// `host:port` for Inet sockets.
    Inet { host: String, port: u16 },
    /// Filesystem path bind point for Unix sockets.
    Unix { path: String },
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SockAddr::Inet { host, port } => write!(f, "{host}:{port}"),
            SockAddr::Unix { path } => write!(f, "unix:{path}"),
        }
    }
}

/// Flags accepted by `openat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    pub append: bool,
    pub create: bool,
    pub truncate: bool,
    pub exclusive: bool,
    pub directory: bool,
    /// Do not follow a trailing symlink (`O_NOFOLLOW`).
    pub nofollow: bool,
}

impl OpenFlags {
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        append: false,
        create: false,
        truncate: false,
        exclusive: false,
        directory: false,
        nofollow: false,
    };

    pub fn rdwr() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    pub fn wronly() -> OpenFlags {
        OpenFlags {
            write: true,
            ..Default::default()
        }
    }

    pub fn creat_trunc_w() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }

    pub fn append_only() -> OpenFlags {
        OpenFlags {
            write: true,
            append: true,
            ..Default::default()
        }
    }

    pub fn dir() -> OpenFlags {
        OpenFlags {
            read: true,
            directory: true,
            ..Default::default()
        }
    }
}

/// Resource limits a SHILL `exec` may impose on a sandboxed child
/// (paper Figure 7 footnote: "SHILL allows calls to the exec function to
/// specify ulimit parameters for the child process").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ulimits {
    /// Maximum size in bytes a file may be grown to (`RLIMIT_FSIZE`).
    pub max_file_size: u64,
    /// Maximum number of simultaneously live descendant processes.
    pub max_processes: u32,
    /// Maximum number of open descriptors.
    pub max_open_files: u32,
    /// CPU budget in abstract "syscall ticks"; exceeded → process killed.
    pub max_cpu_ticks: u64,
}

impl Default for Ulimits {
    fn default() -> Self {
        Ulimits {
            max_file_size: u64::MAX,
            max_processes: 1024,
            max_open_files: 1024,
            max_cpu_ticks: u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_fds() {
        assert_eq!(Fd::STDIN, Fd(0));
        assert_eq!(Fd::STDOUT, Fd(1));
        assert_eq!(Fd::STDERR, Fd(2));
    }

    #[test]
    fn sockaddr_display() {
        let a = SockAddr::Inet {
            host: "mirror.gnu.org".into(),
            port: 80,
        };
        assert_eq!(a.to_string(), "mirror.gnu.org:80");
        let u = SockAddr::Unix {
            path: "/tmp/s".into(),
        };
        assert_eq!(u.to_string(), "unix:/tmp/s");
    }

    #[test]
    fn objid_from_nodeid() {
        let o: ObjId = NodeId(4).into();
        assert_eq!(o, ObjId::Vnode(NodeId(4)));
    }
}
