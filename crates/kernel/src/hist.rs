//! Log2-bucketed latency histograms for the observability plane.
//!
//! A [`LatencyHist`] is a fixed array of 64 power-of-two buckets over
//! nanosecond durations, recorded with relaxed atomics so the hot path
//! never takes a lock. Snapshots extract approximate quantiles (the
//! upper bound of the bucket containing the rank) and merge field-wise
//! across shards, mirroring how `KernelStats` snapshots fold in
//! `KernelShards::stats`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets. Bucket `i` holds durations whose bit length
/// is `i`, i.e. values in `[2^(i-1), 2^i)`; bucket 0 holds zero.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a duration in nanoseconds.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Upper bound (inclusive reporting value) of bucket `i` in nanoseconds.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64.checked_shl(i as u32)
            .map(|v| v - 1)
            .unwrap_or(u64::MAX)
    }
}

/// Concurrent log2 latency histogram. All updates are relaxed atomics.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHist {
    /// Record one duration in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum_ns: self.sum_ns.load(Relaxed),
            max_ns: self.max_ns.load(Relaxed),
        }
    }

    /// Zero every bucket and counter.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_ns.store(0, Relaxed);
        self.max_ns.store(0, Relaxed);
    }
}

/// Plain-integer copy of a [`LatencyHist`], safe to merge and inspect.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (log2 buckets, see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration in nanoseconds.
    pub max_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl std::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistSnapshot")
            .field("count", &self.count)
            .field("sum_ns", &self.sum_ns)
            .field("max_ns", &self.max_ns)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish_non_exhaustive()
    }
}

impl HistSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket that contains the sample of that rank. Returns 0 for an
    /// empty histogram. The true value is within 2x of the report,
    /// which is what log2 buckets buy.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency (ns, bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile latency (ns, bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile latency (ns, bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest recorded duration in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Field-wise sum of many snapshots (max is the max of maxes), the
    /// cross-shard aggregation used by `KernelShards`.
    pub fn merged(snaps: &[HistSnapshot]) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for s in snaps {
            for i in 0..HIST_BUCKETS {
                out.buckets[i] += s.buckets[i];
            }
            out.count += s.count;
            out.sum_ns = out.sum_ns.saturating_add(s.sum_ns);
            out.max_ns = out.max_ns.max(s.max_ns);
        }
        out
    }
}

/// One histogram per instrumented latency site.
#[derive(Debug, Default)]
pub struct SiteHists {
    /// Per-entry syscall dispatch latency.
    pub syscall: LatencyHist,
    /// Whole-batch submission latency (`submit_batch` / `submit_scheduled`).
    pub batch: LatencyHist,
    /// Scheduler wave execution latency.
    pub wave: LatencyHist,
    /// MAC checks that miss the AVC and reach a policy.
    pub mac: LatencyHist,
    /// Server front-end frame dispatch latency (`shill-server`).
    pub dispatch: LatencyHist,
}

impl SiteHists {
    /// Snapshot every site histogram.
    pub fn snapshot(&self) -> SiteHistsSnapshot {
        SiteHistsSnapshot {
            syscall: self.syscall.snapshot(),
            batch: self.batch.snapshot(),
            wave: self.wave.snapshot(),
            mac: self.mac.snapshot(),
            dispatch: self.dispatch.snapshot(),
        }
    }

    /// Zero every site histogram.
    pub fn reset(&self) {
        self.syscall.reset();
        self.batch.reset();
        self.wave.reset();
        self.mac.reset();
        self.dispatch.reset();
    }
}

/// Plain copy of [`SiteHists`], mergeable across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteHistsSnapshot {
    /// Per-entry syscall dispatch latency.
    pub syscall: HistSnapshot,
    /// Whole-batch submission latency.
    pub batch: HistSnapshot,
    /// Scheduler wave execution latency.
    pub wave: HistSnapshot,
    /// MAC checks that reach a policy.
    pub mac: HistSnapshot,
    /// Server front-end frame dispatch latency.
    pub dispatch: HistSnapshot,
}

impl SiteHistsSnapshot {
    /// Field-wise merge across shards.
    pub fn merged(snaps: &[SiteHistsSnapshot]) -> SiteHistsSnapshot {
        SiteHistsSnapshot {
            syscall: HistSnapshot::merged(&snaps.iter().map(|s| s.syscall).collect::<Vec<_>>()),
            batch: HistSnapshot::merged(&snaps.iter().map(|s| s.batch).collect::<Vec<_>>()),
            wave: HistSnapshot::merged(&snaps.iter().map(|s| s.wave).collect::<Vec<_>>()),
            mac: HistSnapshot::merged(&snaps.iter().map(|s| s.mac).collect::<Vec<_>>()),
            dispatch: HistSnapshot::merged(&snaps.iter().map(|s| s.dispatch).collect::<Vec<_>>()),
        }
    }

    /// Iterate `(site name, snapshot)` pairs in a stable order.
    pub fn sites(&self) -> [(&'static str, &HistSnapshot); 5] {
        [
            ("syscall", &self.syscall),
            ("batch", &self.batch),
            ("wave", &self.wave),
            ("mac", &self.mac),
            ("dispatch", &self.dispatch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LatencyHist::default();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper 16383
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max(), 10_000);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        // p99 lands in the slow bucket; capped at the observed max.
        assert_eq!(s.p99(), 10_000);
        assert!(s.mean_ns() >= 100 && s.mean_ns() <= 10_000);
    }

    #[test]
    fn empty_hist_is_all_zeros() {
        let s = LatencyHist::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn merged_sums_fieldwise() {
        let a = LatencyHist::default();
        let b = LatencyHist::default();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        let m = HistSnapshot::merged(&[a.snapshot(), b.snapshot()]);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_ns, 1_000_030);
        assert_eq!(m.max_ns, 1_000_000);
        // The merged p99 must see the slow shard's sample.
        assert!(m.p99() >= 524_288);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = LatencyHist::default();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }
}
