//! The MAC policy registry: which policy modules are loaded, in load order.
//!
//! Replaces the original bare `Vec<Arc<dyn MacPolicy>>` whose lifecycle
//! notifications cloned the whole vector per call. The registry also owns
//! the cache bookkeeping the access-vector cache ([`crate::avc`]) validates
//! against: an attach/detach epoch, and a memoized "are all loaded policies
//! cacheable" flag so the hot path never re-walks the stack to decide
//! whether the AVC may be consulted.

use std::sync::Arc;

use crate::mac::MacPolicy;

#[derive(Default)]
pub struct PolicyRegistry {
    entries: Vec<Arc<dyn MacPolicy>>,
    /// Bumped on every attach/detach; folded into the AVC's combined epoch
    /// so load-order changes invalidate all cached verdicts.
    epoch: u64,
    /// True iff every loaded policy opted into AVC caching. Vacuously true
    /// when no policy is loaded (the AVC is bypassed then anyway).
    all_cacheable: bool,
}

impl PolicyRegistry {
    pub fn new() -> PolicyRegistry {
        PolicyRegistry {
            entries: Vec::new(),
            epoch: 0,
            all_cacheable: true,
        }
    }

    pub fn attach(&mut self, policy: Arc<dyn MacPolicy>) {
        self.entries.push(policy);
        self.epoch += 1;
        self.recompute();
    }

    /// Detach by name; returns whether anything was removed.
    pub fn detach(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|p| p.name() != name);
        let removed = before != self.entries.len();
        if removed {
            self.epoch += 1;
            self.recompute();
        }
        removed
    }

    fn recompute(&mut self) {
        self.all_cacheable = self.entries.iter().all(|p| p.decisions_cacheable());
    }

    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|p| p.name() == name)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn as_slice(&self) -> &[Arc<dyn MacPolicy>] {
        &self.entries
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn MacPolicy>> {
        self.entries.iter()
    }

    /// Whether the AVC may be consulted for the current policy stack.
    pub fn cacheable(&self) -> bool {
        self.all_cacheable
    }

    /// The combined cache epoch: registry attach/detach epoch plus every
    /// policy's own epoch. Any authority-shrinking event anywhere in the
    /// stack changes this value and thereby invalidates the AVC.
    pub fn combined_epoch(&self) -> u64 {
        self.entries
            .iter()
            .fold(self.epoch, |acc, p| acc.wrapping_add(p.cache_epoch()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::NullPolicy;

    struct Uncacheable;
    impl MacPolicy for Uncacheable {
        fn name(&self) -> &str {
            "opaque"
        }
    }

    #[test]
    fn attach_detach_tracks_epoch_and_cacheability() {
        let mut r = PolicyRegistry::new();
        assert!(r.cacheable());
        let e0 = r.combined_epoch();
        r.attach(Arc::new(NullPolicy));
        assert!(r.cacheable());
        assert_ne!(r.combined_epoch(), e0);
        r.attach(Arc::new(Uncacheable));
        assert!(!r.cacheable(), "one opaque policy disables the AVC");
        assert!(r.detach("opaque"));
        assert!(r.cacheable());
        assert!(!r.detach("opaque"));
        assert!(r.contains("null"));
        assert_eq!(r.len(), 1);
    }
}
