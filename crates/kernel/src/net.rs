//! Simulated network stack.
//!
//! The paper's evaluation needs the network twice: the Emacs `download`
//! function fetches a tarball with `curl`, and the Apache case study serves
//! a 50 MB file to many concurrent clients. Real networking is unavailable
//! here, so this module simulates both directions:
//!
//! * **Outbound**: *remote endpoints* are registered as request→response
//!   handlers; `connect`/`send`/`recv` against their address exercise the
//!   full socket syscall path (and therefore every MAC socket check).
//! * **Inbound**: the benchmark driver *injects* client connections into a
//!   listening socket's accept queue; the sandboxed server `accept`s,
//!   `recv`s the request and `send`s the response, which the driver collects
//!   afterwards. Execution is synchronous, so the driver plays the client
//!   side before/after the server runs rather than concurrently.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use shill_vfs::{Errno, IoFault, SysResult};

use crate::fault::{FaultPlane, FaultSite};
use crate::pipe::data_fault_key;
use crate::types::{SockAddr, SockDomain, SockId};

/// Handler for a simulated remote host: consumes one request message and
/// produces the response bytes.
pub type RemoteHandler = Box<dyn FnMut(&[u8]) -> Vec<u8> + Send + Sync>;

/// Identifier for an injected (inbound) connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjConnId(pub u64);

#[derive(Debug)]
struct InjConn {
    request: VecDeque<u8>,
    response: Vec<u8>,
    finished: bool,
}

enum ConnKind {
    Remote {
        addr: SockAddr,
        recv_buf: VecDeque<u8>,
    },
    Injected(InjConnId),
}

enum SockState {
    New,
    Bound(SockAddr),
    Listening {
        addr: SockAddr,
        pending: VecDeque<InjConnId>,
    },
    Connected(ConnKind),
    Closed,
}

struct Socket {
    domain: SockDomain,
    state: SockState,
}

/// The network stack: sockets, listeners, remote endpoints, injected
/// connections, and traffic counters.
#[derive(Default)]
pub struct NetStack {
    remotes: HashMap<SockAddr, RemoteHandler>,
    sockets: HashMap<SockId, Socket>,
    listeners: HashMap<SockAddr, SockId>,
    inj: HashMap<InjConnId, InjConn>,
    /// Connections queued for an address *before* anything listens there;
    /// delivered to the accept queue at `listen` time. This is how a
    /// synchronous driver plays "clients" against a server it runs next.
    preloaded: HashMap<SockAddr, VecDeque<InjConnId>>,
    next_sock: u64,
    next_conn: u64,
    /// Total bytes sent/received through sockets, for tests and reports.
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Fault plane consulted on the data path (`sock.send` / `sock.recv`
    /// sites); installed by [`crate::kernel::Kernel::set_fault_plane`].
    faults: Option<Arc<FaultPlane>>,
}

impl NetStack {
    pub fn new() -> NetStack {
        NetStack::default()
    }

    /// A stack allocating `SockId`s from `base` upward. Kernel shards use
    /// disjoint bases so socket ids — which key shared MAC policy labels —
    /// never alias across shards.
    pub fn with_id_base(base: u64) -> NetStack {
        NetStack {
            next_sock: base,
            ..NetStack::default()
        }
    }

    /// Install (or clear) the fault plane consulted on sends and receives.
    pub fn set_fault_plane(&mut self, plane: Option<Arc<FaultPlane>>) {
        self.faults = plane;
    }

    /// Register a simulated remote host at `addr`.
    pub fn register_remote(&mut self, addr: SockAddr, handler: RemoteHandler) {
        self.remotes.insert(addr, handler);
    }

    /// Create an unbound socket.
    pub fn socket(&mut self, domain: SockDomain) -> SockId {
        self.next_sock += 1;
        let id = SockId(self.next_sock);
        self.sockets.insert(
            id,
            Socket {
                domain,
                state: SockState::New,
            },
        );
        id
    }

    pub fn domain(&self, sock: SockId) -> SysResult<SockDomain> {
        Ok(self.sockets.get(&sock).ok_or(Errno::EBADF)?.domain)
    }

    fn get_mut(&mut self, sock: SockId) -> SysResult<&mut Socket> {
        self.sockets.get_mut(&sock).ok_or(Errno::EBADF)
    }

    /// Bind a socket to a local address.
    pub fn bind(&mut self, sock: SockId, addr: SockAddr) -> SysResult<()> {
        if self.listeners.contains_key(&addr) {
            return Err(Errno::EADDRINUSE);
        }
        let s = self.get_mut(sock)?;
        match s.state {
            SockState::New => {
                s.state = SockState::Bound(addr);
                Ok(())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Start listening on a bound socket. Any connections preloaded for the
    /// address land in the accept queue immediately.
    pub fn listen(&mut self, sock: SockId) -> SysResult<()> {
        let state = {
            let s = self.get_mut(sock)?;
            std::mem::replace(&mut s.state, SockState::Closed)
        };
        match state {
            SockState::Bound(addr) => {
                let pending = self.preloaded.remove(&addr).unwrap_or_default();
                let s = self.get_mut(sock)?;
                s.state = SockState::Listening {
                    addr: addr.clone(),
                    pending,
                };
                self.listeners.insert(addr, sock);
                Ok(())
            }
            other => {
                self.get_mut(sock)?.state = other;
                Err(Errno::EINVAL)
            }
        }
    }

    /// Queue an inbound client connection for `addr` before (or after) a
    /// listener exists. Driver-side API.
    pub fn preload_connection(&mut self, addr: SockAddr, request: Vec<u8>) -> InjConnId {
        self.next_conn += 1;
        let id = InjConnId(self.next_conn);
        self.inj.insert(
            id,
            InjConn {
                request: request.into(),
                response: Vec::new(),
                finished: false,
            },
        );
        // If a listener is already up, deliver straight to its queue.
        if let Some(lsock) = self.listeners.get(&addr).copied() {
            if let Some(Socket {
                state: SockState::Listening { pending, .. },
                ..
            }) = self.sockets.get_mut(&lsock)
            {
                pending.push_back(id);
                return id;
            }
        }
        self.preloaded.entry(addr).or_default().push_back(id);
        id
    }

    /// Queue an inbound client connection carrying `request` onto the
    /// listener bound at `addr`. Driver-side API (not a syscall).
    pub fn inject_connection(&mut self, addr: &SockAddr, request: Vec<u8>) -> SysResult<InjConnId> {
        let lsock = *self.listeners.get(addr).ok_or(Errno::ECONNREFUSED)?;
        self.next_conn += 1;
        let id = InjConnId(self.next_conn);
        self.inj.insert(
            id,
            InjConn {
                request: request.into(),
                response: Vec::new(),
                finished: false,
            },
        );
        match &mut self.get_mut(lsock)?.state {
            SockState::Listening { pending, .. } => {
                pending.push_back(id);
                Ok(id)
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Number of connections waiting in a listener's accept queue.
    pub fn pending(&self, sock: SockId) -> SysResult<usize> {
        match &self.sockets.get(&sock).ok_or(Errno::EBADF)?.state {
            SockState::Listening { pending, .. } => Ok(pending.len()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Accept one pending connection; `EAGAIN` when the queue is empty.
    pub fn accept(&mut self, sock: SockId) -> SysResult<SockId> {
        let conn = match &mut self.get_mut(sock)?.state {
            SockState::Listening { pending, .. } => pending.pop_front().ok_or(Errno::EAGAIN)?,
            _ => return Err(Errno::EINVAL),
        };
        let domain = self.domain(sock)?;
        self.next_sock += 1;
        let id = SockId(self.next_sock);
        self.sockets.insert(
            id,
            Socket {
                domain,
                state: SockState::Connected(ConnKind::Injected(conn)),
            },
        );
        Ok(id)
    }

    /// Connect to a registered remote endpoint.
    pub fn connect(&mut self, sock: SockId, addr: SockAddr) -> SysResult<()> {
        if !self.remotes.contains_key(&addr) {
            return Err(Errno::ECONNREFUSED);
        }
        let s = self.get_mut(sock)?;
        match s.state {
            SockState::New => {
                s.state = SockState::Connected(ConnKind::Remote {
                    addr,
                    recv_buf: VecDeque::new(),
                });
                Ok(())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Send on a connected socket. For remote connections each `send` is one
    /// request message; the handler's response is buffered for `recv`. For
    /// injected connections the bytes accumulate as the response the driver
    /// will collect.
    pub fn send(&mut self, sock: SockId, mut buf: &[u8]) -> SysResult<usize> {
        self.bytes_sent += buf.len() as u64;
        // Classify the connection first so the socket borrow ends before we
        // touch the handler or injected-connection tables.
        enum Target {
            Remote(SockAddr),
            Injected(InjConnId),
        }
        let target = match &self.sockets.get(&sock).ok_or(Errno::EBADF)?.state {
            SockState::Connected(ConnKind::Remote { addr, .. }) => Target::Remote(addr.clone()),
            SockState::Connected(ConnKind::Injected(conn)) => Target::Injected(*conn),
            _ => return Err(Errno::ENOTCONN),
        };
        // Fault check after classification: an injected reset models the
        // peer dying mid-send, not a bad descriptor.
        if let Some(plane) = &self.faults {
            match plane.check_io(
                FaultSite::SockSend,
                data_fault_key(sock.0, buf.len()),
                buf.len(),
            ) {
                Some(IoFault::Fail(e)) => return Err(e),
                Some(IoFault::Short(n)) => {
                    // Only the prefix goes on the wire; keep the counter
                    // honest about what was actually transmitted.
                    self.bytes_sent -= (buf.len() - n) as u64;
                    buf = &buf[..n];
                }
                None => {}
            }
        }
        match target {
            Target::Remote(addr) => {
                // Take/put the handler so it cannot observe a partially
                // borrowed stack while producing the response.
                let mut handler = self.remotes.remove(&addr).ok_or(Errno::ECONNRESET)?;
                let response = handler(buf);
                self.remotes.insert(addr, handler);
                match &mut self.sockets.get_mut(&sock).ok_or(Errno::EBADF)?.state {
                    SockState::Connected(ConnKind::Remote { recv_buf, .. }) => {
                        recv_buf.extend(response);
                        Ok(buf.len())
                    }
                    _ => Err(Errno::ENOTCONN),
                }
            }
            Target::Injected(conn) => {
                let c = self.inj.get_mut(&conn).ok_or(Errno::ECONNRESET)?;
                c.response.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }

    /// Receive up to `len` bytes; `Ok(empty)` signals EOF.
    pub fn recv(&mut self, sock: SockId, mut len: usize) -> SysResult<Vec<u8>> {
        let s = self.sockets.get_mut(&sock).ok_or(Errno::EBADF)?;
        if let Some(plane) = &self.faults {
            if matches!(s.state, SockState::Connected(_)) {
                match plane.check_io(FaultSite::SockRecv, data_fault_key(sock.0, len), len) {
                    Some(IoFault::Fail(e)) => return Err(e),
                    Some(IoFault::Short(n)) => len = n,
                    None => {}
                }
            }
        }
        let out = match &mut s.state {
            SockState::Connected(ConnKind::Remote { recv_buf, .. }) => {
                let n = len.min(recv_buf.len());
                recv_buf.drain(..n).collect::<Vec<u8>>()
            }
            SockState::Connected(ConnKind::Injected(conn)) => {
                let conn = *conn;
                let c = self.inj.get_mut(&conn).ok_or(Errno::ECONNRESET)?;
                let n = len.min(c.request.len());
                c.request.drain(..n).collect::<Vec<u8>>()
            }
            _ => return Err(Errno::ENOTCONN),
        };
        self.bytes_received += out.len() as u64;
        Ok(out)
    }

    /// Close a socket; marks an injected connection finished so the driver
    /// knows the response is complete.
    pub fn close(&mut self, sock: SockId) {
        if let Some(s) = self.sockets.get_mut(&sock) {
            if let SockState::Connected(ConnKind::Injected(conn)) = &s.state {
                if let Some(c) = self.inj.get_mut(conn) {
                    c.finished = true;
                }
            }
            if let SockState::Listening { addr, .. } = &s.state {
                self.listeners.remove(addr);
            }
            s.state = SockState::Closed;
        }
    }

    /// Driver-side: take the response bytes a server wrote to an injected
    /// connection. Returns `(finished, bytes)`.
    pub fn take_response(&mut self, conn: InjConnId) -> SysResult<(bool, Vec<u8>)> {
        let c = self.inj.remove(&conn).ok_or(Errno::EINVAL)?;
        Ok((c.finished, c.response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inet(port: u16) -> SockAddr {
        SockAddr::Inet {
            host: "test.example".into(),
            port,
        }
    }

    #[test]
    fn outbound_request_response() {
        let mut n = NetStack::new();
        n.register_remote(
            inet(80),
            Box::new(|req| {
                let mut v = b"echo:".to_vec();
                v.extend_from_slice(req);
                v
            }),
        );
        let s = n.socket(SockDomain::Inet);
        n.connect(s, inet(80)).unwrap();
        n.send(s, b"hello").unwrap();
        assert_eq!(n.recv(s, 100).unwrap(), b"echo:hello");
        assert_eq!(n.recv(s, 100).unwrap(), b""); // EOF
    }

    #[test]
    fn connect_unregistered_is_refused() {
        let mut n = NetStack::new();
        let s = n.socket(SockDomain::Inet);
        assert_eq!(n.connect(s, inet(81)).unwrap_err(), Errno::ECONNREFUSED);
    }

    #[test]
    fn inbound_inject_accept_serve() {
        let mut n = NetStack::new();
        let server = n.socket(SockDomain::Inet);
        let addr = SockAddr::Inet {
            host: "0.0.0.0".into(),
            port: 8080,
        };
        n.bind(server, addr.clone()).unwrap();
        n.listen(server).unwrap();
        let conn = n.inject_connection(&addr, b"GET /file".to_vec()).unwrap();
        assert_eq!(n.pending(server).unwrap(), 1);

        let c = n.accept(server).unwrap();
        assert_eq!(n.recv(c, 3).unwrap(), b"GET");
        assert_eq!(n.recv(c, 100).unwrap(), b" /file");
        n.send(c, b"200 OK").unwrap();
        n.close(c);

        let (finished, resp) = n.take_response(conn).unwrap();
        assert!(finished);
        assert_eq!(resp, b"200 OK");
    }

    #[test]
    fn accept_empty_queue_is_eagain() {
        let mut n = NetStack::new();
        let server = n.socket(SockDomain::Inet);
        let addr = SockAddr::Inet {
            host: "0.0.0.0".into(),
            port: 9. as u16,
        };
        n.bind(server, addr).unwrap();
        n.listen(server).unwrap();
        assert_eq!(n.accept(server).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn double_bind_is_addrinuse() {
        let mut n = NetStack::new();
        let a = n.socket(SockDomain::Inet);
        let b = n.socket(SockDomain::Inet);
        let addr = SockAddr::Inet {
            host: "0.0.0.0".into(),
            port: 80,
        };
        n.bind(a, addr.clone()).unwrap();
        n.listen(a).unwrap();
        assert_eq!(n.bind(b, addr.clone()).unwrap_err(), Errno::EADDRINUSE);
        // Closing the listener frees the address.
        n.close(a);
        n.bind(b, addr).unwrap();
    }

    #[test]
    fn injected_socket_faults_fail_and_shorten() {
        let mut n = NetStack::new();
        n.register_remote(
            inet(80),
            Box::new(|req| {
                let mut v = b"echo:".to_vec();
                v.extend_from_slice(req);
                v
            }),
        );
        let s = n.socket(SockDomain::Inet);
        n.connect(s, inet(80)).unwrap();
        n.set_fault_plane(Some(Arc::new(
            FaultPlane::seeded(1, 0, &[])
                .fail_on(FaultSite::SockSend, 1, Errno::ECONNRESET)
                .short_on(FaultSite::SockSend, 2, 3)
                .fail_on(FaultSite::SockRecv, 1, Errno::ECONNRESET),
        )));
        assert_eq!(n.send(s, b"hello").unwrap_err(), Errno::ECONNRESET);
        assert_eq!(n.send(s, b"hello").unwrap(), 3, "short send");
        assert_eq!(n.bytes_sent, 5 + 3, "counter reflects transmitted bytes");
        assert_eq!(n.recv(s, 100).unwrap_err(), Errno::ECONNRESET);
        assert_eq!(
            n.recv(s, 100).unwrap(),
            b"echo:hel",
            "prefix was the request"
        );
        let plane = n.faults.as_ref().unwrap();
        assert_eq!(
            plane.drain(),
            (3, 3),
            "all injected faults surfaced cleanly"
        );
    }

    #[test]
    fn traffic_counters() {
        let mut n = NetStack::new();
        n.register_remote(inet(80), Box::new(|_| vec![0u8; 10]));
        let s = n.socket(SockDomain::Inet);
        n.connect(s, inet(80)).unwrap();
        n.send(s, b"abcd").unwrap();
        n.recv(s, 10).unwrap();
        assert_eq!(n.bytes_sent, 4);
        assert_eq!(n.bytes_received, 10);
    }
}
