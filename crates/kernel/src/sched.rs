//! io_uring-style completion scheduler for batched submissions: the batch
//! subsystem's out-of-order execution engine.
//!
//! [`crate::batch`] gave the runtime→kernel boundary a submission queue;
//! this module gives it a **completion model**. A [`SyscallBatch`] whose
//! entries declare their dependencies (explicit [`SyscallBatch::deps`]
//! edges plus the data edges implied by [`crate::batch::BatchFd::FromEntry`]
//! / [`crate::batch::BatchArg::OutputOf`] slot references) is validated
//! into a [`BatchDag`], topologically layered into **ready waves**, and
//! executed wave by wave: every entry in a wave has all of its dependencies
//! satisfied, so the scheduler is free to run waves' entries in any order
//! relative to the submission order — an entry whose dependencies resolve
//! early overtakes earlier-submitted entries that are still waiting on
//! theirs. Results are delivered through a completion queue of
//! [`Completion`] records in *execution* order; slot order is recoverable
//! via [`Completion::slot`].
//!
//! ## Equivalence contract
//!
//! Scheduled execution must be observationally equivalent to
//! [`crate::Kernel::run_sequential`] — same per-slot results, errnos, audit
//! denials, and cache-counter evolution — for every batch whose
//! *conflicting* entries are ordered by the DAG (the io_uring contract:
//! operations racing on shared state without a declared edge have
//! unspecified relative order). Within a wave, entries execute in ascending
//! slot order, so a batch with **no** edges degenerates to exactly the
//! in-order path; `FailMode::Abort` batches with no edges are treated as
//! one linear chain (see [`crate::batch::FailMode`]), preserving the
//! legacy `&&`-chain semantics under the scheduler too. One caveat:
//! descriptor *numbers* returned by `Open` entries are covered only up to
//! renaming — the fd allocator is a monotonic counter, so a reordered
//! (or transiently fused) open shifts later numbers; in-batch consumers
//! use slot references precisely so nothing else depends on the number.
//! The DAG property suite in `tests/batch_equivalence.rs` is the
//! enforcement.
//!
//! ## Cancellation cones
//!
//! A failed entry never cancels "every later entry". It poisons its
//! transitive *data* dependents (their input does not exist) under both
//! fail modes; under [`FailMode::Abort`] the poison also follows declared
//! ordering edges, so the failure cancels exactly its **dependency cone**
//! while independent entries keep executing. Cancelled slots report
//! `ECANCELED` without executing: they are not counted in `batch_entries`,
//! produce no audit denials, and are booked as cancellations (not
//! failures) in the batch's audit span — identical accounting to the
//! in-order abort path.
//!
//! ## Locking and the worker pool
//!
//! [`crate::Kernel::submit_scheduled`] runs all waves under one amortized
//! [`crate::batch::BatchState`] installation (one ulimit charge, one MAC
//! context, one prefix cache). The steppable form —
//! [`ScheduledRun::prepare`] (pure validation, no kernel access, callable
//! outside any lock) + [`crate::Kernel::sched_run_wave`] +
//! [`crate::Kernel::sched_finish`] — installs batch state **per wave**, so
//! a worker pool (`shill-sandbox`'s `BatchPool`) can acquire the shared
//! kernel per-wave instead of per-batch and interleave waves of different
//! sessions' submissions. Per-wave installation re-reads the tick budget
//! each wave (write-back keeps the cumulative count, so `EAGAIN` trip
//! points are unchanged) and starts a fresh prefix cache (correctness is
//! unaffected — prefix hits are generation/epoch-fenced at probe time).
//! Lock order is inherited from the executor: the kernel lock is acquired
//! first and no interior cache/policy lock is ever held across a wave
//! boundary.

use shill_vfs::{Errno, SysResult};

use crate::batch::{BatchGuard, BatchOut, FailMode, SyscallBatch};
use crate::kernel::Kernel;
use crate::stats::KernelStats;
use crate::types::Pid;

/// One delivered result: which submission slot completed, and its outcome.
/// `ECANCELED` outcomes mark slots cancelled by dependency poisoning (the
/// entry never executed).
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The submission slot (index into [`SyscallBatch::entries`]).
    pub slot: usize,
    /// The slot's outcome (or `ECANCELED` for a poisoned slot).
    pub out: SysResult<BatchOut>,
}

/// Reassemble completions into slot-ordered results (the `submit_batch`
/// shape), for callers that want positional access. `EINVAL` fills any
/// slot that never completed (impossible for a finished run; defensive).
pub fn completions_to_slots(n: usize, completions: &[Completion]) -> Vec<SysResult<BatchOut>> {
    let mut out: Vec<SysResult<BatchOut>> = vec![Err(Errno::EINVAL); n];
    for c in completions {
        if let Some(slot) = out.get_mut(c.slot) {
            *slot = c.out.clone();
        }
    }
    out
}

/// A batch's validated dependency DAG: per-entry data and ordering edges,
/// layered into ready waves.
#[derive(Debug, Clone)]
pub struct BatchDag {
    /// `data_deps[i]`: producers entry `i` slot-references. A failed or
    /// cancelled producer always poisons `i`.
    data_deps: Vec<Vec<usize>>,
    /// `order_deps[i]`: declared dependencies of entry `i`. Poison follows
    /// these edges only under [`FailMode::Abort`].
    order_deps: Vec<Vec<usize>>,
    /// `waves[w]`: slots whose longest dependency chain has length `w`,
    /// in ascending slot order.
    waves: Vec<Vec<usize>>,
}

impl BatchDag {
    /// Validate a batch's references and edges and layer it into waves.
    /// `EINVAL` for forward/self/out-of-range references or declared
    /// edges, and for slot references whose producer cannot produce the
    /// referenced kind (`FromEntry` of a non-`Open`, `OutputOf` of a
    /// non-read entry). Backward-only edges make cycles unrepresentable,
    /// so no cycle check is needed.
    pub fn build(batch: &SyscallBatch) -> SysResult<BatchDag> {
        let n = batch.entries.len();
        let mut data_deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, entry) in batch.entries.iter().enumerate() {
            for (producer, wants_fd) in entry.slot_refs().into_iter().flatten() {
                if producer >= i {
                    return Err(Errno::EINVAL);
                }
                let p = &batch.entries[producer];
                let compatible = if wants_fd {
                    p.produces_fd()
                } else {
                    p.produces_data()
                };
                if !compatible {
                    return Err(Errno::EINVAL);
                }
                data_deps[i].push(producer);
            }
            data_deps[i].sort_unstable();
            data_deps[i].dedup();
        }
        let mut order_deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(entry, on) in &batch.deps {
            if entry >= n || on >= entry {
                return Err(Errno::EINVAL);
            }
            order_deps[entry].push(on);
        }
        // Legacy `&&`-chain: an Abort batch that declares no structure at
        // all is one linear dependency chain, exactly as the pre-scheduler
        // abort semantics cancelled every entry after the first failure.
        if batch.fail_mode == FailMode::Abort
            && batch.deps.is_empty()
            && data_deps.iter().all(|d| d.is_empty())
        {
            for (i, deps) in order_deps.iter_mut().enumerate().skip(1) {
                deps.push(i - 1);
            }
        }
        for deps in &mut order_deps {
            deps.sort_unstable();
            deps.dedup();
        }
        // Longest-path layering: an entry's wave is one past its deepest
        // dependency's.
        let mut wave_of = vec![0usize; n];
        let mut height = 0usize;
        for i in 0..n {
            let w = data_deps[i]
                .iter()
                .chain(&order_deps[i])
                .map(|&j| wave_of[j] + 1)
                .max()
                .unwrap_or(0);
            wave_of[i] = w;
            height = height.max(w);
        }
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); if n == 0 { 0 } else { height + 1 }];
        for (i, &w) in wave_of.iter().enumerate() {
            waves[w].push(i);
        }
        Ok(BatchDag {
            data_deps,
            order_deps,
            waves,
        })
    }

    /// The wave layering (slot indices per wave, ascending).
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Whether `slot` must be cancelled instead of executed, given the
    /// results recorded so far: any failed-or-cancelled data producer
    /// poisons it; under Abort, any failed-or-cancelled declared
    /// dependency does too. All of `slot`'s dependencies completed in
    /// every valid execution order before `slot` is considered, so this is
    /// order-independent — the wave scheduler and the in-order paths
    /// compute identical cancellation sets.
    pub(crate) fn should_cancel(
        &self,
        slot: usize,
        fail_mode: FailMode,
        results: &[Option<SysResult<BatchOut>>],
    ) -> bool {
        let failed = |j: usize| matches!(results[j], Some(Err(_)));
        self.data_deps[slot].iter().any(|&j| failed(j))
            || (fail_mode == FailMode::Abort && self.order_deps[slot].iter().any(|&j| failed(j)))
    }
}

/// An in-flight scheduled submission: the validated DAG plus per-slot
/// results and the completion queue. Built outside any kernel lock by
/// [`ScheduledRun::prepare`]; advanced one wave at a time by
/// [`Kernel::sched_run_wave`] (or drained in one go by
/// [`Kernel::submit_scheduled`]).
pub struct ScheduledRun {
    pid: Pid,
    batch: SyscallBatch,
    dag: BatchDag,
    results: Vec<Option<SysResult<BatchOut>>>,
    /// Slots in execution order. Results are *not* cloned into a
    /// completion list while the kernel (lock) is held — only this cheap
    /// index is recorded; [`ScheduledRun::into_completions`] materializes
    /// the queue afterwards, by move.
    order: Vec<usize>,
    /// The MAC context captured at the first wave's installation — the
    /// context the entries actually ran under. The audit span uses it
    /// even if the submitting process is gone by finish time.
    ctx: Option<crate::mac::MacCtx>,
    next_wave: usize,
    /// Per-wave execution durations in nanoseconds, one slot per executed
    /// wave. Measured only while the tracing plane's wave site is armed
    /// (zeros otherwise) and handed to the audit span at finish.
    wave_ns: Vec<u64>,
}

impl ScheduledRun {
    /// Validate `batch` into an executable run. Pure computation — no
    /// kernel access, so a worker pool calls this outside the kernel lock.
    pub fn prepare(pid: Pid, batch: SyscallBatch) -> SysResult<ScheduledRun> {
        let dag = BatchDag::build(&batch)?;
        let mut results = Vec::new();
        results.resize_with(batch.entries.len(), || None);
        Ok(ScheduledRun {
            pid,
            batch,
            dag,
            results,
            order: Vec::new(),
            ctx: None,
            next_wave: 0,
            wave_ns: Vec::new(),
        })
    }

    /// The submitting process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Whether every wave has executed.
    pub fn finished(&self) -> bool {
        self.next_wave >= self.dag.waves.len()
    }

    /// Slots completed so far, in execution order — the steppable
    /// consumer's per-wave peek: after each [`Kernel::sched_run_wave`] a
    /// caller (streaming reads, `select`) can see which slots have
    /// delivered while later waves are still pending.
    pub fn completed_slots(&self) -> &[usize] {
        &self.order
    }

    /// Borrow a completed slot's result (`None` until it executes or is
    /// cancelled). Payloads stay in place — the streaming consumer clones
    /// the wave it is about to hand out and leaves the rest unmoved for
    /// [`ScheduledRun::into_completions`].
    pub fn result_of(&self, slot: usize) -> Option<&SysResult<BatchOut>> {
        self.results.get(slot)?.as_ref()
    }

    /// Slot-ordered results (the `submit_batch` shape).
    pub fn slot_results(&self) -> Vec<SysResult<BatchOut>> {
        self.results
            .iter()
            .map(|r| r.clone().unwrap_or(Err(Errno::EINVAL)))
            .collect()
    }

    /// Consume the run into its completion queue (execution order), moving
    /// each result — no payload copies, and callable outside any kernel
    /// lock (this is where the pool does its per-job assembly work).
    pub fn into_completions(mut self) -> Vec<Completion> {
        let order = std::mem::take(&mut self.order);
        drain_completions(order, &mut self.results)
    }

    /// Per-slot outcomes in slot order (`None` = success), for audit.
    fn outcomes(&self) -> Vec<Option<Errno>> {
        outcomes_of(&self.results)
    }
}

/// Per-slot outcomes in slot order (`None` = success) from a result table.
fn outcomes_of(results: &[Option<SysResult<BatchOut>>]) -> Vec<Option<Errno>> {
    results
        .iter()
        .map(|r| match r {
            Some(Err(e)) => Some(*e),
            _ => None,
        })
        .collect()
}

/// Materialize a completion queue from an execution order and a result
/// table, by move.
fn drain_completions(
    order: Vec<usize>,
    results: &mut [Option<SysResult<BatchOut>>],
) -> Vec<Completion> {
    order
        .into_iter()
        .map(|slot| Completion {
            slot,
            out: results[slot].take().unwrap_or(Err(Errno::EINVAL)),
        })
        .collect()
}

impl Kernel {
    /// Submit a dependency-aware batch and execute it out of order in
    /// ready waves, under one amortized charge/context/prefix
    /// installation. The batch is borrowed — nothing is cloned. Returns
    /// the completion queue in execution order ([`completions_to_slots`]
    /// recovers positional results). The outer `Err` is reserved for
    /// submission-level failures: malformed references (`EINVAL`), nested
    /// submission (`EINVAL`), dead process (`ESRCH`).
    pub fn submit_scheduled(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
    ) -> SysResult<Vec<Completion>> {
        let dag = BatchDag::build(batch)?;
        let n = batch.entries.len();
        let mut results: Vec<Option<SysResult<BatchOut>>> = Vec::new();
        results.resize_with(n, || None);
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut wave_ns: Vec<u64> = Vec::with_capacity(dag.waves.len());
        let batch_span = self.trace_span(
            crate::trace::TraceSite::Batch,
            pid.0 as u64,
            batch.entries.len() as u64,
        );
        let ctx = {
            let guard = BatchGuard::install(self, pid)?;
            KernelStats::bump(&guard.k.stats.batches);
            let ctx = guard.ctx();
            for wave in 0..dag.waves.len() {
                let ns = guard
                    .k
                    .exec_wave_core(pid, batch, &dag, wave, &mut results, &mut order);
                wave_ns.push(ns);
            }
            ctx
        };
        drop(batch_span);
        let outcomes = outcomes_of(&results);
        for p in self.policies() {
            p.batch_complete(ctx, &outcomes, dag.waves(), &wave_ns);
        }
        Ok(drain_completions(order, &mut results))
    }

    /// Execute the next ready wave of `run` under a per-wave batch-state
    /// installation, releasing the amortized state before returning (so a
    /// shared-kernel worker can drop the kernel lock between waves).
    /// Returns whether waves remain. `EINVAL` while another submission's
    /// batch state is live on this kernel.
    pub fn sched_run_wave(&mut self, run: &mut ScheduledRun) -> SysResult<bool> {
        if run.ctx.is_none() {
            // First call: install even when the batch has zero waves, so
            // the liveness check (`ESRCH`), the `batches` stat, and the
            // audit context match `submit_scheduled` of the same batch.
            let guard = BatchGuard::install(self, run.pid)?;
            KernelStats::bump(&guard.k.stats.batches);
            // The audit span reports the context the entries ran under,
            // even if the process is reclaimed before the run finishes.
            run.ctx = Some(guard.ctx());
            if !run.finished() {
                guard.k.exec_wave(run);
            }
            return Ok(!run.finished());
        }
        if run.finished() {
            return Ok(false);
        }
        let guard = BatchGuard::install(self, run.pid)?;
        guard.k.exec_wave(run);
        drop(guard);
        Ok(!run.finished())
    }

    /// Deliver a finished run's audit span (the only step that needs the
    /// kernel). `EINVAL` if waves remain. Worker pools call this under the
    /// kernel lock and then assemble the completion queue outside it with
    /// [`ScheduledRun::into_completions`]. The span carries the context
    /// captured when the run's first wave installed — not a re-read — so
    /// a process reclaimed between last wave and finish still gets its
    /// span, attributed to the credentials the entries were checked under.
    pub fn sched_audit(&mut self, run: &ScheduledRun) -> SysResult<()> {
        if !run.finished() {
            return Err(Errno::EINVAL);
        }
        if let Some(ctx) = run.ctx {
            let outcomes = run.outcomes();
            for p in self.policies() {
                p.batch_complete(ctx, &outcomes, run.dag.waves(), &run.wave_ns);
            }
        }
        Ok(())
    }

    /// Deliver a finished run's audit span and hand back its completion
    /// queue. `EINVAL` if waves remain.
    pub fn sched_finish(&mut self, run: ScheduledRun) -> SysResult<Vec<Completion>> {
        self.sched_audit(&run)?;
        Ok(run.into_completions())
    }

    /// Execute one wave: cancelled slots complete immediately with
    /// `ECANCELED`; live slots execute in ascending slot order within the
    /// wave. Requires installed batch state.
    fn exec_wave(&mut self, run: &mut ScheduledRun) {
        // Split the borrows: the batch/dag are read-only while results and
        // order are written.
        let ScheduledRun {
            pid,
            batch,
            dag,
            results,
            order,
            next_wave,
            wave_ns,
            ..
        } = run;
        let ns = self.exec_wave_core(*pid, batch, dag, *next_wave, results, order);
        wave_ns.push(ns);
        *next_wave += 1;
    }

    /// The wave executor shared by the one-shot and steppable paths.
    /// Returns the wave's execution duration in nanoseconds when the
    /// tracing plane's wave site is armed, 0 otherwise — the off path
    /// never reads the clock.
    fn exec_wave_core(
        &mut self,
        pid: Pid,
        batch: &SyscallBatch,
        dag: &BatchDag,
        wave: usize,
        results: &mut [Option<SysResult<BatchOut>>],
        order: &mut Vec<usize>,
    ) -> u64 {
        KernelStats::bump(&self.stats.sched_waves);
        let _wave_span = self.trace_span(crate::trace::TraceSite::Wave, pid.0 as u64, wave as u64);
        let wave_t0 = self
            .trace_wants(crate::trace::TraceSite::Wave)
            .then(std::time::Instant::now);
        // Out-of-order accounting: each already-completed slot with a
        // *larger* index than an executing slot is one submission-order
        // inversion. Slots executed earlier in *this* wave always have
        // smaller indices (within-wave order is ascending), so only prior
        // waves' completions can invert — count them against a sorted
        // snapshot instead of rescanning the order list per slot.
        let mut prior = order.clone();
        prior.sort_unstable();
        for &slot in &dag.waves[wave] {
            let r = if dag.should_cancel(slot, batch.fail_mode, results) {
                KernelStats::bump(&self.stats.sched_cancelled_cone);
                Err(Errno::ECANCELED)
            } else if let Err(e) = self.fault_batch_entry(pid, slot) {
                // Slot-keyed injection: the same entry fails here as on
                // the in-order path, no matter which wave or worker runs
                // it — execution order never changes the fault schedule.
                Err(e)
            } else {
                KernelStats::bump(&self.stats.batch_entries);
                // Per-entry dispatch span: with the in-order loop in
                // `crate::batch`, this covers syscall dispatch in all
                // four execution modes.
                let _syscall_span =
                    self.trace_span(crate::trace::TraceSite::Syscall, pid.0 as u64, slot as u64);
                self.exec_entry(pid, &batch.entries[slot], results)
            };
            let inversions = (prior.len() - prior.partition_point(|&s| s < slot)) as u64;
            KernelStats::add(&self.stats.sched_reorders, inversions);
            results[slot] = Some(r);
            order.push(slot);
        }
        wave_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchArg, BatchEntry, BatchFd};
    use crate::types::OpenFlags;
    use shill_vfs::{Cred, Gid, Mode, Uid};

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.fs.mkdir_p("/w/sub", Mode::DIR_DEFAULT, Uid::ROOT, Gid::WHEEL)
            .unwrap();
        for i in 0..3 {
            k.fs.put_file(
                &format!("/w/sub/f{i}"),
                format!("data-{i}").as_bytes(),
                Mode::FILE_DEFAULT,
                Uid::ROOT,
                Gid::WHEEL,
            )
            .unwrap();
        }
        let pid = k.spawn_user(Cred::ROOT);
        (k, pid)
    }

    fn stat_entry(path: &str) -> BatchEntry {
        BatchEntry::Stat {
            dirfd: None,
            path: path.to_string(),
            follow: true,
        }
    }

    #[test]
    fn waves_layer_by_longest_dependency_chain() {
        let batch = SyscallBatch::new(vec![
            BatchEntry::Open {
                dirfd: None,
                path: "/w/sub/f0".into(),
                flags: OpenFlags::RDONLY,
                mode: Mode(0),
            },
            stat_entry("/w/sub/f1"), // independent
            BatchEntry::Read {
                fd: BatchFd::FromEntry(0),
                len: 64,
            },
            BatchEntry::Close {
                fd: BatchFd::FromEntry(0),
            },
        ])
        .after(3, 2);
        let dag = BatchDag::build(&batch).unwrap();
        assert_eq!(dag.waves(), &[vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn flat_abort_batch_layers_as_a_linear_chain() {
        let batch = SyscallBatch::aborting(vec![
            stat_entry("/w/sub/f0"),
            stat_entry("/w/sub/f1"),
            stat_entry("/w/sub/f2"),
        ]);
        let dag = BatchDag::build(&batch).unwrap();
        assert_eq!(dag.waves(), &[vec![0], vec![1], vec![2]]);
        // A flat Continue batch stays one wave (fully independent).
        let flat = SyscallBatch::new(vec![stat_entry("/w/sub/f0"), stat_entry("/w/sub/f1")]);
        assert_eq!(BatchDag::build(&flat).unwrap().waves(), &[vec![0, 1]]);
    }

    #[test]
    fn scheduled_reorders_independent_entries_and_matches_sequential() {
        let (mut k, pid) = setup();
        k.stats.reset();
        // Chain: open f0 → read → close. Independent stats of f1/f2 land in
        // wave 0 and overtake the chain's later links.
        let batch = SyscallBatch::new(vec![
            BatchEntry::Open {
                dirfd: None,
                path: "/w/sub/f0".into(),
                flags: OpenFlags::RDONLY,
                mode: Mode(0),
            },
            BatchEntry::Read {
                fd: BatchFd::FromEntry(0),
                len: 64,
            },
            BatchEntry::Close {
                fd: BatchFd::FromEntry(0),
            },
            stat_entry("/w/sub/f1"),
            stat_entry("/w/sub/f2"),
        ])
        .after(2, 1);
        let completions = k.submit_scheduled(pid, &batch).unwrap();
        // Execution order: wave 0 = [0, 3, 4], wave 1 = [1], wave 2 = [2].
        let order: Vec<usize> = completions.iter().map(|c| c.slot).collect();
        assert_eq!(order, vec![0, 3, 4, 1, 2]);
        let st = k.stats.snapshot();
        assert_eq!(st.sched_waves, 3);
        assert_eq!(
            st.sched_reorders, 4,
            "slots 3 and 4 each overtook slots 1 and 2"
        );
        assert_eq!(st.slot_links, 2);
        assert_eq!(st.charge_calls, 1, "one amortized installation");

        let scheduled = completions_to_slots(5, &completions);
        assert_eq!(scheduled[1], Ok(BatchOut::Data(b"data-0".to_vec())));
        let (mut k2, pid2) = setup();
        let sequential = k2.run_sequential(pid2, &batch).unwrap();
        assert_eq!(scheduled, sequential);
    }

    #[test]
    fn abort_cancels_the_dependency_cone_not_every_later_entry() {
        let (mut k, pid) = setup();
        // 0: failing read; 1 data-depends on 0 (cone); 2 depends on 1
        // (transitive cone); 3 independent — must still execute.
        let batch = SyscallBatch::aborting(vec![
            BatchEntry::ReadFile {
                dirfd: None,
                path: "/w/sub/missing".into(),
            },
            BatchEntry::WriteFile {
                dirfd: None,
                path: "/w/sub/out".into(),
                data: BatchArg::OutputOf(0),
                mode: Mode::FILE_DEFAULT,
                append: false,
            },
            stat_entry("/w/sub/out"),
            stat_entry("/w/sub/f1"),
        ])
        .after(2, 1);
        k.stats.reset();
        let out = completions_to_slots(4, &k.submit_scheduled(pid, &batch).unwrap());
        assert_eq!(out[0], Err(Errno::ENOENT));
        assert_eq!(out[1], Err(Errno::ECANCELED));
        assert_eq!(out[2], Err(Errno::ECANCELED), "cone is transitive");
        assert!(out[3].is_ok(), "independent entry survives the abort");
        assert_eq!(k.stats.snapshot().sched_cancelled_cone, 2);
        let (mut k2, pid2) = setup();
        assert_eq!(out, k2.run_sequential(pid2, &batch).unwrap());
    }

    #[test]
    fn abort_order_edges_poison_but_continue_order_edges_do_not() {
        for (fail_mode, expect_cancel) in [(FailMode::Abort, true), (FailMode::Continue, false)] {
            let (mut k, pid) = setup();
            let batch = SyscallBatch {
                entries: vec![
                    BatchEntry::ReadFile {
                        dirfd: None,
                        path: "/w/sub/missing".into(),
                    },
                    stat_entry("/w/sub/f0"),
                ],
                fail_mode,
                deps: vec![(1, 0)],
            };
            let out = completions_to_slots(2, &k.submit_scheduled(pid, &batch).unwrap());
            assert_eq!(out[0], Err(Errno::ENOENT));
            if expect_cancel {
                assert_eq!(out[1], Err(Errno::ECANCELED), "Abort follows order edges");
            } else {
                assert!(out[1].is_ok(), "Continue order edges only order");
            }
            let (mut k2, pid2) = setup();
            assert_eq!(out, k2.run_sequential(pid2, &batch).unwrap());
        }
    }

    #[test]
    fn steppable_run_matches_one_shot_submission() {
        let build = || {
            SyscallBatch::new(vec![
                BatchEntry::Open {
                    dirfd: None,
                    path: "/w/sub/f0".into(),
                    flags: OpenFlags::RDONLY,
                    mode: Mode(0),
                },
                BatchEntry::Read {
                    fd: BatchFd::FromEntry(0),
                    len: 64,
                },
                stat_entry("/w/sub/f2"),
                BatchEntry::Close {
                    fd: BatchFd::FromEntry(0),
                },
            ])
            .after(3, 1)
        };
        let (mut k, pid) = setup();
        let one_shot = k.submit_scheduled(pid, &build()).unwrap();

        let (mut k2, pid2) = setup();
        let mut run = ScheduledRun::prepare(pid2, build()).unwrap();
        let mut steps = 0;
        while k2.sched_run_wave(&mut run).unwrap() {
            steps += 1;
        }
        assert_eq!(steps + 1, 3, "three waves stepped");
        assert!(k2.batch.is_none(), "per-wave state released between waves");
        let stepped = k2.sched_finish(run).unwrap();
        assert_eq!(one_shot, stepped);
        assert_eq!(
            k.process(pid).unwrap().cpu_ticks,
            k2.process(pid2).unwrap().cpu_ticks,
            "per-wave tick write-back preserves the cumulative charge"
        );
    }

    #[test]
    fn sched_finish_refuses_unfinished_runs() {
        let (mut k, pid) = setup();
        let batch = SyscallBatch::aborting(vec![stat_entry("/w/sub/f0"), stat_entry("/w/sub/f1")]);
        let mut run = ScheduledRun::prepare(pid, batch).unwrap();
        assert!(k.sched_run_wave(&mut run).unwrap(), "one wave remains");
        assert!(matches!(k.sched_finish(run), Err(Errno::EINVAL)));
    }

    #[test]
    fn empty_batch_completes_with_no_waves() {
        let (mut k, pid) = setup();
        let out = k.submit_scheduled(pid, &SyscallBatch::default()).unwrap();
        assert!(out.is_empty());
        assert_eq!(k.stats.snapshot().sched_waves, 0);
    }

    #[test]
    fn steppable_empty_batch_matches_one_shot_semantics() {
        // The pool path must not skip the liveness check or the `batches`
        // accounting just because a batch has zero waves.
        let (mut k, pid) = setup();
        k.stats.reset();
        let mut run = ScheduledRun::prepare(pid, SyscallBatch::default()).unwrap();
        assert!(!k.sched_run_wave(&mut run).unwrap());
        assert_eq!(k.stats.snapshot().batches, 1);
        assert!(k.sched_finish(run).unwrap().is_empty());

        // A dead process is refused, exactly as submit_scheduled refuses.
        let ghost = k.spawn_user(Cred::ROOT);
        k.exit(ghost, 0);
        let mut run = ScheduledRun::prepare(ghost, SyscallBatch::default()).unwrap();
        assert_eq!(k.sched_run_wave(&mut run).unwrap_err(), Errno::ESRCH);
        assert_eq!(
            k.submit_scheduled(ghost, &SyscallBatch::default())
                .unwrap_err(),
            Errno::ESRCH
        );
    }
}
