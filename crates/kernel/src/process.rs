//! Processes and file descriptors.

use std::collections::HashMap;

use shill_vfs::{Cred, Errno, NodeId, SysResult};

use crate::types::{Fd, Pid, PipeEnd, PipeId, SockId, Ulimits};

/// What an open descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdObject {
    /// A vnode (file, directory, device) with a current offset.
    Vnode(NodeId),
    /// One end of an anonymous pipe.
    Pipe(PipeId, PipeEnd),
    /// A socket.
    Socket(SockId),
}

/// Per-descriptor state.
#[derive(Debug, Clone)]
pub struct OpenFile {
    pub object: FdObject,
    pub offset: u64,
    pub readable: bool,
    pub writable: bool,
    pub append: bool,
    /// Last path at which the vnode was known reachable; the `path` syscall
    /// falls back to this when the name cache has been purged (§3.1.3:
    /// "If the path system call fails, SHILL uses the last known path").
    pub last_path: Option<String>,
}

/// Process lifecycle states. Execution is synchronous, so `Running` simply
/// means "not yet exited".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    Running,
    /// Exited with status; awaiting `waitpid` by the parent.
    Zombie(i32),
    /// Fully reaped (kept briefly for diagnostics, then dropped).
    Reaped,
}

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    pub pid: Pid,
    pub ppid: Pid,
    pub cred: Cred,
    pub cwd: NodeId,
    pub fds: HashMap<Fd, OpenFile>,
    pub next_fd: u32,
    pub state: ProcState,
    pub ulimits: Ulimits,
    /// Syscall ticks consumed (for the cpu ulimit).
    pub cpu_ticks: u64,
    /// Live (non-reaped) children.
    pub children: Vec<Pid>,
}

impl Process {
    pub fn new(pid: Pid, ppid: Pid, cred: Cred, cwd: NodeId) -> Process {
        Process {
            pid,
            ppid,
            cred,
            cwd,
            fds: HashMap::new(),
            next_fd: 3, // 0-2 reserved for stdio
            state: ProcState::Running,
            ulimits: Ulimits::default(),
            cpu_ticks: 0,
            children: Vec::new(),
        }
    }

    pub fn alive(&self) -> bool {
        self.state == ProcState::Running
    }

    /// Allocate the next free descriptor number.
    pub fn alloc_fd(&mut self) -> SysResult<Fd> {
        if self.fds.len() as u32 >= self.ulimits.max_open_files {
            return Err(Errno::EMFILE);
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        Ok(fd)
    }

    /// Install an open file at a specific descriptor (stdio wiring).
    pub fn install_fd(&mut self, fd: Fd, of: OpenFile) {
        self.next_fd = self.next_fd.max(fd.0 + 1);
        self.fds.insert(fd, of);
    }

    pub fn file(&self, fd: Fd) -> SysResult<&OpenFile> {
        self.fds.get(&fd).ok_or(Errno::EBADF)
    }

    pub fn file_mut(&mut self, fd: Fd) -> SysResult<&mut OpenFile> {
        self.fds.get_mut(&fd).ok_or(Errno::EBADF)
    }

    /// The vnode a descriptor refers to, or `EBADF`/`ENOTDIR`-style errors
    /// for non-vnode descriptors.
    pub fn fd_node(&self, fd: Fd) -> SysResult<NodeId> {
        match self.file(fd)?.object {
            FdObject::Vnode(n) => Ok(n),
            _ => Err(Errno::EBADF),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(node: NodeId) -> OpenFile {
        OpenFile {
            object: FdObject::Vnode(node),
            offset: 0,
            readable: true,
            writable: false,
            append: false,
            last_path: None,
        }
    }

    #[test]
    fn fd_allocation_skips_stdio() {
        let mut p = Process::new(Pid(2), Pid(1), Cred::user(100), NodeId(1));
        assert_eq!(p.alloc_fd().unwrap(), Fd(3));
        assert_eq!(p.alloc_fd().unwrap(), Fd(4));
    }

    #[test]
    fn install_fd_advances_counter() {
        let mut p = Process::new(Pid(2), Pid(1), Cred::user(100), NodeId(1));
        p.install_fd(Fd(7), of(NodeId(3)));
        assert_eq!(p.alloc_fd().unwrap(), Fd(8));
    }

    #[test]
    fn fd_limit_enforced() {
        let mut p = Process::new(Pid(2), Pid(1), Cred::user(100), NodeId(1));
        p.ulimits.max_open_files = 2;
        p.install_fd(Fd(3), of(NodeId(3)));
        p.install_fd(Fd(4), of(NodeId(4)));
        assert_eq!(p.alloc_fd().unwrap_err(), Errno::EMFILE);
    }

    #[test]
    fn fd_node_rejects_non_vnode() {
        let mut p = Process::new(Pid(2), Pid(1), Cred::user(100), NodeId(1));
        p.install_fd(
            Fd(3),
            OpenFile {
                object: FdObject::Pipe(PipeId(1), PipeEnd::Read),
                offset: 0,
                readable: true,
                writable: false,
                append: false,
                last_path: None,
            },
        );
        assert_eq!(p.fd_node(Fd(3)).unwrap_err(), Errno::EBADF);
        assert_eq!(p.fd_node(Fd(9)).unwrap_err(), Errno::EBADF);
    }
}
