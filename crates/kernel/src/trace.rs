//! Kernel-wide tracing plane: per-shard span rings, site histograms,
//! and the exportable [`Telemetry`] snapshot.
//!
//! The plane is off by default and costs nothing: every instrumented
//! site first checks `Kernel::trace` (an `Option`), and an armed plane
//! gates each site behind one relaxed load of the site mask
//! ([`TracePlane::wants`]). When a site is enabled, a [`TraceScope`]
//! RAII guard pushes a `Begin` event into a fixed-capacity ring on
//! creation and a matching `End` (with duration) on drop — including
//! drops that happen while unwinding from an injected panic, which is
//! what keeps spans balanced under fault schedules.
//!
//! Arming mirrors the fault plane: `SHILL_TRACE` is parsed per shard at
//! kernel construction (`sites=syscall+batch+wave;cap=8192`, or
//! `sites=all`), and `Kernel::set_trace_plane` /
//! `KernelShards::set_trace_plane` install a plane programmatically.
//! All shards stamp timestamps against one process-wide monotonic
//! epoch, so a merged timeline from many shards is coherent.

use crate::hist::{SiteHists, SiteHistsSnapshot};
use crate::stats::StatsSnapshot;
use shill_vfs::sync::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default ring capacity (events per shard) when `cap=` is not given.
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Nanoseconds since the process-wide trace epoch. The epoch is
/// initialized by whichever shard records first, so timestamps from
/// different shards land on one timeline.
pub fn trace_now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An instrumented site. Each site is one bit in the `SHILL_TRACE`
/// site mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum TraceSite {
    /// Per-entry syscall dispatch (all four execution modes).
    Syscall = 0,
    /// Whole-batch submission (`submit_batch` / `submit_scheduled`).
    Batch = 1,
    /// One scheduler wave (`exec_wave_core`).
    Wave = 2,
    /// A MAC check that missed the AVC and reached the policy registry.
    Mac = 3,
    /// A contended policy stripe-lock wait.
    Stripe = 4,
    /// A pool worker stealing a wave from another worker's deque.
    Steal = 5,
    /// A fault-plane injection firing.
    Fault = 6,
    /// A server front-end connection accept (`shill-server`).
    Accept = 7,
    /// A server front-end authentication attempt (factor check +
    /// session entry).
    Auth = 8,
    /// A server front-end frame dispatched onto the batch pool; the
    /// span covers queueing *and* execution, and its `End` feeds the
    /// `dispatch` latency histogram.
    Dispatch = 9,
}

impl TraceSite {
    /// Every site, in mask-bit order.
    pub const ALL: [TraceSite; 10] = [
        TraceSite::Syscall,
        TraceSite::Batch,
        TraceSite::Wave,
        TraceSite::Mac,
        TraceSite::Stripe,
        TraceSite::Steal,
        TraceSite::Fault,
        TraceSite::Accept,
        TraceSite::Auth,
        TraceSite::Dispatch,
    ];

    /// Mask with every site enabled.
    pub const ALL_MASK: u32 = (1 << 10) - 1;

    /// The site's bit in the site mask.
    #[inline]
    pub fn mask(self) -> u32 {
        1 << self as u32
    }

    /// Stable name, used in `SHILL_TRACE` and in rendered output.
    pub fn name(self) -> &'static str {
        match self {
            TraceSite::Syscall => "syscall",
            TraceSite::Batch => "batch",
            TraceSite::Wave => "wave",
            TraceSite::Mac => "mac",
            TraceSite::Stripe => "stripe",
            TraceSite::Steal => "steal",
            TraceSite::Fault => "fault",
            TraceSite::Accept => "accept",
            TraceSite::Auth => "auth",
            TraceSite::Dispatch => "dispatch",
        }
    }

    /// Inverse of [`TraceSite::name`].
    pub fn from_name(name: &str) -> Option<TraceSite> {
        TraceSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Span open, pushed when a [`TraceScope`] is created.
    Begin,
    /// Span close with duration, pushed when the scope drops.
    End,
    /// A point event (steals, fault firings).
    Instant,
}

/// One structured event in the per-shard ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which instrumented site produced the event.
    pub site: TraceSite,
    /// Begin / End / Instant.
    pub kind: TraceKind,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (`End` events only, else 0).
    pub dur_ns: u64,
    /// Shard that recorded the event.
    pub shard: u64,
    /// Session pid the event belongs to (0 when not session-bound).
    pub pid: u64,
    /// Site-specific argument: batch/wave index, entry slot, stripe.
    pub arg: u64,
    /// Site-specific tag, e.g. the fault site name ("" when unused).
    pub tag: &'static str,
}

/// Per-shard tracing state: site mask, fixed-capacity event ring,
/// per-site latency histograms, and a drop counter for ring overflow.
pub struct TracePlane {
    mask: AtomicU32,
    shard: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    hists: SiteHists,
}

impl std::fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracePlane")
            .field("mask", &self.mask.load(Relaxed))
            .field("cap", &self.cap)
            .field("shard", &self.shard.load(Relaxed))
            .field("dropped", &self.dropped.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl TracePlane {
    /// A plane with the given site mask and ring capacity (clamped to
    /// at least 1).
    pub fn new(mask: u32, cap: usize) -> TracePlane {
        TracePlane {
            mask: AtomicU32::new(mask & TraceSite::ALL_MASK),
            shard: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
            hists: SiteHists::default(),
        }
    }

    /// Parse a `SHILL_TRACE` spec: `;`-separated clauses of
    /// `sites=<name>+<name>+…` (or `sites=all` / bare `all`) and
    /// `cap=<events>`. With no `sites=` clause every site is enabled.
    pub fn parse(spec: &str) -> Result<TracePlane, String> {
        let mut mask: Option<u32> = None;
        let mut cap = DEFAULT_TRACE_CAP;
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if clause == "all" {
                mask = Some(TraceSite::ALL_MASK);
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not `key=value`"))?;
            match key.trim() {
                "sites" => {
                    let mut m = 0u32;
                    for name in value.split('+') {
                        let name = name.trim();
                        if name == "all" {
                            m = TraceSite::ALL_MASK;
                            continue;
                        }
                        let site = TraceSite::from_name(name).ok_or_else(|| {
                            let menu = TraceSite::ALL
                                .iter()
                                .map(|s| s.name())
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("unknown trace site `{name}` (known: {menu})")
                        })?;
                        m |= site.mask();
                    }
                    mask = Some(m);
                }
                "cap" => {
                    cap = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("cap `{value}` is not a number"))?;
                }
                other => return Err(format!("unknown trace clause `{other}`")),
            }
        }
        Ok(TracePlane::new(mask.unwrap_or(TraceSite::ALL_MASK), cap))
    }

    /// Build a plane from `SHILL_TRACE`, if set. Malformed specs panic:
    /// a trace plane that silently records nothing would make an
    /// overhead measurement meaningless.
    pub fn from_env() -> Option<Arc<TracePlane>> {
        let spec = std::env::var("SHILL_TRACE").ok()?;
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("off") {
            return None;
        }
        match TracePlane::parse(spec) {
            Ok(plane) => Some(Arc::new(plane)),
            Err(err) => panic!("malformed SHILL_TRACE `{spec}`: {err}"),
        }
    }

    /// One relaxed load: is this site enabled?
    #[inline]
    pub fn wants(&self, site: TraceSite) -> bool {
        self.mask.load(Relaxed) & site.mask() != 0
    }

    /// Current site mask.
    pub fn mask(&self) -> u32 {
        self.mask.load(Relaxed)
    }

    /// Ring capacity in events.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Record which shard this plane instance belongs to; stamped into
    /// every event.
    pub fn set_shard(&self, shard: u64) {
        self.shard.store(shard, Relaxed);
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(ev);
    }

    /// Open a span: pushes `Begin` now, and the returned guard pushes
    /// `End` (feeding the site histogram) when dropped — even during
    /// unwinding. Returns `None` when the site is masked off.
    pub fn span(self: &Arc<TracePlane>, site: TraceSite, pid: u64, arg: u64) -> Option<TraceScope> {
        if !self.wants(site) {
            return None;
        }
        let ts_ns = trace_now_ns();
        self.push(TraceEvent {
            site,
            kind: TraceKind::Begin,
            ts_ns,
            dur_ns: 0,
            shard: self.shard.load(Relaxed),
            pid,
            arg,
            tag: "",
        });
        Some(TraceScope {
            plane: Arc::clone(self),
            site,
            pid,
            arg,
            begin_ns: ts_ns,
        })
    }

    /// Record a point event (no duration).
    pub fn instant(&self, site: TraceSite, pid: u64, arg: u64, tag: &'static str) {
        if !self.wants(site) {
            return;
        }
        self.push(TraceEvent {
            site,
            kind: TraceKind::Instant,
            ts_ns: trace_now_ns(),
            dur_ns: 0,
            shard: self.shard.load(Relaxed),
            pid,
            arg,
            tag,
        });
    }

    fn record_end(&self, site: TraceSite, pid: u64, arg: u64, begin_ns: u64) {
        let now = trace_now_ns();
        let dur_ns = now.saturating_sub(begin_ns);
        self.push(TraceEvent {
            site,
            kind: TraceKind::End,
            ts_ns: now,
            dur_ns,
            shard: self.shard.load(Relaxed),
            pid,
            arg,
            tag: "",
        });
        match site {
            TraceSite::Syscall => self.hists.syscall.record(dur_ns),
            TraceSite::Batch => self.hists.batch.record(dur_ns),
            TraceSite::Wave => self.hists.wave.record(dur_ns),
            TraceSite::Mac => self.hists.mac.record(dur_ns),
            TraceSite::Dispatch => self.hists.dispatch.record(dur_ns),
            _ => {}
        }
    }

    /// Snapshot the per-site latency histograms.
    pub fn hists(&self) -> SiteHistsSnapshot {
        self.hists.snapshot()
    }

    /// Drain and return every buffered event in record order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().drain(..).collect()
    }

    /// Drain the ring-overflow drop count (resets to zero).
    pub fn take_dropped(&self) -> u64 {
        self.dropped.swap(0, Relaxed)
    }
}

/// RAII span guard. Owns an `Arc` to its plane, so it never borrows the
/// kernel: instrumented code keeps full `&mut` access while a span is
/// open, and an unwind through the owning frame still closes the span.
#[must_use = "a TraceScope closes its span when dropped"]
pub struct TraceScope {
    plane: Arc<TracePlane>,
    site: TraceSite,
    pid: u64,
    arg: u64,
    begin_ns: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        self.plane
            .record_end(self.site, self.pid, self.arg, self.begin_ns);
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TracePlane>();
    assert_send_sync::<TraceScope>();
    assert_send_sync::<TraceEvent>();
};

/// A unified observability snapshot: every kernel counter, the per-site
/// latency histograms, and the drained trace events, renderable as a
/// Prometheus text exposition or a chrome://tracing JSON timeline.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Kernel counters (including `trace_dropped` / `log_dropped`).
    pub stats: StatsSnapshot,
    /// Per-site latency histograms (merged across shards when taken
    /// from `KernelShards::telemetry`).
    pub hists: SiteHistsSnapshot,
    /// Drained trace events from every shard, in per-shard record order.
    pub events: Vec<TraceEvent>,
}

impl Telemetry {
    /// Render counters and histogram quantiles as a Prometheus-style
    /// text exposition (`# TYPE` lines plus `name{labels} value`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE shill_kernel counter\n");
        for (name, value) in self.stats.fields() {
            let _ = writeln!(out, "shill_{name} {value}");
        }
        out.push_str("# TYPE shill_latency_ns summary\n");
        for (site, h) in self.hists.sites() {
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                let _ = writeln!(
                    out,
                    "shill_latency_ns{{site=\"{site}\",quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(out, "shill_latency_ns_max{{site=\"{site}\"}} {}", h.max());
            let _ = writeln!(out, "shill_latency_ns_sum{{site=\"{site}\"}} {}", h.sum_ns);
            let _ = writeln!(out, "shill_latency_ns_count{{site=\"{site}\"}} {}", h.count);
        }
        out
    }

    /// Render the drained events as chrome://tracing JSON (the "JSON
    /// Array Format" under a `traceEvents` key). Spans are emitted as
    /// complete `"X"` events from their `End` record, instants as
    /// `"i"`; load the output in chrome://tracing or Perfetto. Shards
    /// map to chrome "processes", session pids to "threads".
    pub fn render_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for ev in &self.events {
            let (ph, ts_ns, dur_field) = match ev.kind {
                TraceKind::Begin => continue, // covered by the End's "X"
                TraceKind::End => (
                    "X",
                    ev.ts_ns.saturating_sub(ev.dur_ns),
                    format!(",\"dur\":{:.3}", ev.dur_ns as f64 / 1000.0),
                ),
                TraceKind::Instant => ("i", ev.ts_ns, ",\"s\":\"t\"".to_string()),
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"shill\",\"ph\":\"{}\",\"ts\":{:.3},\
                 \"pid\":{},\"tid\":{}{},\"args\":{{\"arg\":{},\"tag\":\"{}\"}}}}",
                ev.site.name(),
                ph,
                ts_ns as f64 / 1000.0,
                ev.shard,
                ev.pid,
                dur_field,
                ev.arg,
                ev.tag,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sites_and_cap() {
        let p = TracePlane::parse("sites=syscall+wave;cap=16").unwrap();
        assert!(p.wants(TraceSite::Syscall));
        assert!(p.wants(TraceSite::Wave));
        assert!(!p.wants(TraceSite::Batch));
        assert_eq!(p.cap(), 16);

        let p = TracePlane::parse("all").unwrap();
        assert_eq!(p.mask(), TraceSite::ALL_MASK);
        assert_eq!(p.cap(), DEFAULT_TRACE_CAP);

        assert!(TracePlane::parse("sites=bogus").is_err());
        assert!(TracePlane::parse("cap=xyz").is_err());
        assert!(TracePlane::parse("nonsense").is_err());
    }

    #[test]
    fn site_names_round_trip() {
        for site in TraceSite::ALL {
            assert_eq!(TraceSite::from_name(site.name()), Some(site));
        }
        assert_eq!(TraceSite::from_name("nope"), None);
    }

    #[test]
    fn spans_balance_and_feed_hists() {
        let plane = Arc::new(TracePlane::new(TraceSite::ALL_MASK, 64));
        {
            let _g = plane.span(TraceSite::Syscall, 7, 0).unwrap();
        }
        plane.instant(TraceSite::Steal, 0, 3, "");
        let events = plane.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::Begin);
        assert_eq!(events[1].kind, TraceKind::End);
        assert_eq!(events[1].pid, 7);
        assert_eq!(events[2].kind, TraceKind::Instant);
        assert_eq!(plane.hists().syscall.count, 1);
    }

    #[test]
    fn masked_site_records_nothing() {
        let plane = Arc::new(TracePlane::new(TraceSite::Batch.mask(), 64));
        assert!(plane.span(TraceSite::Syscall, 1, 0).is_none());
        plane.instant(TraceSite::Steal, 1, 0, "");
        assert!(plane.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let plane = Arc::new(TracePlane::new(TraceSite::ALL_MASK, 4));
        for i in 0..6 {
            plane.instant(TraceSite::Fault, 0, i, "charge");
        }
        let events = plane.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].arg, 2); // the two oldest were dropped
        assert_eq!(plane.take_dropped(), 2);
        assert_eq!(plane.take_dropped(), 0);
    }

    #[test]
    fn span_closes_during_unwind() {
        let plane = Arc::new(TracePlane::new(TraceSite::ALL_MASK, 64));
        let p2 = Arc::clone(&plane);
        let _ = std::panic::catch_unwind(move || {
            let _g = p2.span(TraceSite::Batch, 1, 0).unwrap();
            panic!("injected");
        });
        let events = plane.drain();
        let begins = events.iter().filter(|e| e.kind == TraceKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == TraceKind::End).count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let plane = Arc::new(TracePlane::new(TraceSite::ALL_MASK, 64));
        {
            let _g = plane.span(TraceSite::Wave, 2, 1).unwrap();
        }
        plane.instant(TraceSite::Fault, 2, 0, "namei");
        let t = Telemetry {
            stats: StatsSnapshot::default(),
            hists: plane.hists(),
            events: plane.drain(),
        };
        let json = t.render_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tag\":\"namei\""));
        // Begin events are folded into the X record, never emitted raw.
        assert!(!json.contains("\"ph\":\"B\""));
        assert_eq!(json.matches("{\"name\":").count(), 2);
    }

    #[test]
    fn text_exposition_lists_counters_and_quantiles() {
        let plane = Arc::new(TracePlane::new(TraceSite::ALL_MASK, 64));
        {
            let _g = plane.span(TraceSite::Syscall, 1, 0).unwrap();
        }
        let t = Telemetry {
            stats: StatsSnapshot::default(),
            hists: plane.hists(),
            events: plane.drain(),
        };
        let text = t.render_text();
        assert!(text.contains("shill_syscalls 0"));
        assert!(text.contains("shill_trace_dropped 0"));
        assert!(text.contains("shill_latency_ns{site=\"syscall\",quantile=\"0.5\"}"));
        assert!(text.contains("shill_latency_ns_count{site=\"syscall\"} 1"));
        assert!(text.contains("shill_latency_ns{site=\"mac\",quantile=\"0.99\"}"));
    }
}
