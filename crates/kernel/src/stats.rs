//! Counters used by tests and the benchmark harness.
//!
//! `Cell`-based so read-path syscalls (which take `&self` on the filesystem)
//! can still count. The kernel is single-threaded by construction; nothing
//! here is shared across threads.

use std::cell::Cell;

/// Kernel-wide event counters.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Total system calls dispatched.
    pub syscalls: Cell<u64>,
    /// Per-component directory lookups performed by the path walker.
    pub lookups: Cell<u64>,
    /// Path-walker components answered from the directory-entry cache.
    pub dcache_hits: Cell<u64>,
    /// Path-walker components that missed the dcache (or ran with it off).
    pub dcache_misses: Cell<u64>,
    /// Lookups answered by a cached negative entry (name known absent):
    /// the directory scan *and* the ENOENT re-derivation were skipped.
    pub dcache_neg_hits: Cell<u64>,
    /// Real directory-entry scans performed (i.e. dcache misses that went
    /// to the filesystem); with the cache on and a warm workload this stays
    /// flat while `lookups` keeps climbing.
    pub dir_scans: Cell<u64>,
    /// MAC vnode checks that *reached* policy modules (0 when no policy is
    /// registered; with the AVC on, far fewer than checks requested).
    pub mac_vnode_checks: Cell<u64>,
    /// MAC vnode decisions answered from the access-vector cache.
    pub avc_hits: Cell<u64>,
    /// MAC vnode decisions that missed the AVC and consulted policies.
    pub avc_misses: Cell<u64>,
    /// Wholesale AVC flushes (policy attach/detach, cache toggles).
    pub avc_flushes: Cell<u64>,
    /// MAC socket/pipe/proc/system checks invoked.
    pub mac_other_checks: Cell<u64>,
    /// Executables run.
    pub execs: Cell<u64>,
    /// Processes forked.
    pub forks: Cell<u64>,
    /// Ulimit accounting operations: one per sequential syscall, one per
    /// submitted batch (the batch path's whole point is that this grows
    /// far slower than `syscalls`).
    pub charge_calls: Cell<u64>,
    /// MAC subject contexts constructed (credential snapshots). Batched
    /// submission builds one per batch and reuses it for every check.
    pub mac_ctx_setups: Cell<u64>,
    /// Batches submitted via [`crate::kernel::Kernel::submit_batch`].
    pub batches: Cell<u64>,
    /// Entries processed across all submitted batches.
    pub batch_entries: Cell<u64>,
    /// `namei` dirname resolutions reused from the in-batch prefix cache.
    pub batch_prefix_hits: Cell<u64>,
    /// In-batch prefix probes that fell back to a full walk (cold entry or
    /// a mid-batch dcache/AVC epoch invalidation).
    pub batch_prefix_misses: Cell<u64>,
}

impl KernelStats {
    pub fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Plain-value snapshot for assertions and reports.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            syscalls: self.syscalls.get(),
            lookups: self.lookups.get(),
            dcache_hits: self.dcache_hits.get(),
            dcache_misses: self.dcache_misses.get(),
            dcache_neg_hits: self.dcache_neg_hits.get(),
            dir_scans: self.dir_scans.get(),
            mac_vnode_checks: self.mac_vnode_checks.get(),
            avc_hits: self.avc_hits.get(),
            avc_misses: self.avc_misses.get(),
            avc_flushes: self.avc_flushes.get(),
            mac_other_checks: self.mac_other_checks.get(),
            execs: self.execs.get(),
            forks: self.forks.get(),
            charge_calls: self.charge_calls.get(),
            mac_ctx_setups: self.mac_ctx_setups.get(),
            batches: self.batches.get(),
            batch_entries: self.batch_entries.get(),
            batch_prefix_hits: self.batch_prefix_hits.get(),
            batch_prefix_misses: self.batch_prefix_misses.get(),
        }
    }

    pub fn reset(&self) {
        self.syscalls.set(0);
        self.lookups.set(0);
        self.dcache_hits.set(0);
        self.dcache_misses.set(0);
        self.dcache_neg_hits.set(0);
        self.dir_scans.set(0);
        self.mac_vnode_checks.set(0);
        self.avc_hits.set(0);
        self.avc_misses.set(0);
        self.avc_flushes.set(0);
        self.mac_other_checks.set(0);
        self.execs.set(0);
        self.forks.set(0);
        self.charge_calls.set(0);
        self.mac_ctx_setups.set(0);
        self.batches.set(0);
        self.batch_entries.set(0);
        self.batch_prefix_hits.set(0);
        self.batch_prefix_misses.set(0);
    }
}

/// Copyable snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub syscalls: u64,
    pub lookups: u64,
    pub dcache_hits: u64,
    pub dcache_misses: u64,
    pub dcache_neg_hits: u64,
    pub dir_scans: u64,
    pub mac_vnode_checks: u64,
    pub avc_hits: u64,
    pub avc_misses: u64,
    pub avc_flushes: u64,
    pub mac_other_checks: u64,
    pub execs: u64,
    pub forks: u64,
    pub charge_calls: u64,
    pub mac_ctx_setups: u64,
    pub batches: u64,
    pub batch_entries: u64,
    pub batch_prefix_hits: u64,
    pub batch_prefix_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = KernelStats::default();
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.lookups);
        let snap = s.snapshot();
        assert_eq!(snap.syscalls, 2);
        assert_eq!(snap.lookups, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
