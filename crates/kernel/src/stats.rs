//! Counters used by tests and the benchmark harness.
//!
//! Relaxed atomics, so read-path syscalls (which take `&self` on the
//! filesystem) can still count *and* sandbox sessions running on worker
//! threads can share one kernel without data races. Individual counters
//! are monotone; `snapshot` is not atomic across counters (fine for the
//! tests and reports that consume it, which quiesce the kernel first).
//!
//! The counter list is declared ONCE in the `kernel_stats!` invocation
//! below: the macro expands the atomic struct, the plain snapshot, and
//! `snapshot`/`reset`/`merged`/`fields` from the same list, so adding a
//! counter cannot silently skip reset, shard-merge, or the telemetry
//! exposition (previously three hand-maintained parallel lists).

use std::sync::atomic::{AtomicU64, Ordering};

/// Declares [`KernelStats`] (atomics) and [`StatsSnapshot`] (plain
/// `u64`s) plus every derived accessor from one field list.
macro_rules! kernel_stats {
    ($( $(#[$meta:meta])* $name:ident, )+) => {
        /// Kernel-wide event counters.
        #[derive(Debug, Default)]
        pub struct KernelStats {
            $( $(#[$meta])* pub $name: AtomicU64, )+
        }

        /// Copyable snapshot of [`KernelStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct StatsSnapshot {
            $( $(#[$meta])* pub $name: u64, )+
        }

        impl KernelStats {
            /// Plain-value snapshot for assertions and reports.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            /// Zero every counter.
            pub fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )+
            }
        }

        impl StatsSnapshot {
            /// Field-wise sum of two snapshots: the aggregate view across
            /// kernel shards ([`crate::shard::KernelShards::stats`] folds
            /// per-shard snapshots with this).
            pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name + other.$name, )+
                }
            }

            /// Every counter as a `(name, value)` pair in declaration
            /// order — the telemetry text exposition iterates this, so a
            /// new counter shows up in exported metrics for free.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )+ ]
            }
        }
    };
}

kernel_stats! {
    /// Total system calls dispatched.
    syscalls,
    /// Per-component directory lookups performed by the path walker.
    lookups,
    /// Path-walker components answered from the directory-entry cache.
    dcache_hits,
    /// Path-walker components that missed the dcache (or ran with it off).
    dcache_misses,
    /// Lookups answered by a cached negative entry (name known absent):
    /// the directory scan *and* the ENOENT re-derivation were skipped.
    dcache_neg_hits,
    /// Real directory-entry scans performed (i.e. dcache misses that went
    /// to the filesystem); with the cache on and a warm workload this stays
    /// flat while `lookups` keeps climbing.
    dir_scans,
    /// MAC vnode checks that *reached* policy modules (0 when no policy is
    /// registered; with the AVC on, far fewer than checks requested).
    mac_vnode_checks,
    /// MAC vnode decisions answered from the access-vector cache.
    avc_hits,
    /// MAC vnode decisions that missed the AVC and consulted policies.
    avc_misses,
    /// Wholesale AVC flushes that actually dropped live cached verdicts
    /// (policy attach/detach, cache toggles). A flush of an already-empty
    /// or disabled cache is not counted.
    avc_flushes,
    /// MAC socket/pipe/proc/system checks invoked.
    mac_other_checks,
    /// Executables run.
    execs,
    /// Processes forked.
    forks,
    /// Ulimit accounting operations: one per sequential syscall, one per
    /// submitted batch (the batch path's whole point is that this grows
    /// far slower than `syscalls`).
    charge_calls,
    /// MAC subject contexts constructed (credential snapshots). Batched
    /// submission builds one per batch and reuses it for every check.
    mac_ctx_setups,
    /// Batches submitted via [`crate::kernel::Kernel::submit_batch`].
    batches,
    /// Entries *executed* across all submitted batches. Entries cancelled
    /// by [`crate::batch::FailMode::Abort`] short-circuiting never run and
    /// are not counted.
    batch_entries,
    /// `namei` dirname resolutions reused from the in-batch prefix cache.
    batch_prefix_hits,
    /// In-batch prefix probes that fell back to a full walk (cold entry or
    /// a mid-batch dcache/AVC epoch invalidation).
    batch_prefix_misses,
    /// Dependency waves executed by the batch scheduler
    /// ([`crate::kernel::Kernel::submit_scheduled`] and the steppable
    /// per-wave path).
    sched_waves,
    /// Submission-order inversions performed by the scheduler: pairs where
    /// an entry completed before an earlier-submitted entry (the measure
    /// of real out-of-order execution).
    sched_reorders,
    /// Slot references resolved (`BatchFd::FromEntry` descriptors plus
    /// `BatchArg::OutputOf` data links) across all submission paths.
    slot_links,
    /// Entries cancelled by scheduler dependency poisoning (the abort/
    /// missing-input cone), booked as cancellations, not failures.
    sched_cancelled_cone,
    /// Contended policy stripe-lock acquisitions drained from registered
    /// MAC policies ([`crate::mac::MacPolicy::take_contention`]) at
    /// snapshot time. Zero when every stripe acquisition found its lock
    /// free — the healthy state for shard-affine traffic.
    policy_stripe_contention,
    /// Jobs a `BatchPool` worker stole from another worker's deque and
    /// executed against this shard. Booked under the stolen job's first
    /// wave lock, so the per-shard split shows *whose* traffic overflowed
    /// its affine worker.
    pool_steals,
    /// Faults fired by the fault-injection plane ([`crate::fault`]):
    /// errno failures, short I/O, and injected panics. Drained from the
    /// plane at snapshot time like `policy_stripe_contention`.
    faults_injected,
    /// Injected faults that degraded cleanly: surfaced as an errno or a
    /// legal short op, or (for injected panics) were caught at a
    /// containment boundary. `faults_injected == faults_survived` is the
    /// machine-checkable "no panic escaped" invariant.
    faults_survived,
    /// Trace events overwritten because a shard's trace ring was full
    /// ([`crate::trace::TracePlane`]); drained from the plane at snapshot
    /// time. A nonzero value means the chrome timeline has a hole — raise
    /// `cap=` in `SHILL_TRACE`.
    trace_dropped,
    /// Audit-log events discarded because the sandbox log ring hit its
    /// capacity (`SHILL_LOG_CAP`); drained from registered policies
    /// ([`crate::mac::MacPolicy::take_log_dropped`]) at snapshot time.
    log_dropped,
}

impl KernelStats {
    /// Add one to a counter (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a counter (relaxed).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = KernelStats::default();
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.lookups);
        KernelStats::add(&s.dcache_hits, 3);
        let snap = s.snapshot();
        assert_eq!(snap.syscalls, 2);
        assert_eq!(snap.lookups, 1);
        assert_eq!(snap.dcache_hits, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let s = std::sync::Arc::new(KernelStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        KernelStats::bump(&s.syscalls);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().syscalls, 4000);
    }

    #[test]
    fn fields_cover_every_counter_once() {
        let s = KernelStats::default();
        KernelStats::bump(&s.trace_dropped);
        KernelStats::add(&s.log_dropped, 2);
        let fields = s.snapshot().fields();
        // One entry per declared counter, names unique, values wired.
        let names: std::collections::HashSet<_> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), fields.len());
        let get = |name: &str| fields.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("trace_dropped"), 1);
        assert_eq!(get("log_dropped"), 2);
        assert_eq!(get("syscalls"), 0);
        assert!(fields.len() >= 29);
    }

    #[test]
    fn merged_sums_new_counters_too() {
        let a = KernelStats::default();
        let b = KernelStats::default();
        KernelStats::bump(&a.log_dropped);
        KernelStats::add(&b.log_dropped, 4);
        KernelStats::bump(&b.trace_dropped);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.log_dropped, 5);
        assert_eq!(m.trace_dropped, 1);
    }
}
