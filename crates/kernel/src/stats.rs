//! Counters used by tests and the benchmark harness.
//!
//! Relaxed atomics, so read-path syscalls (which take `&self` on the
//! filesystem) can still count *and* sandbox sessions running on worker
//! threads can share one kernel without data races. Individual counters
//! are monotone; `snapshot` is not atomic across counters (fine for the
//! tests and reports that consume it, which quiesce the kernel first).

use std::sync::atomic::{AtomicU64, Ordering};

/// Kernel-wide event counters.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Total system calls dispatched.
    pub syscalls: AtomicU64,
    /// Per-component directory lookups performed by the path walker.
    pub lookups: AtomicU64,
    /// Path-walker components answered from the directory-entry cache.
    pub dcache_hits: AtomicU64,
    /// Path-walker components that missed the dcache (or ran with it off).
    pub dcache_misses: AtomicU64,
    /// Lookups answered by a cached negative entry (name known absent):
    /// the directory scan *and* the ENOENT re-derivation were skipped.
    pub dcache_neg_hits: AtomicU64,
    /// Real directory-entry scans performed (i.e. dcache misses that went
    /// to the filesystem); with the cache on and a warm workload this stays
    /// flat while `lookups` keeps climbing.
    pub dir_scans: AtomicU64,
    /// MAC vnode checks that *reached* policy modules (0 when no policy is
    /// registered; with the AVC on, far fewer than checks requested).
    pub mac_vnode_checks: AtomicU64,
    /// MAC vnode decisions answered from the access-vector cache.
    pub avc_hits: AtomicU64,
    /// MAC vnode decisions that missed the AVC and consulted policies.
    pub avc_misses: AtomicU64,
    /// Wholesale AVC flushes that actually dropped live cached verdicts
    /// (policy attach/detach, cache toggles). A flush of an already-empty
    /// or disabled cache is not counted.
    pub avc_flushes: AtomicU64,
    /// MAC socket/pipe/proc/system checks invoked.
    pub mac_other_checks: AtomicU64,
    /// Executables run.
    pub execs: AtomicU64,
    /// Processes forked.
    pub forks: AtomicU64,
    /// Ulimit accounting operations: one per sequential syscall, one per
    /// submitted batch (the batch path's whole point is that this grows
    /// far slower than `syscalls`).
    pub charge_calls: AtomicU64,
    /// MAC subject contexts constructed (credential snapshots). Batched
    /// submission builds one per batch and reuses it for every check.
    pub mac_ctx_setups: AtomicU64,
    /// Batches submitted via [`crate::kernel::Kernel::submit_batch`].
    pub batches: AtomicU64,
    /// Entries *executed* across all submitted batches. Entries cancelled
    /// by [`crate::batch::FailMode::Abort`] short-circuiting never run and
    /// are not counted.
    pub batch_entries: AtomicU64,
    /// `namei` dirname resolutions reused from the in-batch prefix cache.
    pub batch_prefix_hits: AtomicU64,
    /// In-batch prefix probes that fell back to a full walk (cold entry or
    /// a mid-batch dcache/AVC epoch invalidation).
    pub batch_prefix_misses: AtomicU64,
    /// Dependency waves executed by the batch scheduler
    /// ([`crate::kernel::Kernel::submit_scheduled`] and the steppable
    /// per-wave path).
    pub sched_waves: AtomicU64,
    /// Submission-order inversions performed by the scheduler: pairs where
    /// an entry completed before an earlier-submitted entry (the measure
    /// of real out-of-order execution).
    pub sched_reorders: AtomicU64,
    /// Slot references resolved (`BatchFd::FromEntry` descriptors plus
    /// `BatchArg::OutputOf` data links) across all submission paths.
    pub slot_links: AtomicU64,
    /// Entries cancelled by scheduler dependency poisoning (the abort/
    /// missing-input cone), booked as cancellations, not failures.
    pub sched_cancelled_cone: AtomicU64,
    /// Contended policy stripe-lock acquisitions drained from registered
    /// MAC policies ([`crate::mac::MacPolicy::take_contention`]) at
    /// snapshot time. Zero when every stripe acquisition found its lock
    /// free — the healthy state for shard-affine traffic.
    pub policy_stripe_contention: AtomicU64,
    /// Jobs a `BatchPool` worker stole from another worker's deque and
    /// executed against this shard. Booked under the stolen job's first
    /// wave lock, so the per-shard split shows *whose* traffic overflowed
    /// its affine worker.
    pub pool_steals: AtomicU64,
    /// Faults fired by the fault-injection plane ([`crate::fault`]):
    /// errno failures, short I/O, and injected panics. Drained from the
    /// plane at snapshot time like `policy_stripe_contention`.
    pub faults_injected: AtomicU64,
    /// Injected faults that degraded cleanly: surfaced as an errno or a
    /// legal short op, or (for injected panics) were caught at a
    /// containment boundary. `faults_injected == faults_survived` is the
    /// machine-checkable "no panic escaped" invariant.
    pub faults_survived: AtomicU64,
}

impl KernelStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Plain-value snapshot for assertions and reports.
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            syscalls: get(&self.syscalls),
            lookups: get(&self.lookups),
            dcache_hits: get(&self.dcache_hits),
            dcache_misses: get(&self.dcache_misses),
            dcache_neg_hits: get(&self.dcache_neg_hits),
            dir_scans: get(&self.dir_scans),
            mac_vnode_checks: get(&self.mac_vnode_checks),
            avc_hits: get(&self.avc_hits),
            avc_misses: get(&self.avc_misses),
            avc_flushes: get(&self.avc_flushes),
            mac_other_checks: get(&self.mac_other_checks),
            execs: get(&self.execs),
            forks: get(&self.forks),
            charge_calls: get(&self.charge_calls),
            mac_ctx_setups: get(&self.mac_ctx_setups),
            batches: get(&self.batches),
            batch_entries: get(&self.batch_entries),
            batch_prefix_hits: get(&self.batch_prefix_hits),
            batch_prefix_misses: get(&self.batch_prefix_misses),
            sched_waves: get(&self.sched_waves),
            sched_reorders: get(&self.sched_reorders),
            slot_links: get(&self.slot_links),
            sched_cancelled_cone: get(&self.sched_cancelled_cone),
            policy_stripe_contention: get(&self.policy_stripe_contention),
            pool_steals: get(&self.pool_steals),
            faults_injected: get(&self.faults_injected),
            faults_survived: get(&self.faults_survived),
        }
    }

    pub fn reset(&self) {
        for c in [
            &self.syscalls,
            &self.lookups,
            &self.dcache_hits,
            &self.dcache_misses,
            &self.dcache_neg_hits,
            &self.dir_scans,
            &self.mac_vnode_checks,
            &self.avc_hits,
            &self.avc_misses,
            &self.avc_flushes,
            &self.mac_other_checks,
            &self.execs,
            &self.forks,
            &self.charge_calls,
            &self.mac_ctx_setups,
            &self.batches,
            &self.batch_entries,
            &self.batch_prefix_hits,
            &self.batch_prefix_misses,
            &self.sched_waves,
            &self.sched_reorders,
            &self.slot_links,
            &self.sched_cancelled_cone,
            &self.policy_stripe_contention,
            &self.pool_steals,
            &self.faults_injected,
            &self.faults_survived,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl StatsSnapshot {
    /// Field-wise sum of two snapshots: the aggregate view across kernel
    /// shards ([`crate::shard::KernelShards::stats`] folds per-shard
    /// snapshots with this).
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            syscalls: self.syscalls + other.syscalls,
            lookups: self.lookups + other.lookups,
            dcache_hits: self.dcache_hits + other.dcache_hits,
            dcache_misses: self.dcache_misses + other.dcache_misses,
            dcache_neg_hits: self.dcache_neg_hits + other.dcache_neg_hits,
            dir_scans: self.dir_scans + other.dir_scans,
            mac_vnode_checks: self.mac_vnode_checks + other.mac_vnode_checks,
            avc_hits: self.avc_hits + other.avc_hits,
            avc_misses: self.avc_misses + other.avc_misses,
            avc_flushes: self.avc_flushes + other.avc_flushes,
            mac_other_checks: self.mac_other_checks + other.mac_other_checks,
            execs: self.execs + other.execs,
            forks: self.forks + other.forks,
            charge_calls: self.charge_calls + other.charge_calls,
            mac_ctx_setups: self.mac_ctx_setups + other.mac_ctx_setups,
            batches: self.batches + other.batches,
            batch_entries: self.batch_entries + other.batch_entries,
            batch_prefix_hits: self.batch_prefix_hits + other.batch_prefix_hits,
            batch_prefix_misses: self.batch_prefix_misses + other.batch_prefix_misses,
            sched_waves: self.sched_waves + other.sched_waves,
            sched_reorders: self.sched_reorders + other.sched_reorders,
            slot_links: self.slot_links + other.slot_links,
            sched_cancelled_cone: self.sched_cancelled_cone + other.sched_cancelled_cone,
            policy_stripe_contention: self.policy_stripe_contention
                + other.policy_stripe_contention,
            pool_steals: self.pool_steals + other.pool_steals,
            faults_injected: self.faults_injected + other.faults_injected,
            faults_survived: self.faults_survived + other.faults_survived,
        }
    }
}

/// Copyable snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub syscalls: u64,
    pub lookups: u64,
    pub dcache_hits: u64,
    pub dcache_misses: u64,
    pub dcache_neg_hits: u64,
    pub dir_scans: u64,
    pub mac_vnode_checks: u64,
    pub avc_hits: u64,
    pub avc_misses: u64,
    pub avc_flushes: u64,
    pub mac_other_checks: u64,
    pub execs: u64,
    pub forks: u64,
    pub charge_calls: u64,
    pub mac_ctx_setups: u64,
    pub batches: u64,
    pub batch_entries: u64,
    pub batch_prefix_hits: u64,
    pub batch_prefix_misses: u64,
    pub sched_waves: u64,
    pub sched_reorders: u64,
    pub slot_links: u64,
    pub sched_cancelled_cone: u64,
    pub policy_stripe_contention: u64,
    pub pool_steals: u64,
    pub faults_injected: u64,
    pub faults_survived: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = KernelStats::default();
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.lookups);
        KernelStats::add(&s.dcache_hits, 3);
        let snap = s.snapshot();
        assert_eq!(snap.syscalls, 2);
        assert_eq!(snap.lookups, 1);
        assert_eq!(snap.dcache_hits, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let s = std::sync::Arc::new(KernelStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        KernelStats::bump(&s.syscalls);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().syscalls, 4000);
    }
}
