//! Counters used by tests and the benchmark harness.
//!
//! `Cell`-based so read-path syscalls (which take `&self` on the filesystem)
//! can still count. The kernel is single-threaded by construction; nothing
//! here is shared across threads.

use std::cell::Cell;

/// Kernel-wide event counters.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Total system calls dispatched.
    pub syscalls: Cell<u64>,
    /// Per-component directory lookups performed by the path walker.
    pub lookups: Cell<u64>,
    /// MAC vnode checks invoked (0 when no policy is registered).
    pub mac_vnode_checks: Cell<u64>,
    /// MAC socket/pipe/proc/system checks invoked.
    pub mac_other_checks: Cell<u64>,
    /// Executables run.
    pub execs: Cell<u64>,
    /// Processes forked.
    pub forks: Cell<u64>,
}

impl KernelStats {
    pub fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Plain-value snapshot for assertions and reports.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            syscalls: self.syscalls.get(),
            lookups: self.lookups.get(),
            mac_vnode_checks: self.mac_vnode_checks.get(),
            mac_other_checks: self.mac_other_checks.get(),
            execs: self.execs.get(),
            forks: self.forks.get(),
        }
    }

    pub fn reset(&self) {
        self.syscalls.set(0);
        self.lookups.set(0);
        self.mac_vnode_checks.set(0);
        self.mac_other_checks.set(0);
        self.execs.set(0);
        self.forks.set(0);
    }
}

/// Copyable snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub syscalls: u64,
    pub lookups: u64,
    pub mac_vnode_checks: u64,
    pub mac_other_checks: u64,
    pub execs: u64,
    pub forks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = KernelStats::default();
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.syscalls);
        KernelStats::bump(&s.lookups);
        let snap = s.snapshot();
        assert_eq!(snap.syscalls, 2);
        assert_eq!(snap.lookups, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
