//! Anonymous pipes.
//!
//! Execution in the simulator is synchronous (a spawned executable runs to
//! completion inside `exec`), so pipes behave as unbounded buffers: writers
//! append, readers drain FIFO. Reading an empty pipe yields EOF when no
//! write end remains open, and `EAGAIN` otherwise (non-blocking semantics —
//! a blocking read could never be satisfied in a synchronous world).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use shill_vfs::{Errno, IoFault, SysResult};

use crate::fault::{FaultPlane, FaultSite};
use crate::shard::SHARD_OBJ_STRIDE;
use crate::types::PipeId;

/// Mode-invariant fault key for a pipe/socket data op: shard-relative
/// object id mixed with the op length — never global order, so the same
/// schedule fires identically under sequential, batched, and pooled
/// execution.
pub(crate) fn data_fault_key(id: u64, len: usize) -> u64 {
    (id % SHARD_OBJ_STRIDE) ^ (len as u64).rotate_left(37)
}

/// One pipe buffer plus reference counts for each end.
#[derive(Debug)]
struct PipeBuf {
    data: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// Table of live pipes.
#[derive(Debug, Default)]
pub struct PipeTable {
    pipes: HashMap<PipeId, PipeBuf>,
    next: u64,
    /// Fault plane consulted on the data path (`pipe.read` / `pipe.write`
    /// sites); installed by [`crate::kernel::Kernel::set_fault_plane`].
    faults: Option<Arc<FaultPlane>>,
}

impl PipeTable {
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// A table allocating `PipeId`s from `base` upward. Kernel shards use
    /// disjoint bases so pipe ids — which key shared MAC policy labels —
    /// never alias across shards.
    pub fn with_id_base(base: u64) -> PipeTable {
        PipeTable {
            next: base,
            ..PipeTable::default()
        }
    }

    /// Install (or clear) the fault plane consulted on reads and writes.
    pub fn set_fault_plane(&mut self, plane: Option<Arc<FaultPlane>>) {
        self.faults = plane;
    }

    /// Allocate a new pipe with one reader and one writer reference.
    pub fn create(&mut self) -> PipeId {
        self.next += 1;
        let id = PipeId(self.next);
        self.pipes.insert(
            id,
            PipeBuf {
                data: VecDeque::new(),
                readers: 1,
                writers: 1,
            },
        );
        id
    }

    /// Number of live pipes (tests).
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Add a reference to one end (descriptor duplication / fork).
    pub fn addref(&mut self, id: PipeId, write_end: bool) -> SysResult<()> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if write_end {
            p.writers += 1;
        } else {
            p.readers += 1;
        }
        Ok(())
    }

    /// Drop a reference to one end; the pipe is reclaimed when both sides
    /// reach zero.
    pub fn release(&mut self, id: PipeId, write_end: bool) {
        let remove = match self.pipes.get_mut(&id) {
            Some(p) => {
                if write_end {
                    p.writers = p.writers.saturating_sub(1);
                } else {
                    p.readers = p.readers.saturating_sub(1);
                }
                p.readers == 0 && p.writers == 0
            }
            None => false,
        };
        if remove {
            self.pipes.remove(&id);
        }
    }

    /// Write into the pipe. Fails with `EPIPE` when no reader remains.
    pub fn write(&mut self, id: PipeId, mut buf: &[u8]) -> SysResult<usize> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if p.readers == 0 {
            return Err(Errno::EPIPE);
        }
        if let Some(plane) = &self.faults {
            match plane.check_io(
                FaultSite::PipeWrite,
                data_fault_key(id.0, buf.len()),
                buf.len(),
            ) {
                Some(IoFault::Fail(e)) => return Err(e),
                Some(IoFault::Short(n)) => buf = &buf[..n],
                None => {}
            }
        }
        p.data.extend(buf.iter().copied());
        Ok(buf.len())
    }

    /// Read up to `len` bytes. Empty + writers alive → `EAGAIN`; empty + no
    /// writers → EOF (empty vec).
    pub fn read(&mut self, id: PipeId, mut len: usize) -> SysResult<Vec<u8>> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if let Some(plane) = &self.faults {
            match plane.check_io(FaultSite::PipeRead, data_fault_key(id.0, len), len) {
                Some(IoFault::Fail(e)) => return Err(e),
                Some(IoFault::Short(n)) => len = n,
                None => {}
            }
        }
        if p.data.is_empty() {
            if p.writers == 0 {
                return Ok(Vec::new());
            }
            return Err(Errno::EAGAIN);
        }
        let n = len.min(p.data.len());
        Ok(p.data.drain(..n).collect())
    }

    /// Bytes currently buffered.
    pub fn buffered(&self, id: PipeId) -> SysResult<usize> {
        Ok(self.pipes.get(&id).ok_or(Errno::EBADF)?.data.len())
    }

    /// Drain everything buffered without consuming an end reference
    /// (used by the runtime to collect a sandboxed child's stdout).
    pub fn drain_all(&mut self, id: PipeId) -> SysResult<Vec<u8>> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        Ok(p.data.drain(..).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.write(id, b"abc").unwrap();
        t.write(id, b"def").unwrap();
        assert_eq!(t.read(id, 4).unwrap(), b"abcd");
        assert_eq!(t.read(id, 10).unwrap(), b"ef");
    }

    #[test]
    fn empty_with_writer_is_eagain() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.read(id, 1).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn empty_without_writer_is_eof() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.release(id, true);
        assert_eq!(t.read(id, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_without_reader_is_epipe() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.release(id, false);
        assert_eq!(t.write(id, b"x").unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn reclaimed_after_both_ends_close() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.len(), 1);
        t.release(id, false);
        t.release(id, true);
        assert_eq!(t.len(), 0);
        assert_eq!(t.write(id, b"x").unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn injected_pipe_faults_fail_and_shorten() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.set_fault_plane(Some(Arc::new(
            FaultPlane::seeded(1, 0, &[])
                .fail_on(FaultSite::PipeWrite, 1, Errno::EPIPE)
                .short_on(FaultSite::PipeWrite, 2, 2)
                .fail_on(FaultSite::PipeRead, 1, Errno::EIO),
        )));
        assert_eq!(t.write(id, b"abcdef").unwrap_err(), Errno::EPIPE);
        assert_eq!(t.write(id, b"abcdef").unwrap(), 2, "short write");
        assert_eq!(t.read(id, 10).unwrap_err(), Errno::EIO);
        assert_eq!(
            t.read(id, 10).unwrap(),
            b"ab",
            "only the short prefix landed"
        );
        let plane = t.faults.as_ref().unwrap();
        assert_eq!(
            plane.drain(),
            (3, 3),
            "all injected faults surfaced cleanly"
        );
    }

    #[test]
    fn pipe_fault_key_is_shard_relative() {
        // The same pipe ordinal on two shards maps to one key: a schedule
        // fires identically wherever the session happens to be pinned.
        let base = 3 * SHARD_OBJ_STRIDE;
        assert_eq!(data_fault_key(7, 16), data_fault_key(base + 7, 16));
        assert_ne!(data_fault_key(7, 16), data_fault_key(8, 16));
    }

    #[test]
    fn refcounts_keep_pipe_alive() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.addref(id, true).unwrap();
        t.release(id, true);
        t.write(id, b"ok").unwrap(); // still one writer
        t.release(id, true);
        t.release(id, false);
        assert!(t.is_empty());
    }
}
