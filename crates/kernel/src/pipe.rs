//! Anonymous pipes.
//!
//! Execution in the simulator is synchronous (a spawned executable runs to
//! completion inside `exec`), so pipes behave as unbounded buffers: writers
//! append, readers drain FIFO. Reading an empty pipe yields EOF when no
//! write end remains open, and `EAGAIN` otherwise (non-blocking semantics —
//! a blocking read could never be satisfied in a synchronous world).

use std::collections::{HashMap, VecDeque};

use shill_vfs::{Errno, SysResult};

use crate::types::PipeId;

/// One pipe buffer plus reference counts for each end.
#[derive(Debug)]
struct PipeBuf {
    data: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// Table of live pipes.
#[derive(Debug, Default)]
pub struct PipeTable {
    pipes: HashMap<PipeId, PipeBuf>,
    next: u64,
}

impl PipeTable {
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// A table allocating `PipeId`s from `base` upward. Kernel shards use
    /// disjoint bases so pipe ids — which key shared MAC policy labels —
    /// never alias across shards.
    pub fn with_id_base(base: u64) -> PipeTable {
        PipeTable {
            next: base,
            ..PipeTable::default()
        }
    }

    /// Allocate a new pipe with one reader and one writer reference.
    pub fn create(&mut self) -> PipeId {
        self.next += 1;
        let id = PipeId(self.next);
        self.pipes.insert(
            id,
            PipeBuf {
                data: VecDeque::new(),
                readers: 1,
                writers: 1,
            },
        );
        id
    }

    /// Number of live pipes (tests).
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Add a reference to one end (descriptor duplication / fork).
    pub fn addref(&mut self, id: PipeId, write_end: bool) -> SysResult<()> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if write_end {
            p.writers += 1;
        } else {
            p.readers += 1;
        }
        Ok(())
    }

    /// Drop a reference to one end; the pipe is reclaimed when both sides
    /// reach zero.
    pub fn release(&mut self, id: PipeId, write_end: bool) {
        let remove = match self.pipes.get_mut(&id) {
            Some(p) => {
                if write_end {
                    p.writers = p.writers.saturating_sub(1);
                } else {
                    p.readers = p.readers.saturating_sub(1);
                }
                p.readers == 0 && p.writers == 0
            }
            None => false,
        };
        if remove {
            self.pipes.remove(&id);
        }
    }

    /// Write into the pipe. Fails with `EPIPE` when no reader remains.
    pub fn write(&mut self, id: PipeId, buf: &[u8]) -> SysResult<usize> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if p.readers == 0 {
            return Err(Errno::EPIPE);
        }
        p.data.extend(buf.iter().copied());
        Ok(buf.len())
    }

    /// Read up to `len` bytes. Empty + writers alive → `EAGAIN`; empty + no
    /// writers → EOF (empty vec).
    pub fn read(&mut self, id: PipeId, len: usize) -> SysResult<Vec<u8>> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        if p.data.is_empty() {
            if p.writers == 0 {
                return Ok(Vec::new());
            }
            return Err(Errno::EAGAIN);
        }
        let n = len.min(p.data.len());
        Ok(p.data.drain(..n).collect())
    }

    /// Bytes currently buffered.
    pub fn buffered(&self, id: PipeId) -> SysResult<usize> {
        Ok(self.pipes.get(&id).ok_or(Errno::EBADF)?.data.len())
    }

    /// Drain everything buffered without consuming an end reference
    /// (used by the runtime to collect a sandboxed child's stdout).
    pub fn drain_all(&mut self, id: PipeId) -> SysResult<Vec<u8>> {
        let p = self.pipes.get_mut(&id).ok_or(Errno::EBADF)?;
        Ok(p.data.drain(..).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.write(id, b"abc").unwrap();
        t.write(id, b"def").unwrap();
        assert_eq!(t.read(id, 4).unwrap(), b"abcd");
        assert_eq!(t.read(id, 10).unwrap(), b"ef");
    }

    #[test]
    fn empty_with_writer_is_eagain() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.read(id, 1).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn empty_without_writer_is_eof() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.release(id, true);
        assert_eq!(t.read(id, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_without_reader_is_epipe() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.release(id, false);
        assert_eq!(t.write(id, b"x").unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn reclaimed_after_both_ends_close() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.len(), 1);
        t.release(id, false);
        t.release(id, true);
        assert_eq!(t.len(), 0);
        assert_eq!(t.write(id, b"x").unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn refcounts_keep_pipe_alive() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.addref(id, true).unwrap();
        t.release(id, true);
        t.write(id, b"ok").unwrap(); // still one writer
        t.release(id, true);
        t.release(id, false);
        assert!(t.is_empty());
    }
}
