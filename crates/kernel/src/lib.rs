//! # shill-kernel
//!
//! The simulated commodity kernel the SHILL reproduction runs on: processes
//! and descriptors, a full `*at` system-call surface (plus the paper's new
//! `flinkat`, `funlinkat`, `frenameat`, fd-returning `mkdirat`, and `path`
//! syscalls), anonymous pipes, a socket layer with simulated remote hosts,
//! and a TrustedBSD-style MAC framework ([`mac::MacPolicy`]) with the two
//! hooks the paper added (`vnode_post_lookup`, `vnode_post_create`).
//!
//! The SHILL sandbox itself is a *policy module* implemented in the
//! `shill-sandbox` crate; this crate is policy-agnostic.

pub mod avc;
#[warn(missing_docs)]
pub mod batch;
#[warn(missing_docs)]
pub mod fault;
#[warn(missing_docs)]
pub mod hist;
pub mod kernel;
pub mod mac;
pub mod net;
pub mod pipe;
pub mod process;
pub mod registry;
#[warn(missing_docs)]
pub mod sched;
#[warn(missing_docs)]
pub mod shard;
pub mod stats;
pub mod syscalls;
#[warn(missing_docs)]
pub mod trace;
pub mod types;

pub use avc::{avc_class, avc_pipe_class, avc_socket_class, Avc, AvcClass};
pub use batch::{BatchArg, BatchEntry, BatchFd, BatchOut, FailMode, SyscallBatch};
pub use fault::{path_key, FaultPlane, FaultSite};
pub use hist::{HistSnapshot, LatencyHist, SiteHists, SiteHistsSnapshot, HIST_BUCKETS};
pub use kernel::{ExecHandler, Kernel, Lookup, SYSCTL_AVC, SYSCTL_DCACHE};
pub use mac::{MacCtx, MacPolicy, NullPolicy, PipeOp, ProcOp, SocketOp, SystemOp, VnodeOp};
pub use net::{InjConnId, RemoteHandler};
pub use process::{FdObject, OpenFile, ProcState, Process};
pub use registry::PolicyRegistry;
pub use sched::{completions_to_slots, BatchDag, Completion, ScheduledRun};
pub use shard::{
    shard_count_from_env, KernelShards, MAX_SHARDS, SHARD_OBJ_STRIDE, SHARD_PID_STRIDE,
    SHILL_SHARDS_ENV,
};
pub use stats::{KernelStats, StatsSnapshot};
pub use trace::{
    trace_now_ns, Telemetry, TraceEvent, TraceKind, TracePlane, TraceScope, TraceSite,
    DEFAULT_TRACE_CAP,
};
pub use types::{
    Fd, ObjId, OpenFlags, Pid, PipeEnd, PipeId, SockAddr, SockDomain, SockId, Ulimits,
};
