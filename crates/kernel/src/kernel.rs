//! The kernel object: process table, policy registry, executable registry,
//! path walking (`namei`), and process lifecycle. File/socket system calls
//! live in [`crate::syscalls`] as further `impl Kernel` blocks.

use std::collections::HashMap;
use std::sync::Arc;

use shill_vfs::{
    dac, Access, Cred, DcacheProbe, DeviceKind, Errno, Filesystem, Mode, NodeId, SysResult,
};

use crate::avc::{avc_class, avc_pipe_class, avc_socket_class, Avc};
use crate::batch::{BatchState, PrefixHit, PrefixStep, PrefixTrace};
use crate::fault::{path_key, FaultPlane, FaultSite};
use crate::mac::{MacCtx, MacPolicy, PipeOp, ProcOp, SocketOp, SystemOp, VnodeOp};
use crate::net::NetStack;
use crate::pipe::PipeTable;
use crate::process::{FdObject, OpenFile, ProcState, Process};
use crate::registry::PolicyRegistry;
use crate::stats::KernelStats;
use crate::trace::{Telemetry, TracePlane, TraceScope, TraceSite};
use crate::types::{Fd, ObjId, Pid, PipeEnd, Ulimits};

/// Sysctl knob toggling the directory-entry cache (`0`/`1`).
pub const SYSCTL_DCACHE: &str = "security.cache.dcache";
/// Sysctl knob toggling the MAC access-vector cache (`0`/`1`).
pub const SYSCTL_AVC: &str = "security.cache.avc";

/// A registered executable: the simulated analogue of a binary image.
/// Handlers receive the kernel, the pid they run as, and `argv`.
pub type ExecHandler = Arc<dyn Fn(&mut Kernel, Pid, &[String]) -> i32 + Send + Sync>;

/// Maximum symlink traversals in one path resolution.
const MAX_SYMLINK_HOPS: u32 = 32;

/// Result of a path walk.
#[derive(Debug, Clone)]
pub struct Lookup {
    /// Directory containing the final component.
    pub parent: NodeId,
    /// The final component name (after symlink resolution of the dirname).
    pub name: String,
    /// The final node, if it exists.
    pub node: Option<NodeId>,
}

/// The simulated kernel.
pub struct Kernel {
    pub fs: Filesystem,
    pub pipes: PipeTable,
    pub net: NetStack,
    pub stats: KernelStats,
    /// Bytes written to the console (tty device); visible to tests.
    pub console: Vec<u8>,
    procs: HashMap<Pid, Process>,
    registry: PolicyRegistry,
    /// Access-vector cache for MAC vnode verdicts (see [`crate::avc`]).
    avc: Avc,
    exec_handlers: HashMap<String, ExecHandler>,
    pub(crate) sysctls: HashMap<String, String>,
    pub(crate) kenv: HashMap<String, String>,
    /// Live batched submission, if any (see [`crate::batch`]): one ulimit
    /// charge, one MAC context, and an in-batch `namei` prefix cache
    /// amortized across the batch's entries (or, for the per-wave
    /// scheduler path in [`crate::sched`], across one dependency wave).
    /// Installed and cleared exclusively through the batch drop-guard so
    /// an unwind mid-batch can never leave it populated.
    pub(crate) batch: Option<BatchState>,
    /// Which shard of a [`crate::shard::KernelShards`] this kernel is (0
    /// for a standalone kernel). Determines the id-space offsets below.
    shard: usize,
    next_pid: u32,
    rng: u64,
    /// Fault-injection plane, if installed (see [`crate::fault`]). Shared
    /// with the filesystem's data-path hook via `Arc`; `None` costs one
    /// branch per consulted site.
    faults: Option<Arc<FaultPlane>>,
    /// Tracing plane, if armed (see [`crate::trace`]). `None` (the
    /// default) costs one branch per instrumented site; armed but with a
    /// site masked off costs one relaxed load.
    trace: Option<Arc<TracePlane>>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// A kernel with a root filesystem containing `/dev/{null,zero,tty,random}`,
    /// `/tmp`, and an `init` process (pid 1, root, cwd `/`).
    pub fn new() -> Kernel {
        Kernel::new_shard(0)
    }

    /// A kernel for shard `shard` of a [`crate::shard::KernelShards`]: same
    /// contents as [`Kernel::new`], but every id allocator (pids, vnode ids,
    /// pipe ids, socket ids) starts at the shard's stride offset. Shards
    /// share one MAC policy module whose labels are keyed by pid and object
    /// id, so the id spaces must be disjoint — a grant on shard 0's
    /// `vnode#7` must never alias shard 1's `vnode#7`. The one deliberate
    /// exception is `init` (pid 1), which exists per shard: it never joins
    /// a session and is never granted capabilities, so policy-side aliasing
    /// is harmless. `new_shard(0)` is identical to `new()`.
    ///
    /// # Panics
    ///
    /// If `shard >= MAX_SHARDS`. The cap is a sanity bound enforced here
    /// because this constructor is public on its own (`KernelShards`
    /// clamps separately); the hard arithmetic limit is further out — at
    /// shard 4096 the pid-stride product overflows `u32` and would
    /// silently alias shard 0's pid space — so anyone raising
    /// `MAX_SHARDS` must keep it below `u32::MAX / SHARD_PID_STRIDE`.
    pub fn new_shard(shard: usize) -> Kernel {
        assert!(
            shard < crate::shard::MAX_SHARDS,
            "shard index {shard} exceeds MAX_SHARDS ({}): the pid stride would alias",
            crate::shard::MAX_SHARDS
        );
        let obj_base = shard as u64 * crate::shard::SHARD_OBJ_STRIDE;
        let mut fs = Filesystem::with_id_base(obj_base);
        let root = fs.root();
        let dev = fs
            .create_dir(
                root,
                "dev",
                Mode::DIR_DEFAULT,
                shill_vfs::Uid::ROOT,
                shill_vfs::Gid::WHEEL,
            )
            .expect("mkdir /dev");
        fs.create_device(dev, "null", DeviceKind::Null, Mode::RW_ALL)
            .expect("null");
        fs.create_device(dev, "zero", DeviceKind::Zero, Mode::RW_ALL)
            .expect("zero");
        fs.create_device(dev, "tty", DeviceKind::Tty, Mode::RW_ALL)
            .expect("tty");
        fs.create_device(dev, "random", DeviceKind::Random, Mode(0o444))
            .expect("random");
        fs.mkdir_p(
            "/tmp",
            Mode(0o777),
            shill_vfs::Uid::ROOT,
            shill_vfs::Gid::WHEEL,
        )
        .expect("mkdir /tmp");

        let mut procs = HashMap::new();
        procs.insert(Pid(1), Process::new(Pid(1), Pid(1), Cred::ROOT, root));

        let mut sysctls = HashMap::new();
        sysctls.insert("kern.ostype".to_string(), "SimBSD".to_string());
        sysctls.insert("kern.osrelease".to_string(), "9.2-SHILL".to_string());
        sysctls.insert("hw.ncpu".to_string(), "6".to_string());
        sysctls.insert(SYSCTL_DCACHE.to_string(), "1".to_string());
        sysctls.insert(SYSCTL_AVC.to_string(), "1".to_string());

        let mut k = Kernel {
            fs,
            pipes: PipeTable::with_id_base(obj_base),
            net: NetStack::with_id_base(obj_base),
            stats: KernelStats::default(),
            console: Vec::new(),
            procs,
            registry: PolicyRegistry::new(),
            avc: Avc::new(),
            exec_handlers: HashMap::new(),
            sysctls,
            kenv: HashMap::new(),
            batch: None,
            shard,
            next_pid: shard as u32 * crate::shard::SHARD_PID_STRIDE + 1,
            rng: 0x9E3779B97F4A7C15,
            faults: None,
            trace: None,
        };
        // `SHILL_FAULTS` arms every kernel in the process with the same
        // schedule — shard-relative keying makes the planes agree on which
        // operations fail regardless of which shard runs them.
        if let Some(plane) = FaultPlane::from_env() {
            k.set_fault_plane(Some(plane));
        }
        // `SHILL_TRACE` arms a per-shard trace ring; shards share one
        // monotonic epoch so the merged timeline is coherent.
        if let Some(plane) = TracePlane::from_env() {
            k.set_trace_plane(Some(plane));
        }
        k
    }

    /// Install (or clear) a fault-injection plane, returning the plane it
    /// displaced. The plane is shared with the filesystem so data-path
    /// faults originate below the MAC hooks; clearing removes the hook
    /// too. The returned handle (counters intact) can be put back with
    /// [`Kernel::restore_fault_plane`] — the idiom for standing a
    /// schedule down across fixture choreography.
    pub fn set_fault_plane(&mut self, plane: Option<FaultPlane>) -> Option<Arc<FaultPlane>> {
        let plane = plane.map(Arc::new);
        self.fs
            .set_fault_hook(plane.clone().map(|p| p as shill_vfs::SharedFaultHook));
        self.pipes.set_fault_plane(plane.clone());
        self.net.set_fault_plane(plane.clone());
        if let (Some(f), Some(t)) = (&plane, &self.trace) {
            f.attach_trace(t);
        }
        std::mem::replace(&mut self.faults, plane)
    }

    /// Reinstall a plane previously displaced by
    /// [`Kernel::set_fault_plane`], hit counters and pending accounting
    /// intact.
    pub fn restore_fault_plane(&mut self, plane: Option<Arc<FaultPlane>>) {
        self.fs
            .set_fault_hook(plane.clone().map(|p| p as shill_vfs::SharedFaultHook));
        self.pipes.set_fault_plane(plane.clone());
        self.net.set_fault_plane(plane.clone());
        if let (Some(f), Some(t)) = (&plane, &self.trace) {
            f.attach_trace(t);
        }
        self.faults = plane;
    }

    /// The installed fault plane, if any (containment sites book survived
    /// panics through this).
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.faults.as_ref()
    }

    // --- tracing plane ----------------------------------------------------

    /// Arm (or disarm) the tracing plane. The plane is stamped with this
    /// kernel's shard index and handed to the fault plane (so firings
    /// record instants) and to every registered policy (so stripe waits
    /// record spans). Returns the plane it displaced.
    pub fn set_trace_plane(&mut self, plane: Option<Arc<TracePlane>>) -> Option<Arc<TracePlane>> {
        if let Some(t) = &plane {
            t.set_shard(self.shard as u64);
            if let Some(f) = &self.faults {
                f.attach_trace(t);
            }
            for p in self.registry.iter() {
                p.attach_trace(t);
            }
        }
        std::mem::replace(&mut self.trace, plane)
    }

    /// The armed tracing plane, if any.
    pub fn trace_plane_handle(&self) -> Option<Arc<TracePlane>> {
        self.trace.clone()
    }

    /// Whether a site is currently traced: `false` with no plane (one
    /// branch), else one relaxed load of the site mask.
    #[inline]
    pub(crate) fn trace_wants(&self, site: TraceSite) -> bool {
        matches!(&self.trace, Some(t) if t.wants(site))
    }

    /// Open a span at an instrumented site. The returned guard owns its
    /// plane handle, so the caller keeps `&mut self` while it is live and
    /// an unwind still closes the span. `None` when untraced.
    #[inline]
    pub(crate) fn trace_span(&self, site: TraceSite, pid: u64, arg: u64) -> Option<TraceScope> {
        match &self.trace {
            Some(t) => t.span(site, pid, arg),
            None => None,
        }
    }

    /// Record a point event at an instrumented site (no-op when untraced).
    /// Public so out-of-crate executors (the sandbox worker pool) can mark
    /// events such as work steals without holding a plane handle.
    #[inline]
    pub fn trace_instant(&self, site: TraceSite, pid: u64, arg: u64, tag: &'static str) {
        if let Some(t) = &self.trace {
            t.instant(site, pid, arg, tag);
        }
    }

    /// One unified observability snapshot: drained counters (see
    /// [`Kernel::stats_snapshot`]), per-site latency histograms, and the
    /// drained trace ring. With no plane armed the histogram and event
    /// sections are empty but the counters are still exported.
    pub fn telemetry(&self) -> Telemetry {
        let stats = self.stats_snapshot();
        match &self.trace {
            Some(t) => Telemetry {
                stats,
                hists: t.hists(),
                events: t.drain(),
            },
            None => Telemetry {
                stats,
                ..Telemetry::default()
            },
        }
    }

    /// Consult the fault plane at a control-path site.
    fn fault_check(&self, site: FaultSite, key: u64) -> SysResult<()> {
        if let Some(f) = &self.faults {
            if let Some(e) = f.check(site, key) {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Shard-relative pid: the mode- and shard-invariant session key fault
    /// schedules fire on.
    fn fault_pid_key(pid: Pid) -> u64 {
        (pid.0 % crate::shard::SHARD_PID_STRIDE) as u64
    }

    /// Consult the fault plane for a batch entry, keyed by slot identity
    /// (never execution order) so in-order, out-of-order, and pooled
    /// execution fail the same entries.
    pub(crate) fn fault_batch_entry(&self, pid: Pid, slot: usize) -> SysResult<()> {
        self.fault_check(
            FaultSite::Batch,
            Self::fault_pid_key(pid) << 32 | slot as u64,
        )
    }

    /// Which shard this kernel is (0 for a standalone kernel).
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    // --- policy / executable registries ---------------------------------

    /// Load a MAC policy module (the "SHILL installed" configuration).
    /// Attaching a policy flushes the access-vector cache: verdicts reached
    /// without the new policy's veto are no longer valid. `avc_flushes`
    /// counts only flushes that dropped live verdicts — attaching to a
    /// kernel whose cache is empty is not an eviction event.
    pub fn register_policy(&mut self, policy: Arc<dyn MacPolicy>) {
        if let Some(t) = &self.trace {
            policy.attach_trace(t);
        }
        self.registry.attach(policy);
        if self.avc.flush() > 0 {
            KernelStats::bump(&self.stats.avc_flushes);
        }
    }

    /// Unload a policy by name (what `kldunload` would do; the SHILL policy
    /// itself denies this from inside a sandbox). Flushes the AVC.
    pub fn unregister_policy(&mut self, name: &str) -> bool {
        let removed = self.registry.detach(name);
        if removed && self.avc.flush() > 0 {
            KernelStats::bump(&self.stats.avc_flushes);
        }
        removed
    }

    /// Whether a policy with this name is loaded.
    pub fn has_policy(&self, name: &str) -> bool {
        self.registry.contains(name)
    }

    // --- cache control ----------------------------------------------------

    /// Toggle the resolution caches directly (the `security.cache.*`
    /// sysctls route here; ablation benches call it to compare modes).
    /// `avc_flushes` is bumped only when disabling actually dropped live
    /// verdicts: a disabled→disabled write or a toggle of an empty cache
    /// flushes nothing and must not inflate the counter.
    pub fn set_cache_enabled(&mut self, dcache: bool, avc: bool) {
        self.fs.dcache().set_enabled(dcache);
        if self.avc.set_enabled(avc) > 0 {
            KernelStats::bump(&self.stats.avc_flushes);
        }
        self.sysctls.insert(
            SYSCTL_DCACHE.to_string(),
            if dcache { "1" } else { "0" }.to_string(),
        );
        self.sysctls.insert(
            SYSCTL_AVC.to_string(),
            if avc { "1" } else { "0" }.to_string(),
        );
    }

    /// Current `(dcache, avc)` enablement.
    pub fn cache_enabled(&self) -> (bool, bool) {
        (self.fs.dcache().enabled(), self.avc.enabled())
    }

    /// Apply a `security.cache.*` sysctl write; no-op for other names.
    /// Cache knobs accept exactly `"0"`/`"1"` — anything else is `EINVAL`
    /// so a malformed write (e.g. `"off"`) can never silently enable a
    /// cache the operator meant to turn off.
    pub(crate) fn apply_cache_sysctl(&mut self, name: &str, value: &str) -> SysResult<()> {
        if name != SYSCTL_DCACHE && name != SYSCTL_AVC {
            return Ok(());
        }
        let on = match value.trim() {
            "0" => false,
            "1" => true,
            _ => return Err(Errno::EINVAL),
        };
        let (dcache, avc) = self.cache_enabled();
        match name {
            SYSCTL_DCACHE => self.set_cache_enabled(on, avc),
            _ => self.set_cache_enabled(dcache, on),
        }
        Ok(())
    }

    /// The access-vector cache (tests/diagnostics).
    pub fn avc(&self) -> &Avc {
        &self.avc
    }

    /// Whether a batched submission's amortized state is currently
    /// installed (diagnostics: the executor's worker-pool tests assert the
    /// per-wave install/release discipline never leaks state past a run).
    pub fn batch_in_flight(&self) -> bool {
        self.batch.is_some()
    }

    /// Defensive teardown of any batch state left installed. The batch
    /// drop-guard makes a stuck batch unreachable in principle; the worker
    /// pool still calls this after containing a panic, because a kernel
    /// wedged with stale batch state would fail every later submission on
    /// the shard with `EINVAL`. Returns whether anything was cleared.
    pub fn abort_stale_batch(&mut self) -> bool {
        self.batch.take().is_some()
    }

    /// Register a simulated executable under `program` (matched against the
    /// `#!SIMBIN <program>` line of executable files).
    pub fn register_exec(&mut self, program: &str, handler: ExecHandler) {
        self.exec_handlers.insert(program.to_string(), handler);
    }

    /// Look up a registered executable handler by program name.
    pub(crate) fn exec_handler(&self, program: &str) -> Option<ExecHandler> {
        self.exec_handlers.get(program).cloned()
    }

    // --- processes -------------------------------------------------------

    pub fn process(&self, pid: Pid) -> SysResult<&Process> {
        self.procs.get(&pid).ok_or(Errno::ESRCH)
    }

    pub fn process_mut(&mut self, pid: Pid) -> SysResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(Errno::ESRCH)
    }

    /// Live process-table entries, zombies included (diagnostics/tests —
    /// the session executor's leak regression checks this stays flat).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The MAC subject context for a process. Inside a batched submission
    /// the context built once at submit time is reused — credentials cannot
    /// change mid-batch (no batch entry alters them), so re-deriving it per
    /// check is pure overhead.
    pub(crate) fn ctx(&self, pid: Pid) -> SysResult<MacCtx> {
        if let Some(b) = &self.batch {
            if b.ctx.pid == pid {
                return Ok(b.ctx);
            }
        }
        KernelStats::bump(&self.stats.mac_ctx_setups);
        Ok(MacCtx {
            pid,
            cred: self.process(pid)?.cred,
        })
    }

    /// Charge one syscall tick against the process's cpu ulimit. Inside a
    /// batched submission the accounting was hoisted to `submit_batch`: the
    /// tick is consumed from the batch's pre-read budget (identical EAGAIN
    /// trip points, no per-call process-table lookup) and written back once
    /// when the batch completes.
    pub(crate) fn charge(&mut self, pid: Pid) -> SysResult<()> {
        KernelStats::bump(&self.stats.syscalls);
        // Injected ulimit exhaustion fires here — before the batch branch —
        // so sequential and batched execution trip at identical points.
        self.fault_check(FaultSite::Charge, Self::fault_pid_key(pid))?;
        if let Some(b) = &self.batch {
            if b.ctx.pid == pid {
                return b.consume_tick();
            }
        }
        KernelStats::bump(&self.stats.charge_calls);
        let p = self.process_mut(pid)?;
        if !p.alive() {
            return Err(Errno::ESRCH);
        }
        p.cpu_ticks += 1;
        if p.cpu_ticks > p.ulimits.max_cpu_ticks {
            return Err(Errno::EAGAIN);
        }
        Ok(())
    }

    /// Allocate the next pid, enforcing the shard stride the sharded
    /// policy-label safety argument depends on: a shard that exhausts its
    /// pid range must fail (`EAGAIN`, like real pid exhaustion) rather
    /// than silently bleed into the next shard's range — a bled pid would
    /// route to the wrong shard's lock *and* could alias a live pid there
    /// in the shared policy's pid-keyed session/label maps.
    fn alloc_pid(&mut self) -> SysResult<Pid> {
        let base = self.shard as u32 * crate::shard::SHARD_PID_STRIDE;
        // Simulated pid-space exhaustion, keyed by the shard-relative pid
        // about to be handed out.
        self.fault_check(FaultSite::AllocPid, (self.next_pid + 1 - base) as u64)?;
        if self.next_pid - base >= crate::shard::SHARD_PID_STRIDE - 1 {
            return Err(Errno::EAGAIN);
        }
        self.next_pid += 1;
        Ok(Pid(self.next_pid))
    }

    /// Create a fresh top-level user process (child of init) with the given
    /// credentials; used by ambient scripts and test setup. Panics if the
    /// shard's pid space (2^20 lifetime pids) is exhausted — callers that
    /// must degrade instead of abort use [`Kernel::try_spawn_user`].
    pub fn spawn_user(&mut self, cred: Cred) -> Pid {
        self.try_spawn_user(cred)
            .expect("shard pid space exhausted")
    }

    /// Fallible [`Kernel::spawn_user`]: pid-space exhaustion (the shard
    /// stride guard, or an injected `alloc_pid` fault) surfaces as the
    /// same `EAGAIN` real pid exhaustion produces, so callers can hand
    /// scripts a catchable `syserror` instead of aborting the harness.
    pub fn try_spawn_user(&mut self, cred: Cred) -> SysResult<Pid> {
        let pid = self.alloc_pid()?;
        let root = self.fs.root();
        self.procs
            .insert(pid, Process::new(pid, Pid(1), cred, root));
        if let Some(init) = self.procs.get_mut(&Pid(1)) {
            init.children.push(pid);
        }
        for p in self.registry.iter() {
            p.proc_fork(Pid(1), pid);
        }
        Ok(pid)
    }

    /// Fork: the child inherits credentials, cwd, ulimits, and descriptors
    /// (with reference counts bumped). MAC policies are notified so session
    /// membership is inherited (paper §3.2.1: "Processes spawned by a
    /// process in a session are by default placed in the same session").
    pub fn fork(&mut self, parent: Pid) -> SysResult<Pid> {
        self.charge(parent)?;
        KernelStats::bump(&self.stats.forks);
        let (cred, cwd, ulimits, fds) = {
            let p = self.process(parent)?;
            let live = p.children.len() as u32;
            if live >= p.ulimits.max_processes {
                return Err(Errno::EAGAIN);
            }
            (p.cred, p.cwd, p.ulimits, p.fds.clone())
        };
        let pid = self.alloc_pid()?;
        let mut child = Process::new(pid, parent, cred, cwd);
        child.ulimits = ulimits;
        for (fd, of) in fds {
            match of.object {
                FdObject::Vnode(n) => self.fs.incref(n),
                FdObject::Pipe(id, end) => {
                    let _ = self.pipes.addref(id, end == PipeEnd::Write);
                }
                FdObject::Socket(_) => {}
            }
            child.install_fd(fd, of);
        }
        self.procs.insert(pid, child);
        self.process_mut(parent)?.children.push(pid);
        for p in self.registry.iter() {
            p.proc_fork(parent, pid);
        }
        Ok(pid)
    }

    /// Terminate a process: close descriptors, notify policies, zombify.
    pub fn exit(&mut self, pid: Pid, status: i32) {
        let fds: Vec<Fd> = match self.procs.get(&pid) {
            Some(p) if p.alive() => p.fds.keys().copied().collect(),
            _ => return,
        };
        for fd in fds {
            let _ = self.close(pid, fd);
        }
        if let Some(p) = self.procs.get_mut(&pid) {
            p.state = ProcState::Zombie(status);
        }
        for p in self.registry.iter() {
            p.proc_exit(pid);
        }
        // The subject is gone; its cached MAC verdicts must not linger (a
        // policy may also have scrubbed session labels, which its epoch
        // bump invalidates for the session's *other* processes).
        self.avc.drop_pid(pid);
    }

    /// Wait for a zombie child and reap it. `EAGAIN` while still running
    /// (cannot block in a synchronous simulator), `ECHILD` if not a child.
    pub fn waitpid(&mut self, parent: Pid, child: Pid) -> SysResult<i32> {
        self.charge(parent)?;
        if !self.process(parent)?.children.contains(&child) {
            return Err(Errno::ECHILD);
        }
        for p in self.registry.iter() {
            p.proc_check(self.ctx(parent)?, ProcOp::Wait(child))?;
            KernelStats::bump(&self.stats.mac_other_checks);
        }
        let status = match self.process(child)?.state {
            ProcState::Zombie(s) => s,
            ProcState::Running => return Err(Errno::EAGAIN),
            ProcState::Reaped => return Err(Errno::ECHILD),
        };
        self.procs.remove(&child);
        self.process_mut(parent)?.children.retain(|c| *c != child);
        Ok(status)
    }

    /// Send a (fatal) signal. The only delivery the simulator models is
    /// termination, which is all the case studies need.
    pub fn kill(&mut self, pid: Pid, target: Pid) -> SysResult<()> {
        self.charge(pid)?;
        if !self.procs.contains_key(&target) {
            return Err(Errno::ESRCH);
        }
        for p in self.registry.iter() {
            p.proc_check(self.ctx(pid)?, ProcOp::Signal(target))?;
            KernelStats::bump(&self.stats.mac_other_checks);
        }
        self.exit(target, -9);
        Ok(())
    }

    /// Attach a debugger (ptrace-style); always refused across sessions by
    /// the SHILL policy, permitted by the bare kernel.
    pub fn pdebug(&mut self, pid: Pid, target: Pid) -> SysResult<()> {
        self.charge(pid)?;
        if !self.procs.contains_key(&target) {
            return Err(Errno::ESRCH);
        }
        for p in self.registry.iter() {
            p.proc_check(self.ctx(pid)?, ProcOp::Debug(target))?;
            KernelStats::bump(&self.stats.mac_other_checks);
        }
        Ok(())
    }

    /// Set ulimits on a (child) process before exec, per the paper's
    /// `exec(..., ulimit = ...)` option.
    pub fn set_ulimits(&mut self, pid: Pid, limits: Ulimits) -> SysResult<()> {
        self.process_mut(pid)?.ulimits = limits;
        Ok(())
    }

    // --- MAC helpers ------------------------------------------------------

    pub(crate) fn mac_vnode(&self, pid: Pid, node: NodeId, op: &VnodeOp<'_>) -> SysResult<()> {
        if self.registry.is_empty() {
            return Ok(());
        }
        // Injected policy-module panic: fires before the AVC probe and the
        // policy iteration, modeling a hook that dies mid-check. Only
        // armed when a policy is actually registered (it is a *policy*
        // fault); containment is the caller's unwind boundary.
        if let Some(f) = &self.faults {
            f.maybe_panic(Self::fault_pid_key(pid));
        }
        // Fast path: a previously memoized allow for this access vector,
        // still valid at the current combined epoch. Denials are never
        // cached and mutation/name-dependent ops have no class, so both
        // always take the slow path below.
        let vector = if self.avc.enabled() && self.registry.cacheable() {
            avc_class(op)
        } else {
            None
        };
        let epoch = vector.map(|_| self.registry.combined_epoch());
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            if self.avc.probe(pid, ObjId::Vnode(node), class, epoch) {
                KernelStats::bump(&self.stats.avc_hits);
                return Ok(());
            }
            KernelStats::bump(&self.stats.avc_misses);
        }
        let ctx = self.ctx(pid)?;
        // Only checks that reach the policy modules are spanned: an AVC
        // hit returned above without touching the trace plane.
        let _mac_span = self.trace_span(TraceSite::Mac, pid.0 as u64, node.0);
        for p in self.registry.iter() {
            KernelStats::bump(&self.stats.mac_vnode_checks);
            p.vnode_check(ctx, node, op)?;
        }
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            self.avc.record(pid, ObjId::Vnode(node), class, epoch);
        }
        Ok(())
    }

    pub(crate) fn mac_post_lookup(&self, pid: Pid, dir: NodeId, name: &str, child: NodeId) {
        if self.registry.is_empty() {
            return;
        }
        if let Ok(ctx) = self.ctx(pid) {
            for p in self.registry.iter() {
                p.vnode_post_lookup(ctx, dir, name, child);
            }
        }
    }

    pub(crate) fn mac_post_create(
        &self,
        pid: Pid,
        dir: NodeId,
        name: &str,
        child: NodeId,
        ftype: shill_vfs::FileType,
    ) {
        if let Ok(ctx) = self.ctx(pid) {
            for p in self.registry.iter() {
                p.vnode_post_create(ctx, dir, name, child, ftype);
            }
        }
    }

    pub(crate) fn mac_pipe(&self, pid: Pid, obj: ObjId, op: PipeOp) -> SysResult<()> {
        if self.registry.is_empty() {
            return Ok(());
        }
        // Same memoization discipline as vnodes: pipe data-path verdicts
        // are operand-free and monotone between epoch bumps.
        let vector = if self.avc.enabled() && self.registry.cacheable() {
            avc_pipe_class(op)
        } else {
            None
        };
        let epoch = vector.map(|_| self.registry.combined_epoch());
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            if self.avc.probe(pid, obj, class, epoch) {
                KernelStats::bump(&self.stats.avc_hits);
                return Ok(());
            }
            KernelStats::bump(&self.stats.avc_misses);
        }
        let ctx = self.ctx(pid)?;
        let _mac_span = self.trace_span(TraceSite::Mac, pid.0 as u64, 0);
        for p in self.registry.iter() {
            KernelStats::bump(&self.stats.mac_other_checks);
            p.pipe_check(ctx, obj, op)?;
        }
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            self.avc.record(pid, obj, class, epoch);
        }
        Ok(())
    }

    pub(crate) fn mac_socket(&self, pid: Pid, obj: ObjId, op: &SocketOp) -> SysResult<()> {
        if self.registry.is_empty() {
            return Ok(());
        }
        // Send/Recv are cacheable; lifecycle and address-carrying checks
        // (Create/Bind/Connect/Listen/Accept) always reach the policies.
        let vector = if self.avc.enabled() && self.registry.cacheable() {
            avc_socket_class(op)
        } else {
            None
        };
        let epoch = vector.map(|_| self.registry.combined_epoch());
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            if self.avc.probe(pid, obj, class, epoch) {
                KernelStats::bump(&self.stats.avc_hits);
                return Ok(());
            }
            KernelStats::bump(&self.stats.avc_misses);
        }
        let ctx = self.ctx(pid)?;
        let _mac_span = self.trace_span(TraceSite::Mac, pid.0 as u64, 0);
        for p in self.registry.iter() {
            KernelStats::bump(&self.stats.mac_other_checks);
            p.socket_check(ctx, obj, op)?;
        }
        if let (Some(class), Some(epoch)) = (vector, epoch) {
            self.avc.record(pid, obj, class, epoch);
        }
        Ok(())
    }

    pub(crate) fn mac_system(&self, pid: Pid, op: &SystemOp) -> SysResult<()> {
        if self.registry.is_empty() {
            return Ok(());
        }
        let ctx = self.ctx(pid)?;
        for p in self.registry.iter() {
            KernelStats::bump(&self.stats.mac_other_checks);
            p.system_check(ctx, op)?;
        }
        Ok(())
    }

    pub(crate) fn notify_vnode_destroy(&self, node: NodeId) {
        for p in self.registry.iter() {
            p.vnode_destroy(node);
        }
        self.avc.drop_obj(ObjId::Vnode(node));
    }

    pub(crate) fn policies(&self) -> &[Arc<dyn MacPolicy>] {
        self.registry.as_slice()
    }

    /// Whether a batched submission may reuse dirname resolutions. Requires
    /// the cacheable-policy contract *and* the resolution caches themselves:
    /// prefix reuse memoizes directory-entry scans (the dcache's job) and
    /// MAC lookup verdicts (the AVC's job), so when an operator has turned
    /// either cache off, the batch path must not keep a private copy of it —
    /// with caches off, batched execution degrades to exactly the sequential
    /// walk, stats and all.
    pub(crate) fn prefix_reuse_allowed(&self) -> bool {
        self.fs.dcache().enabled()
            && (self.registry.is_empty() || (self.avc.enabled() && self.registry.cacheable()))
    }

    /// Capacity-pressure evictions performed by the directory-entry cache
    /// (stale-generation drops that ran before any full purge).
    pub fn dcache_evictions(&self) -> u64 {
        self.fs.dcache().stats().evictions
    }

    /// Stats snapshot that first drains each registered policy's contention
    /// counter ([`MacPolicy::take_contention`]) into
    /// `KernelStats::policy_stripe_contention`. [`crate::shard::KernelShards::stats`]
    /// folds these per-shard snapshots under one rendezvous, so the merged
    /// view accounts every contended stripe acquisition exactly once.
    /// `self.stats.snapshot()` remains the raw, drain-free form.
    pub fn stats_snapshot(&self) -> crate::stats::StatsSnapshot {
        for p in self.registry.iter() {
            let drained = p.take_contention();
            if drained > 0 {
                KernelStats::add(&self.stats.policy_stripe_contention, drained);
            }
            let dropped = p.take_log_dropped();
            if dropped > 0 {
                KernelStats::add(&self.stats.log_dropped, dropped);
            }
        }
        if let Some(t) = &self.trace {
            let dropped = t.take_dropped();
            if dropped > 0 {
                KernelStats::add(&self.stats.trace_dropped, dropped);
            }
        }
        if let Some(f) = &self.faults {
            let (injected, survived) = f.drain();
            if injected > 0 {
                KernelStats::add(&self.stats.faults_injected, injected);
            }
            if survived > 0 {
                KernelStats::add(&self.stats.faults_survived, survived);
            }
        }
        self.stats.snapshot()
    }

    /// Deterministic pseudo-random byte source for `/dev/random`.
    pub(crate) fn next_random(&mut self) -> u8 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng & 0xFF) as u8
    }

    // --- path walking (namei) --------------------------------------------

    /// Starting node for a path: root for absolute, `dirfd`'s node when
    /// given, else the process's cwd.
    fn walk_start(&self, pid: Pid, dirfd: Option<Fd>, path: &str) -> SysResult<NodeId> {
        if path.starts_with('/') {
            return Ok(self.fs.root());
        }
        match dirfd {
            Some(fd) => self.process(pid)?.fd_node(fd),
            None => Ok(self.process(pid)?.cwd),
        }
    }

    /// Resolve one component within `cur`, performing DAC search, the MAC
    /// lookup check, `.`/`..` handling, and the post-lookup notification.
    fn walk_component(&self, pid: Pid, cred: Cred, cur: NodeId, name: &str) -> SysResult<NodeId> {
        KernelStats::bump(&self.stats.lookups);
        let dir = self.fs.node(cur)?;
        if !dir.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        if !dac::check_access(dir, cred, Access::Exec) {
            return Err(Errno::EACCES);
        }
        self.mac_vnode(pid, cur, &VnodeOp::Lookup(name))?;
        let child = match name {
            "." => cur,
            ".." => self.fs.parent_of(cur)?,
            // The dcache replaces only the directory-entry scan; the DAC
            // search check and MAC lookup hook above ran either way.
            // Negative entries cache validated ENOENTs (generation-fenced:
            // a create or rename in the directory bumps the generation and
            // the absence is forgotten with it).
            _ => match self.fs.dcache().probe(cur, name) {
                DcacheProbe::Pos(n) => {
                    KernelStats::bump(&self.stats.dcache_hits);
                    n
                }
                DcacheProbe::Neg => {
                    KernelStats::bump(&self.stats.dcache_neg_hits);
                    return Err(Errno::ENOENT);
                }
                DcacheProbe::Miss => {
                    KernelStats::bump(&self.stats.dcache_misses);
                    KernelStats::bump(&self.stats.dir_scans);
                    match self.fs.lookup(cur, name) {
                        Ok(n) => {
                            self.fs.dcache().insert(cur, name, n);
                            n
                        }
                        Err(Errno::ENOENT) => {
                            self.fs.dcache().insert_negative(cur, name);
                            return Err(Errno::ENOENT);
                        }
                        Err(e) => return Err(e),
                    }
                }
            },
        };
        // The paper adds mac_vnode_post_lookup precisely here: after a
        // successful lookup, so the policy can propagate privileges (or
        // decline to, for "." / "..").
        self.mac_post_lookup(pid, cur, name, child);
        Ok(child)
    }

    /// Full path resolution. With `parent_mode`, resolves the dirname and
    /// reports the final component without requiring it to exist (create/
    /// unlink/rename preparation). `follow_last` controls trailing-symlink
    /// traversal.
    ///
    /// Inside a batched submission, multi-component paths first consult the
    /// batch's prefix cache: if an earlier entry resolved the same dirname
    /// from the same start and nothing invalidated it since (every walked
    /// directory's dcache generation unchanged, MAC combined epoch
    /// unchanged), the walk restarts at the final component. The skipped
    /// components' `post_lookup` propagation notifications are replayed so
    /// policy label state evolves exactly as on the full walk; the final
    /// component always takes the full DAC + MAC path.
    pub fn namei(
        &self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        follow_last: bool,
        parent_mode: bool,
    ) -> SysResult<Lookup> {
        if path.is_empty() {
            return Err(Errno::ENOENT);
        }
        if path.len() > 1024 {
            return Err(Errno::ENAMETOOLONG);
        }
        // Injected resolution failure, keyed by the path string itself: a
        // cursed path fails identically whether the walk would have been
        // served by the dcache, the in-batch prefix cache, or a full walk
        // — which is what keeps fault schedules cache-mode-invariant.
        self.fault_check(FaultSite::Namei, path_key(path))?;
        let cred = self.process(pid)?.cred;
        let start = self.walk_start(pid, dirfd, path)?;
        let mut hops = 0u32;

        let batch_reuse = self
            .batch
            .as_ref()
            .filter(|b| b.ctx.pid == pid && b.reuse_prefixes);
        if let Some(b) = batch_reuse {
            if let Some((dirname, last)) = crate::batch::split_dirname(path) {
                let epoch = self.registry.combined_epoch();
                let mut hit_parent: Option<NodeId> = None;
                {
                    let prefixes = b.prefixes.lock();
                    if let Some(hit) = prefixes.get(&start).and_then(|m| m.get(dirname)) {
                        if hit.epoch == epoch && self.prefix_still_valid(hit) {
                            // Account each skipped component as the cache
                            // hit it logically is — one lookup answered by
                            // the dcache (for scanned names) and one MAC
                            // verdict answered by the AVC — so `lookups`/
                            // `dcache_hits`/`avc_hits` stay in parity with
                            // sequential execution.
                            let steps = hit.steps.len() as u64;
                            KernelStats::add(&self.stats.lookups, steps);
                            let scanned = hit
                                .steps
                                .iter()
                                .filter(|s| s.name != "." && s.name != "..")
                                .count() as u64;
                            KernelStats::add(&self.stats.dcache_hits, scanned);
                            if !self.registry.is_empty() {
                                KernelStats::add(&self.stats.avc_hits, steps);
                                // Replay privilege propagation for the
                                // skipped components (monotone under the
                                // cacheable-policy contract, so order
                                // relative to other entries is immaterial).
                                for step in &hit.steps {
                                    self.mac_post_lookup(pid, step.dir, &step.name, step.child);
                                }
                            }
                            hit_parent = Some(hit.parent);
                        }
                    }
                }
                if let Some(parent) = hit_parent {
                    KernelStats::bump(&self.stats.batch_prefix_hits);
                    return self.namei_last(
                        pid,
                        cred,
                        start,
                        parent,
                        last,
                        follow_last,
                        parent_mode,
                        &mut hops,
                    );
                }
                KernelStats::bump(&self.stats.batch_prefix_misses);
                if let Some(m) = b.prefixes.lock().get_mut(&start) {
                    m.remove(dirname);
                }
                let mut trace = PrefixTrace::default();
                let res = self.namei_inner(
                    pid,
                    cred,
                    start,
                    path,
                    follow_last,
                    parent_mode,
                    &mut hops,
                    Some(&mut trace),
                );
                // The prefix is cacheable whenever the dirname resolved —
                // even if the final component failed (find-style probes of
                // absent names share the same dirname).
                if !trace.tainted {
                    if let Some(parent) = trace.parent_of_last {
                        b.prefixes.lock().entry(start).or_default().insert(
                            dirname.to_string(),
                            PrefixHit {
                                parent,
                                epoch,
                                steps: trace.steps,
                            },
                        );
                    }
                }
                return res;
            }
        }
        self.namei_inner(
            pid,
            cred,
            start,
            path,
            follow_last,
            parent_mode,
            &mut hops,
            None,
        )
    }

    /// Validate a cached prefix: every directory the original walk stepped
    /// through must still exist at the generation observed then. Any
    /// namespace mutation that could change the prefix's resolution bumps
    /// one of these generations (that is the dcache's invariant), so a
    /// mid-batch create/unlink/rename anywhere along the chain forces the
    /// slow path.
    fn prefix_still_valid(&self, hit: &PrefixHit) -> bool {
        if !self.fs.exists(hit.parent) {
            return false;
        }
        hit.steps
            .iter()
            .all(|s| self.fs.exists(s.dir) && self.fs.dcache().generation(s.dir) == s.gen)
    }

    /// Resolve only the final component of a path whose dirname was reused
    /// from the batch prefix cache. Mirrors `namei_inner`'s last-iteration
    /// behaviour exactly (same checks, same errnos, same notifications).
    #[allow(clippy::too_many_arguments)]
    fn namei_last(
        &self,
        pid: Pid,
        cred: Cred,
        start: NodeId,
        parent: NodeId,
        comp: &str,
        follow_last: bool,
        parent_mode: bool,
        hops: &mut u32,
    ) -> SysResult<Lookup> {
        if !shill_vfs::node::valid_component(comp) {
            return Err(Errno::ENAMETOOLONG);
        }
        if parent_mode {
            if comp == "." || comp == ".." {
                return Err(Errno::EINVAL);
            }
            let node = match self.walk_component(pid, cred, parent, comp) {
                Ok(n) => Some(self.follow_symlinks(pid, cred, parent, n, follow_last, hops)?),
                Err(Errno::ENOENT) => None,
                Err(e) => return Err(e),
            };
            return Ok(Lookup {
                parent,
                name: comp.to_string(),
                node,
            });
        }
        let child = self.walk_component(pid, cred, parent, comp)?;
        let node = self.follow_symlinks(pid, cred, parent, child, follow_last, hops)?;
        Ok(Lookup {
            parent: start,
            name: comp.to_string(),
            node: Some(node),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn namei_inner(
        &self,
        pid: Pid,
        cred: Cred,
        start: NodeId,
        path: &str,
        follow_last: bool,
        parent_mode: bool,
        hops: &mut u32,
        mut trace: Option<&mut PrefixTrace>,
    ) -> SysResult<Lookup> {
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.is_empty() {
            // Path was "/" or "." equivalent: the node itself.
            return Ok(Lookup {
                parent: start,
                name: String::new(),
                node: Some(start),
            });
        }
        let mut cur = start;
        for (i, comp) in comps.iter().enumerate() {
            let last = i + 1 == comps.len();
            if !shill_vfs::node::valid_component(comp) {
                return Err(Errno::ENAMETOOLONG);
            }
            if last {
                if let Some(t) = trace.as_deref_mut() {
                    // The dirname fully resolved: `cur` is the directory the
                    // final component lives in.
                    t.parent_of_last = Some(cur);
                }
            }
            if last && parent_mode {
                if *comp == "." || *comp == ".." {
                    return Err(Errno::EINVAL);
                }
                // Look the final component up, tolerating absence.
                let node = match self.walk_component(pid, cred, cur, comp) {
                    Ok(n) => Some(self.follow_symlinks(pid, cred, cur, n, follow_last, hops)?),
                    Err(Errno::ENOENT) => None,
                    Err(e) => return Err(e),
                };
                return Ok(Lookup {
                    parent: cur,
                    name: comp.to_string(),
                    node,
                });
            }
            let gen = self.fs.dcache().generation(cur);
            let child = self.walk_component(pid, cred, cur, comp)?;
            if !last {
                if let Some(t) = trace.as_deref_mut() {
                    if self.fs.node(child).map(|n| n.is_symlink()).unwrap_or(true) {
                        // Symlinked prefixes are not cached: their
                        // resolution depends on the link target, which the
                        // generation fence does not cover.
                        t.tainted = true;
                    } else {
                        t.steps.push(PrefixStep {
                            dir: cur,
                            gen,
                            name: comp.to_string(),
                            child,
                        });
                    }
                }
            }
            let follow = !last || follow_last;
            cur = self.follow_symlinks(pid, cred, cur, child, follow, hops)?;
        }
        let name = comps.last().map(|s| s.to_string()).unwrap_or_default();
        Ok(Lookup {
            parent: start,
            name,
            node: Some(cur),
        })
    }

    /// Iteratively resolve symlinks at `node` (looked up inside `dir`).
    fn follow_symlinks(
        &self,
        pid: Pid,
        cred: Cred,
        dir: NodeId,
        node: NodeId,
        follow: bool,
        hops: &mut u32,
    ) -> SysResult<NodeId> {
        if !follow {
            return Ok(node);
        }
        let mut cur = node;
        while self.fs.node(cur)?.is_symlink() {
            *hops += 1;
            if *hops > MAX_SYMLINK_HOPS {
                return Err(Errno::ELOOP);
            }
            self.mac_vnode(pid, cur, &VnodeOp::ReadSymlink)?;
            let target = self.fs.readlink(cur)?;
            let base = if target.starts_with('/') {
                self.fs.root()
            } else {
                dir
            };
            let res = self.namei_inner(pid, cred, base, &target, true, false, hops, None)?;
            cur = res.node.ok_or(Errno::ENOENT)?;
        }
        Ok(cur)
    }

    /// Resolve a path to an existing node (convenience over `namei`).
    pub fn resolve(
        &self,
        pid: Pid,
        dirfd: Option<Fd>,
        path: &str,
        follow: bool,
    ) -> SysResult<NodeId> {
        self.namei(pid, dirfd, path, follow, false)?
            .node
            .ok_or(Errno::ENOENT)
    }

    // --- descriptor plumbing shared by syscalls ---------------------------

    /// Install an open vnode descriptor, bumping the open reference.
    pub(crate) fn install_vnode_fd(
        &mut self,
        pid: Pid,
        node: NodeId,
        readable: bool,
        writable: bool,
        append: bool,
    ) -> SysResult<Fd> {
        let last_path = self.fs.path_of(node);
        self.fs.incref(node);
        let p = self.process_mut(pid)?;
        let fd = match p.alloc_fd() {
            Ok(fd) => fd,
            Err(e) => {
                self.fs.decref(node);
                return Err(e);
            }
        };
        let p = self.process_mut(pid)?;
        p.install_fd(
            fd,
            OpenFile {
                object: FdObject::Vnode(node),
                offset: 0,
                readable,
                writable,
                append,
                last_path,
            },
        );
        Ok(fd)
    }

    /// Inspect what a descriptor refers to (used when granting capabilities
    /// backed by pipes/sockets to sandbox sessions).
    pub fn fd_object(&self, pid: Pid, fd: Fd) -> SysResult<FdObject> {
        Ok(self.process(pid)?.file(fd)?.object.clone())
    }

    /// Duplicate an open descriptor from one process into another at a fixed
    /// descriptor number (stdio wiring for sandboxed children). Reference
    /// counts are bumped like `dup2` across a fork would.
    pub fn transfer_fd(&mut self, src: Pid, src_fd: Fd, dst: Pid, dst_fd: Fd) -> SysResult<()> {
        let of = self.process(src)?.file(src_fd)?.clone();
        match of.object {
            FdObject::Vnode(n) => self.fs.incref(n),
            FdObject::Pipe(id, end) => self.pipes.addref(id, end == PipeEnd::Write)?,
            FdObject::Socket(_) => {}
        }
        self.process_mut(dst)?.install_fd(dst_fd, of);
        Ok(())
    }

    /// Close a descriptor, releasing the underlying object reference.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> SysResult<()> {
        let of = self.process_mut(pid)?.fds.remove(&fd).ok_or(Errno::EBADF)?;
        match of.object {
            FdObject::Vnode(n) => {
                let existed = self.fs.exists(n);
                self.fs.decref(n);
                if existed && !self.fs.exists(n) {
                    self.notify_vnode_destroy(n);
                }
            }
            FdObject::Pipe(id, end) => {
                self.pipes.release(id, end == PipeEnd::Write);
                // Conservative hygiene: cached pipe verdicts die with the
                // descriptor (losing a cache entry is always safe).
                self.avc.drop_obj(ObjId::Pipe(id));
            }
            FdObject::Socket(s) => {
                self.net.close(s);
                self.avc.drop_obj(ObjId::Socket(s));
            }
        }
        Ok(())
    }
}

/// The whole point of the thread-safe state conversion: a kernel can be
/// moved to (and shared between) session worker threads. Everything
/// interior-mutable inside it is an atomic or a lock-guarded map.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Kernel>();
    assert_send_sync::<KernelStats>();
    assert_send_sync::<Avc>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_kernel_has_devices_and_init() {
        let k = Kernel::new();
        assert!(k.fs.resolve_abs("/dev/null").is_ok());
        assert!(k.fs.resolve_abs("/dev/tty").is_ok());
        assert!(k.fs.resolve_abs("/tmp").is_ok());
        assert!(k.process(Pid(1)).is_ok());
    }

    #[test]
    fn spawn_and_fork_lineage() {
        let mut k = Kernel::new();
        let u = k.spawn_user(Cred::user(100));
        let c = k.fork(u).unwrap();
        assert_eq!(k.process(c).unwrap().ppid, u);
        assert!(k.process(u).unwrap().children.contains(&c));
    }

    #[test]
    fn waitpid_reaps_zombie() {
        let mut k = Kernel::new();
        let u = k.spawn_user(Cred::user(100));
        let c = k.fork(u).unwrap();
        assert_eq!(k.waitpid(u, c).unwrap_err(), Errno::EAGAIN);
        k.exit(c, 7);
        assert_eq!(k.waitpid(u, c).unwrap(), 7);
        assert_eq!(k.waitpid(u, c).unwrap_err(), Errno::ECHILD);
        assert!(k.process(c).is_err());
    }

    #[test]
    fn kill_terminates() {
        let mut k = Kernel::new();
        let u = k.spawn_user(Cred::user(100));
        let c = k.fork(u).unwrap();
        k.kill(u, c).unwrap();
        assert_eq!(k.waitpid(u, c).unwrap(), -9);
    }

    #[test]
    fn pid_allocation_never_bleeds_into_the_next_shard_stride() {
        let mut k = Kernel::new_shard(1);
        // Fast-forward the allocator to the end of shard 1's range: the
        // last in-range pid is handed out, then allocation fails with
        // EAGAIN instead of bleeding into shard 2's stride (which would
        // misroute the pid and could alias shard 2's policy labels).
        k.next_pid = 2 * crate::shard::SHARD_PID_STRIDE - 2;
        let u = k.spawn_user(Cred::user(100));
        assert_eq!(u.0, 2 * crate::shard::SHARD_PID_STRIDE - 1);
        assert_eq!(k.fork(u).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn cpu_ulimit_trips() {
        let mut k = Kernel::new();
        let u = k.spawn_user(Cred::user(100));
        k.set_ulimits(
            u,
            Ulimits {
                max_cpu_ticks: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(k.fork(u).is_ok()); // tick 1
        let r2 = k.fork(u); // tick 2
        assert!(r2.is_ok());
        assert_eq!(k.fork(u).unwrap_err(), Errno::EAGAIN); // tick 3 > 2
    }

    #[test]
    fn policy_registry_load_unload() {
        let mut k = Kernel::new();
        k.register_policy(Arc::new(crate::mac::NullPolicy));
        assert!(k.has_policy("null"));
        assert!(k.unregister_policy("null"));
        assert!(!k.has_policy("null"));
        assert!(!k.unregister_policy("null"));
    }
}
