//! The SHILL evaluator: expression evaluation, function application,
//! contract application at boundaries, and the module system.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use shill_cap::PrivSet;
use shill_contracts::{Blame, GuardedCap, SealBrand, Violation};
use shill_kernel::{Kernel, Pid};
use shill_sandbox::ShillPolicy;

use crate::ast::{contract_to_string, BinOp, ContractExpr, Dialect, Expr, Script, Stmt, UnOp};
use crate::batchio::DeferredAcc;
use crate::builtins;
use crate::env::Env;
use crate::parse::parse_script;
use crate::profile::{PhaseNesting, Profile};
use crate::value::{Closure, ContractedFn, EvalResult, FutureCell, ShillError, Value};

/// Maximum evaluation depth (recursion guard).
/// Applications may nest this deep. The bound is set so that the native
/// stack (each interpreter level costs a handful of Rust frames, which are
/// large in debug builds) cannot overflow before the interpreter reports a
/// clean "evaluation depth exceeded" error — including on 2 MiB test
/// threads.
const MAX_DEPTH: usize = 220;

/// Exported bindings of an evaluated module.
pub type ModuleExports = Rc<HashMap<String, Value>>;

/// The interpreter: kernel, policy module, the runtime's process, module
/// store, and profiling state.
pub struct Interp {
    pub kernel: Kernel,
    /// The SHILL policy module, when loaded. `exec` requires it.
    pub policy: Option<Arc<ShillPolicy>>,
    /// The runtime's own (unsandboxed) process.
    pub pid: Pid,
    /// Module name → source text ("the filesystem" for `require`).
    pub scripts: HashMap<String, String>,
    module_cache: HashMap<String, ModuleExports>,
    /// Modules currently being loaded (cycle detection).
    loading: Vec<String>,
    pub profile: Profile,
    /// Open phase windows for reentrancy-safe profile attribution (a
    /// nested `run`/`exec` recursing through an outer `exec` must not
    /// double-book its time — see [`PhaseNesting`]).
    pub phase_nest: PhaseNesting,
    /// Output of the `display` builtin.
    pub out: Vec<u8>,
    depth: usize,
    /// The pending accumulated batch: `async` expressions enqueue deferred
    /// I/O fragments here; the first `await` flushes it in one scheduled
    /// submission. At most one accumulator exists at a time, so any
    /// pending future always belongs to it.
    pub deferred: Option<DeferredAcc>,
    /// Non-zero while evaluating inside an `async` operand — the I/O
    /// builtins consult this to defer instead of submitting eagerly. A
    /// plain counter (not a flag): `async` forms nest, including through
    /// closure calls made inside the operand.
    pub async_depth: usize,
}

impl Interp {
    /// Build an interpreter around an existing kernel. `policy` should
    /// already be registered with the kernel by the caller.
    pub fn new(kernel: Kernel, policy: Option<Arc<ShillPolicy>>, pid: Pid) -> Interp {
        Interp {
            kernel,
            policy,
            pid,
            scripts: HashMap::new(),
            module_cache: HashMap::new(),
            loading: Vec::new(),
            profile: Profile::default(),
            phase_nest: PhaseNesting::default(),
            out: Vec::new(),
            depth: 0,
            deferred: None,
            async_depth: 0,
        }
    }

    /// Force the accumulated batch: one scheduled submission resolving
    /// every pending future. No-op when nothing is deferred.
    pub fn flush_deferred(&mut self) {
        if let Some(acc) = self.deferred.take() {
            crate::batchio::flush_deferred(&mut self.kernel, self.pid, acc);
        }
    }

    /// Register a script under a module name for `require`.
    pub fn add_script(&mut self, name: &str, source: &str) {
        self.scripts.insert(name.to_string(), source.to_string());
    }

    fn enter(&mut self) -> Result<(), ShillError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(ShillError::Runtime("evaluation depth exceeded".into()));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    // --- script evaluation ---------------------------------------------------

    /// Evaluate a whole script (usually an ambient script). Returns the
    /// value of the last top-level expression.
    pub fn run_script(&mut self, name: &str, source: &str) -> EvalResult {
        let script = parse_script(source)?;
        let env = self.base_env(script.dialect);
        let (_, last) = self.eval_script_in(&script, name, &env)?;
        Ok(last)
    }

    /// Evaluate a script and collect its provided (contract-wrapped)
    /// exports.
    fn eval_script_in(
        &mut self,
        script: &Script,
        name: &str,
        env: &Env,
    ) -> Result<(HashMap<String, Value>, Value), ShillError> {
        for req in &script.requires {
            let exports = self.load_module(req)?;
            for (n, v) in exports.iter() {
                // Imports install into the base frame and may shadow the
                // pre-installed builtins/abbreviations (e.g. `shill/contracts`
                // re-exports `readonly`); user definitions still cannot
                // rebind them afterwards.
                env.define_internal(n, v.clone());
            }
        }
        let mut last = Value::Void;
        for stmt in &script.body {
            last = self.eval_stmt(env, stmt)?;
        }
        // Wrap provides with their contracts at the module boundary.
        let mut exports = HashMap::new();
        for p in &script.provides {
            let v = env.lookup(&p.name).ok_or_else(|| {
                ShillError::Runtime(format!("provided `{}` is not defined", p.name))
            })?;
            let blame = Blame::new(
                format!("client of {name}"),
                format!("{name}:{}", p.name),
                contract_to_string(&p.contract),
            );
            // positive=false: the provided value flows *out* of the module
            // to its client; function wrappers created here get
            // `into_body = true` (calling them enters the module).
            let wrapped = self.apply_contract(v, &p.contract, blame, &[], env, false)?;
            exports.insert(p.name.clone(), wrapped);
        }
        Ok((exports, last))
    }

    /// Load (or fetch cached) a module by name. Only capability-safe
    /// scripts can be required (§2.5: "capability-safe scripts cannot
    /// import ambient scripts").
    pub fn load_module(&mut self, name: &str) -> Result<ModuleExports, ShillError> {
        if let Some(m) = self.module_cache.get(name) {
            return Ok(Rc::clone(m));
        }
        // Rust-implemented standard library modules.
        if let Some(m) = crate::stdlib::stdlib_module(name) {
            let m = Rc::new(m);
            self.module_cache.insert(name.to_string(), Rc::clone(&m));
            return Ok(m);
        }
        if self.loading.iter().any(|l| l == name) {
            return Err(ShillError::Runtime(format!("cyclic require of {name:?}")));
        }
        let source = self
            .scripts
            .get(name)
            .cloned()
            .ok_or_else(|| ShillError::Runtime(format!("unknown module {name:?}")))?;
        let script = parse_script(&source)?;
        if script.dialect != Dialect::CapSafe {
            return Err(ShillError::Runtime(format!(
                "cannot require {name:?}: only capability-safe scripts may be imported"
            )));
        }
        self.loading.push(name.to_string());
        let env = self.base_env(Dialect::CapSafe);
        let result = self.eval_script_in(&script, name, &env);
        self.loading.pop();
        let (exports, _) = result?;
        let m = Rc::new(exports);
        self.module_cache.insert(name.to_string(), Rc::clone(&m));
        Ok(m)
    }

    /// The initial environment for a dialect: builtins, plus ambient-only
    /// bindings for ambient scripts.
    pub fn base_env(&mut self, dialect: Dialect) -> Env {
        let env = Env::root();
        builtins::install_common(&env);
        if dialect == Dialect::Ambient {
            builtins::install_ambient(self, &env);
        }
        env
    }

    // --- statements / expressions ---------------------------------------------

    pub fn eval_stmt(&mut self, env: &Env, stmt: &Stmt) -> EvalResult {
        match stmt {
            Stmt::Def { name, expr, .. } => {
                let v = self.eval_expr(env, expr)?;
                // Name closures after their binding for blame messages.
                if let Value::Closure(c) = &v {
                    if c.name.borrow().is_empty() {
                        *c.name.borrow_mut() = name.clone();
                    }
                }
                env.define(name, v)?;
                Ok(Value::Void)
            }
            Stmt::Expr(e, semi) => {
                let v = self.eval_expr(env, e)?;
                // A `;`-terminated statement is evaluated for effect only;
                // this is what makes `-> void` contracts satisfiable by
                // bodies like `wrapper(args, stdout = out);` (Figure 4).
                Ok(if *semi { Value::Void } else { v })
            }
        }
    }

    fn eval_block(&mut self, env: &Env, stmts: &[Stmt]) -> EvalResult {
        let scope = env.child();
        let mut last = Value::Void;
        for s in stmts {
            last = self.eval_stmt(&scope, s)?;
        }
        Ok(last)
    }

    pub fn eval_expr(&mut self, env: &Env, expr: &Expr) -> EvalResult {
        self.enter()?;
        let r = self.eval_expr_inner(env, expr);
        self.leave();
        r
    }

    fn eval_expr_inner(&mut self, env: &Env, expr: &Expr) -> EvalResult {
        match expr {
            Expr::Void(_) => Ok(Value::Void),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Num(n, _) => Ok(Value::Num(*n)),
            Expr::Str(s, _) => Ok(Value::str(s.clone())),
            Expr::Var(name, pos) => env
                .lookup(name)
                .ok_or_else(|| ShillError::Runtime(format!("unbound variable `{name}` at {pos}"))),
            Expr::List(items, _) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval_expr(env, e)?);
                }
                Ok(Value::list(out))
            }
            Expr::Fun { params, body, .. } => Ok(Value::Closure(Rc::new(Closure {
                name: std::cell::RefCell::new(String::new()),
                params: params.clone(),
                body: Rc::clone(body),
                env: env.clone(),
            }))),
            Expr::Contract(c, _) => Ok(Value::Contract(Rc::new((**c).clone()))),
            Expr::Async(inner, _) => {
                // Evaluate the operand with deferral armed: I/O builtins
                // enqueue fragments into the accumulator and hand back
                // pending futures. Anything else the operand produces is
                // wrapped as an already-ready future, so
                // `await (async e) == e` uniformly.
                if self.deferred.is_none() {
                    self.deferred = Some(DeferredAcc::new());
                }
                self.async_depth += 1;
                let r = self.eval_expr(env, inner);
                self.async_depth -= 1;
                Ok(match r? {
                    f @ Value::Future(_) => f,
                    other => Value::Future(FutureCell::ready(other)),
                })
            }
            Expr::Await(inner, _) => {
                let v = self.eval_expr(env, inner)?;
                match v {
                    Value::Future(f) => {
                        // A pending future always belongs to the single
                        // live accumulator; forcing it flushes everything
                        // accumulated so far in one submission.
                        if f.is_pending() {
                            self.flush_deferred();
                        }
                        Ok(f.ready_value().unwrap_or(Value::Void))
                    }
                    // Awaiting a non-future is the identity, so scripts
                    // can sprinkle `await` over values of either shape.
                    other => Ok(other),
                }
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.eval_expr(env, expr)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.truthy()?)),
                    UnOp::Neg => match v {
                        Value::Num(n) => Ok(Value::Num(-n)),
                        other => Err(ShillError::Runtime(format!(
                            "cannot negate {}",
                            other.type_name()
                        ))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(env, *op, lhs, rhs),
            Expr::If {
                cond, then, els, ..
            } => {
                let c = self.eval_expr(env, cond)?.truthy()?;
                if c {
                    self.eval_block(env, then)
                } else if let Some(e) = els {
                    self.eval_block(env, e)
                } else {
                    Ok(Value::Void)
                }
            }
            Expr::For {
                var, iter, body, ..
            } => {
                let it = self.eval_expr(env, iter)?;
                let items: Vec<Value> = match it {
                    Value::List(l) => l.iter().cloned().collect(),
                    other => {
                        return Err(ShillError::Runtime(format!(
                            "for-loop expects a list, got {}",
                            other.type_name()
                        )))
                    }
                };
                for item in items {
                    let scope = env.child();
                    scope.define(var, item)?;
                    self.eval_block(&scope, body)?;
                }
                Ok(Value::Void)
            }
            Expr::Call {
                callee,
                args,
                kwargs,
                pos,
            } => {
                let f = self.eval_expr(env, callee)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr(env, a)?);
                }
                let mut kw = Vec::with_capacity(kwargs.len());
                for (n, e) in kwargs {
                    kw.push((n.clone(), self.eval_expr(env, e)?));
                }
                self.apply(f, argv, kw).map_err(|e| match e {
                    ShillError::Runtime(m) => ShillError::Runtime(format!("{m} (call at {pos})")),
                    other => other,
                })
            }
        }
    }

    fn eval_binary(&mut self, env: &Env, op: BinOp, lhs: &Expr, rhs: &Expr) -> EvalResult {
        // Short-circuit logicals.
        match op {
            BinOp::And => {
                let l = self.eval_expr(env, lhs)?;
                if !l.truthy()? {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval_expr(env, rhs)?;
                return Ok(Value::Bool(r.truthy()?));
            }
            BinOp::Or => {
                let l = self.eval_expr(env, lhs)?;
                if l.truthy()? {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_expr(env, rhs)?;
                return Ok(Value::Bool(r.truthy()?));
            }
            _ => {}
        }
        let l = self.eval_expr(env, lhs)?;
        let r = self.eval_expr(env, rhs)?;
        let num = |v: &Value| -> Result<i64, ShillError> {
            match v {
                Value::Num(n) => Ok(*n),
                other => Err(ShillError::Runtime(format!(
                    "arithmetic on {}",
                    other.type_name()
                ))),
            }
        };
        match op {
            BinOp::Eq => Ok(Value::Bool(l.equals(&r))),
            BinOp::Ne => Ok(Value::Bool(!l.equals(&r))),
            BinOp::Lt => Ok(Value::Bool(num(&l)? < num(&r)?)),
            BinOp::Le => Ok(Value::Bool(num(&l)? <= num(&r)?)),
            BinOp::Gt => Ok(Value::Bool(num(&l)? > num(&r)?)),
            BinOp::Ge => Ok(Value::Bool(num(&l)? >= num(&r)?)),
            BinOp::Add => Ok(Value::Num(num(&l)?.wrapping_add(num(&r)?))),
            BinOp::Sub => Ok(Value::Num(num(&l)?.wrapping_sub(num(&r)?))),
            BinOp::Mul => Ok(Value::Num(num(&l)?.wrapping_mul(num(&r)?))),
            BinOp::Concat => match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
                (Value::List(a), Value::List(b)) => {
                    let mut out: Vec<Value> = a.iter().cloned().collect();
                    out.extend(b.iter().cloned());
                    Ok(Value::list(out))
                }
                _ => Err(ShillError::Runtime(format!(
                    "++ expects two strings or two lists, got {} and {}",
                    l.type_name(),
                    r.type_name()
                ))),
            },
            BinOp::And | BinOp::Or => unreachable!(),
        }
    }

    // --- application ----------------------------------------------------------

    pub fn apply(
        &mut self,
        f: Value,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
    ) -> EvalResult {
        self.enter()?;
        let r = self.apply_inner(f, args, kwargs);
        self.leave();
        r
    }

    fn apply_inner(
        &mut self,
        f: Value,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
    ) -> EvalResult {
        match f {
            Value::Closure(c) => {
                if args.len() != c.params.len() {
                    return Err(ShillError::Runtime(format!(
                        "{} expects {} arguments, got {}",
                        c.name.borrow(),
                        c.params.len(),
                        args.len()
                    )));
                }
                if !kwargs.is_empty() {
                    return Err(ShillError::Runtime(format!(
                        "{} does not accept keyword arguments",
                        c.name.borrow()
                    )));
                }
                let scope = c.env.child();
                for (p, v) in c.params.iter().zip(args) {
                    scope.define(p, v)?;
                }
                self.eval_block(&scope, &c.body)
            }
            Value::Contracted(cf) => self.apply_contracted(&cf, args, kwargs),
            Value::Native(nf) => {
                let f = &nf.f;
                // Native functions are Rust closures that may re-enter the
                // interpreter; clone the Rc to end the borrow.
                let nf2 = Rc::clone(&nf);
                let _ = f;
                (nf2.f)(self, args, kwargs)
            }
            Value::Builtin(name) => builtins::call_builtin(self, name, args, kwargs),
            other => Err(ShillError::Runtime(format!(
                "cannot call a {}",
                other.type_name()
            ))),
        }
    }

    fn apply_contracted(
        &mut self,
        cf: &ContractedFn,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
    ) -> EvalResult {
        self.profile.contract_applications += 1;
        let fc = &cf.contract;
        if args.len() != fc.args.len() {
            return Err(ShillError::Violation(Violation::provider(
                &cf.blame,
                format!("expected {} arguments, got {}", fc.args.len(), args.len()),
            )));
        }
        // Mint a fresh brand per call for polymorphic contracts (§2.4.2).
        let mut seals = cf.seals.clone();
        if let Some((var, bound)) = &cf.forall {
            let brand = SealBrand::mint(var.clone(), *bound, Arc::clone(&cf.blame));
            seals.push((var.clone(), brand));
        }
        // Precondition: wrap each argument. The argument's *provider* is the
        // caller; violations of flat checks blame the caller side. Domain
        // polarity is `cf.into_body`: values entering the guarded body seal.
        // Named contracts resolve in the contract's defining environment.
        let env = cf.cenv.clone();
        let mut wrapped_args = Vec::with_capacity(args.len());
        for (v, (argname, c)) in args.into_iter().zip(fc.args.iter()) {
            let blame = Blame::new(
                cf.blame.provider.clone(),
                cf.blame.consumer.clone(),
                format!("{argname} : {}", contract_to_string(c)),
            );
            wrapped_args.push(self.apply_contract(v, c, blame, &seals, &env, cf.into_body)?);
        }
        // Keyword arguments: check those with declared contracts.
        let mut wrapped_kwargs = Vec::with_capacity(kwargs.len());
        for (name, v) in kwargs {
            let declared = fc.kwargs.iter().find(|(n, _)| *n == name).map(|(_, c)| c);
            match declared {
                Some(c) => {
                    let blame = Blame::new(
                        cf.blame.provider.clone(),
                        cf.blame.consumer.clone(),
                        format!("{name} = : {}", contract_to_string(c)),
                    );
                    wrapped_kwargs.push((
                        name,
                        self.apply_contract(v, c, blame, &seals, &env, cf.into_body)?,
                    ));
                }
                None => wrapped_kwargs.push((name, v)),
            }
        }
        let result = self.apply(cf.inner.clone(), wrapped_args, wrapped_kwargs)?;
        // Postcondition: the function is the provider of the result; range
        // polarity is the flip of the domain's.
        let blame = Blame::new(
            cf.blame.consumer.clone(),
            cf.blame.provider.clone(),
            contract_to_string(&fc.result),
        );
        self.apply_contract(result, &fc.result, blame, &seals, &env, !cf.into_body)
    }

    // --- contract application ---------------------------------------------------

    /// Check whether a value passes `c`'s first-order (immediate) test —
    /// used to select a disjunct of an `Or` contract.
    #[allow(clippy::only_used_in_recursion)]
    fn first_order(
        &mut self,
        v: &Value,
        c: &ContractExpr,
        seals: &[(String, Arc<SealBrand>)],
        env: &Env,
    ) -> bool {
        // See through seals for kind queries.
        let v = match v {
            Value::Sealed { inner, .. } => inner,
            other => other,
        };
        match c {
            ContractExpr::IsFile | ContractExpr::File(_) => {
                matches!(v, Value::Cap(cap) if cap.is_file())
            }
            ContractExpr::IsDir | ContractExpr::Dir(_) => {
                matches!(v, Value::Cap(cap) if cap.is_dir())
            }
            ContractExpr::IsPipe => {
                matches!(v, Value::Cap(cap) if cap.kind() == shill_cap::CapKind::PipeEnd)
            }
            ContractExpr::Socket(_) => {
                matches!(v, Value::Cap(cap) if cap.kind() == shill_cap::CapKind::Socket)
            }
            ContractExpr::PipeFactory => {
                matches!(v, Value::Cap(cap) if cap.kind() == shill_cap::CapKind::PipeFactory)
            }
            ContractExpr::SocketFactory(_) => {
                matches!(v, Value::Cap(cap) if cap.kind() == shill_cap::CapKind::SocketFactory)
            }
            ContractExpr::IsBool => matches!(v, Value::Bool(_)),
            ContractExpr::IsNum => matches!(v, Value::Num(_)),
            ContractExpr::IsString => matches!(v, Value::Str(_)),
            ContractExpr::IsList => matches!(v, Value::List(_)),
            ContractExpr::IsFun | ContractExpr::Func(_) | ContractExpr::Forall { .. } => {
                v.is_callable()
            }
            ContractExpr::Void => matches!(v, Value::Void),
            ContractExpr::Any => true,
            ContractExpr::NativeWallet => {
                matches!(v, Value::Wallet(w) if w.kind == "native")
            }
            ContractExpr::Wallet => matches!(v, Value::Wallet(_)),
            ContractExpr::Or(cs) => cs.iter().any(|c| self.first_order(v, c, seals, env)),
            ContractExpr::And(cs) => cs.iter().all(|c| self.first_order(v, c, seals, env)),
            ContractExpr::Var(_) => matches!(v, Value::Cap(_) | Value::Sealed { .. }),
            ContractExpr::Named(name) => match env.lookup(name) {
                Some(Value::Contract(inner)) => self.first_order(v, &inner, seals, env),
                Some(f) if f.is_callable() => true, // predicate: decided at apply
                _ => false,
            },
            ContractExpr::Predicate(_) => true,
        }
    }

    /// Apply a contract to a value: flat checks verify, capability contracts
    /// wrap with guards, function contracts wrap with [`ContractedFn`],
    /// `forall` variables seal (`positive`) or unseal (`!positive`).
    pub fn apply_contract(
        &mut self,
        v: Value,
        c: &ContractExpr,
        blame: Arc<Blame>,
        seals: &[(String, Arc<SealBrand>)],
        env: &Env,
        positive: bool,
    ) -> EvalResult {
        self.profile.contract_applications += 1;
        let fail =
            |msg: String| -> ShillError { ShillError::Violation(Violation::provider(&blame, msg)) };
        match c {
            ContractExpr::Any => Ok(v),
            ContractExpr::Void => match v {
                Value::Void => Ok(Value::Void),
                other => Err(fail(format!("expected void, got {}", other.type_name()))),
            },
            ContractExpr::IsBool
            | ContractExpr::IsNum
            | ContractExpr::IsString
            | ContractExpr::IsList
            | ContractExpr::IsFun
            | ContractExpr::IsFile
            | ContractExpr::IsDir
            | ContractExpr::IsPipe => {
                if self.first_order(&v, c, seals, env) {
                    Ok(v)
                } else {
                    Err(fail(format!(
                        "value of type {} does not satisfy {}",
                        v.type_name(),
                        contract_to_string(c)
                    )))
                }
            }
            ContractExpr::File(privs) | ContractExpr::Dir(privs) | ContractExpr::Socket(privs) => {
                if !self.first_order(&v, c, seals, env) {
                    return Err(fail(format!(
                        "value of type {} does not satisfy {}",
                        v.type_name(),
                        contract_to_string(c)
                    )));
                }
                match v {
                    Value::Cap(cap) => {
                        self.profile.guard_checks += 1;
                        Ok(Value::Cap(Rc::new(
                            cap.restrict(Arc::new(privs.clone()), Arc::clone(&blame)),
                        )))
                    }
                    Value::Sealed { .. } => Err(fail(
                        "cannot apply a capability contract to a sealed value".into(),
                    )),
                    _ => unreachable!("first_order checked"),
                }
            }
            ContractExpr::PipeFactory => {
                if self.first_order(&v, c, seals, env) {
                    Ok(v)
                } else {
                    Err(fail("expected a pipe factory".into()))
                }
            }
            ContractExpr::SocketFactory(privs) => match v {
                Value::Cap(cap) if cap.kind() == shill_cap::CapKind::SocketFactory => {
                    let mut cp = shill_cap::CapPrivs::of(*privs);
                    cp.privs.insert(shill_cap::Priv::SockCreate);
                    Ok(Value::Cap(Rc::new(
                        cap.restrict(Arc::new(cp), Arc::clone(&blame)),
                    )))
                }
                other => Err(fail(format!(
                    "expected a socket factory, got {}",
                    other.type_name()
                ))),
            },
            ContractExpr::NativeWallet | ContractExpr::Wallet => {
                if self.first_order(&v, c, seals, env) {
                    Ok(v)
                } else {
                    Err(fail(format!(
                        "expected a {} wallet, got {}",
                        if matches!(c, ContractExpr::NativeWallet) {
                            "native"
                        } else {
                            ""
                        },
                        v.type_name()
                    )))
                }
            }
            ContractExpr::And(cs) => {
                let mut out = v;
                for c in cs {
                    out = self.apply_contract(out, c, Arc::clone(&blame), seals, env, positive)?;
                }
                Ok(out)
            }
            ContractExpr::Or(cs) => {
                for branch in cs {
                    if self.first_order(&v, branch, seals, env) {
                        return self.apply_contract(v, branch, blame, seals, env, positive);
                    }
                }
                Err(fail(format!(
                    "value of type {} matches no branch of {}",
                    v.type_name(),
                    contract_to_string(c)
                )))
            }
            ContractExpr::Func(fc) => {
                if !v.is_callable() {
                    return Err(fail(format!("expected a function, got {}", v.type_name())));
                }
                // Polarity flips at each function-contract nesting: a
                // function received as an *argument* (positive context) is
                // called by the body, sending values back out — so its
                // wrapper's domain unseals, and the contractual parties
                // swap (standard higher-order blame).
                Ok(Value::Contracted(Rc::new(ContractedFn {
                    inner: v,
                    contract: Rc::clone(fc),
                    forall: None,
                    blame: if positive { blame.swapped() } else { blame },
                    seals: seals.to_vec(),
                    into_body: !positive,
                    cenv: env.clone(),
                })))
            }
            ContractExpr::Forall { var, bound, body } => {
                let ContractExpr::Func(fc) = &**body else {
                    return Err(fail("forall must wrap a function contract".into()));
                };
                if !v.is_callable() {
                    return Err(fail(format!("expected a function, got {}", v.type_name())));
                }
                Ok(Value::Contracted(Rc::new(ContractedFn {
                    inner: v,
                    contract: Rc::clone(fc),
                    forall: Some((var.clone(), *bound)),
                    blame: if positive { blame.swapped() } else { blame },
                    seals: seals.to_vec(),
                    into_body: !positive,
                    cenv: env.clone(),
                })))
            }
            ContractExpr::Var(name) => {
                let Some((_, brand)) = seals.iter().rev().find(|(n, _)| n == name) else {
                    return Err(fail(format!("unbound contract variable {name}")));
                };
                if positive {
                    // Value flows INTO the guarded component: seal it.
                    match &v {
                        Value::Cap(_) | Value::Sealed { .. } => Ok(Value::Sealed {
                            brand: Arc::clone(brand),
                            inner: Rc::new(v),
                        }),
                        other => Err(fail(format!(
                            "contract variable {name} expects a capability, got {}",
                            other.type_name()
                        ))),
                    }
                } else {
                    // Value flows OUT to a context that bound X: unseal.
                    match v {
                        Value::Sealed { brand: b, inner } if b.same(brand) => Ok((*inner).clone()),
                        Value::Sealed { brand: b, .. } => {
                            Err(ShillError::Violation(Violation::consumer(
                                &blame,
                                format!(
                                    "sealed value of {} leaked into context expecting {}",
                                    b.var, name
                                ),
                            )))
                        }
                        other => Ok(other), // unsealed values pass through
                    }
                }
            }
            ContractExpr::Named(name) => match env.lookup(name) {
                Some(Value::Contract(inner)) => {
                    self.apply_contract(v, &inner, blame, seals, env, positive)
                }
                Some(f) if f.is_callable() => {
                    // User-defined predicate (§2.4.2: "user-defined
                    // predicates written in SHILL itself").
                    let verdict = self.apply(f, vec![v.clone()], vec![])?;
                    match verdict {
                        Value::Bool(true) => Ok(v),
                        Value::Bool(false) => {
                            Err(fail(format!("predicate `{name}` rejected the value")))
                        }
                        other => Err(ShillError::Runtime(format!(
                            "predicate `{name}` returned {}, expected a boolean",
                            other.type_name()
                        ))),
                    }
                }
                _ => Err(ShillError::Runtime(format!("unknown contract `{name}`"))),
            },
            ContractExpr::Predicate(name) => {
                let f = env
                    .lookup(name)
                    .ok_or_else(|| ShillError::Runtime(format!("unknown predicate `{name}`")))?;
                let verdict = self.apply(f, vec![v.clone()], vec![])?;
                match verdict {
                    Value::Bool(true) => Ok(v),
                    _ => Err(fail(format!("predicate `{name}` rejected the value"))),
                }
            }
        }
    }

    // --- helpers shared with builtins ------------------------------------------

    /// Unwrap a (possibly multiply) sealed capability, checking that every
    /// brand's bound allows `needed`. Returns the inner guarded capability
    /// and the brand chain for re-sealing derived capabilities.
    pub fn unseal_for(
        &mut self,
        v: &Value,
        needed: shill_cap::Priv,
    ) -> Result<(Rc<GuardedCap>, Vec<Arc<SealBrand>>), ShillError> {
        let mut brands = Vec::new();
        let mut cur = v.clone();
        loop {
            match cur {
                Value::Sealed { brand, inner } => {
                    if !brand.bound.contains(needed) {
                        return Err(ShillError::Violation(Violation::consumer(
                            &brand.blame,
                            format!(
                                "operation {needed} is outside the bound of contract variable {}",
                                brand.var
                            ),
                        )));
                    }
                    brands.push(brand);
                    cur = (*inner).clone();
                }
                Value::Cap(cap) => {
                    self.profile.guard_checks += 1;
                    return Ok((cap, brands));
                }
                other => {
                    return Err(ShillError::Runtime(format!(
                        "expected a capability, got {}",
                        other.type_name()
                    )))
                }
            }
        }
    }

    /// Re-seal a derived capability with a brand chain (outermost last).
    pub fn reseal(mut v: Value, brands: Vec<Arc<SealBrand>>) -> Value {
        for brand in brands.into_iter().rev() {
            v = Value::Sealed {
                brand,
                inner: Rc::new(v),
            };
        }
        v
    }

    /// The socket-factory privileges of a capability (used by `exec`).
    pub fn socket_factory_privs(cap: &GuardedCap) -> PrivSet {
        let eff = cap.effective_privs();
        let mut out = PrivSet::EMPTY;
        for p in shill_cap::privs::socket_privs() {
            if eff.allows(*p) {
                out.insert(*p);
            }
        }
        out
    }
}
