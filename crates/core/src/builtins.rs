//! Built-in functions: the capability-consuming wrappers around system
//! calls (§2.1), list/string helpers, and the `exec` sandbox launcher
//! (§2.3).

use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use shill_cap::{CapKind, CapPrivs, Priv, PrivSet, RawCap};
use shill_contracts::{CapError, GuardedCap};
use shill_kernel::{BatchEntry, BatchOut, FdObject, ObjId, ScheduledRun, SyscallBatch, Ulimits};
use shill_sandbox::{Grant, SandboxSpec};
use shill_vfs::{Errno, Mode, SysResult};

use crate::ast::ContractExpr;
use crate::env::Env;
use crate::eval::Interp;
use crate::value::{EvalResult, ShillError, Value, Wallet};

/// Builtins available in both dialects.
const COMMON: &[&str] = &[
    "is_file",
    "is_dir",
    "is_pipe",
    "is_syserror",
    "is_bool",
    "is_num",
    "is_string",
    "is_list",
    "is_void",
    "is_fun",
    "has_ext",
    "path",
    "read",
    "write",
    "append",
    "await_all",
    "select",
    "stream_read",
    "contents",
    "lookup",
    "create_file",
    "create_dir",
    "unlink_file",
    "unlink_dir",
    "read_symlink",
    "link",
    "create_pipe",
    "create_socket",
    "sock_connect",
    "sock_send",
    "sock_recv",
    "exec",
    "length",
    "nth",
    "split",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "to_string",
    "display",
    "syserror",
    "telemetry",
    "wallet_get",
    "wallet_keys",
    "wallet_set",
    "wallet_add_dep",
    "stat_size",
];

/// Install common builtins and standard contract abbreviations.
pub fn install_common(env: &Env) {
    for name in COMMON {
        env.define_internal(name, Value::Builtin(name));
    }
    // §3.1.4: "a programmer can specify the contract `readonly` rather than
    // the more verbose dir(...) ∨ file(...)".
    let readonly = ContractExpr::Or(vec![
        ContractExpr::Dir(CapPrivs::of(PrivSet::readonly_dir())),
        ContractExpr::File(CapPrivs::of(PrivSet::readonly_file())),
    ]);
    env.define_internal("readonly", Value::Contract(Rc::new(readonly)));
    let writeable = ContractExpr::File(CapPrivs::of(PrivSet::of(&[
        Priv::Write,
        Priv::Append,
        Priv::Truncate,
        Priv::Stat,
        Priv::Path,
    ])));
    env.define_internal("writeable", Value::Contract(Rc::new(writeable)));
    let appendonly = ContractExpr::File(CapPrivs::of(PrivSet::of(&[Priv::Append, Priv::Path])));
    env.define_internal("appendonly", Value::Contract(Rc::new(appendonly)));
}

/// Install ambient-only bindings: path-based capability creation, stdio
/// capabilities, the factories, and wallet creation (§2.5).
pub fn install_ambient(interp: &mut Interp, env: &Env) {
    for name in ["open_file", "open_dir", "create_wallet"] {
        env.define_internal(name, Value::Builtin(name));
    }
    env.define_internal(
        "pipe_factory",
        Value::Cap(Rc::new(GuardedCap::unguarded(RawCap::pipe_factory()))),
    );
    env.define_internal(
        "socket_factory",
        Value::Cap(Rc::new(GuardedCap::unguarded(RawCap::socket_factory()))),
    );
    // stdio: capabilities for the controlling terminal.
    for (name, dev) in [
        ("stdin", "/dev/tty"),
        ("stdout", "/dev/tty"),
        ("stderr", "/dev/tty"),
    ] {
        if let Ok(cap) = RawCap::open_path(&mut interp.kernel, interp.pid, dev) {
            env.define_internal(name, Value::Cap(Rc::new(GuardedCap::unguarded(cap))));
        }
    }
}

fn arity(args: &[Value], n: usize, name: &str) -> Result<(), ShillError> {
    if args.len() != n {
        return Err(ShillError::Runtime(format!(
            "{name} expects {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

fn want_str(v: &Value, what: &str) -> Result<String, ShillError> {
    match v {
        Value::Str(s) => Ok((**s).clone()),
        other => Err(ShillError::Runtime(format!(
            "{what} must be a string, got {}",
            other.type_name()
        ))),
    }
}

/// Convert a capability-op result: system errors become `SysErr` *values*
/// (observable via `is_syserror`), contract violations abort.
fn cap_result(r: Result<Value, CapError>) -> EvalResult {
    match r {
        Ok(v) => Ok(v),
        Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
        Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
    }
}

/// Dispatch a builtin call.
pub fn call_builtin(
    interp: &mut Interp,
    name: &str,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> EvalResult {
    if name != "exec" && !kwargs.is_empty() {
        return Err(ShillError::Runtime(format!(
            "{name} does not accept keyword arguments"
        )));
    }
    match name {
        // --- type predicates ------------------------------------------------
        "is_file" => {
            arity(&args, 1, name)?;
            let inner = strip_seals(&args[0]);
            Ok(Value::Bool(matches!(inner, Value::Cap(c) if c.is_file())))
        }
        "is_dir" => {
            arity(&args, 1, name)?;
            let inner = strip_seals(&args[0]);
            Ok(Value::Bool(matches!(inner, Value::Cap(c) if c.is_dir())))
        }
        "is_pipe" => {
            arity(&args, 1, name)?;
            let inner = strip_seals(&args[0]);
            Ok(Value::Bool(
                matches!(inner, Value::Cap(c) if c.kind() == CapKind::PipeEnd),
            ))
        }
        "is_syserror" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::SysErr(_))))
        }
        "is_bool" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::Bool(_))))
        }
        "is_num" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::Num(_))))
        }
        "is_string" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::Str(_))))
        }
        "is_list" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::List(_))))
        }
        "is_void" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(matches!(args[0], Value::Void)))
        }
        "is_fun" => {
            arity(&args, 1, name)?;
            Ok(Value::Bool(args[0].is_callable()))
        }

        // --- capability queries ------------------------------------------------
        "path" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Path)?;
            let pid = interp.pid;
            cap_result(cap.path(&mut interp.kernel, pid).map(Value::str))
        }
        "has_ext" => {
            arity(&args, 2, name)?;
            let ext = want_str(&args[1], "extension")?;
            let p = match &args[0] {
                Value::Str(s) => (**s).clone(),
                v => {
                    let (cap, _brands) = interp.unseal_for(v, Priv::Path)?;
                    let pid = interp.pid;
                    match cap.path(&mut interp.kernel, pid) {
                        Ok(p) => p,
                        Err(CapError::Sys(_)) => return Ok(Value::Bool(false)),
                        Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
                    }
                }
            };
            Ok(Value::Bool(p.ends_with(&format!(".{ext}"))))
        }
        "stat_size" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Stat)?;
            let pid = interp.pid;
            cap_result(
                cap.stat(&mut interp.kernel, pid)
                    .map(|st| Value::Num(st.size as i64)),
            )
        }

        // --- file operations ------------------------------------------------
        // `read`/`write` route through the batch-aware I/O layer
        // (`crate::batchio`): same guard checks and per-chunk MAC
        // interposition, one kernel crossing per window instead of one per
        // chunk.
        "read" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Read)?;
            let pid = interp.pid;
            // Inside `async`, a batchable read joins the accumulated batch
            // and hands back a future; non-batchable capabilities
            // (pipes/sockets) keep the eager path — the `Async` wrapper
            // turns their result into a ready future.
            if interp.async_depth > 0 {
                if let Some(acc) = interp.deferred.as_mut() {
                    match acc.defer_read(&cap) {
                        Ok(Some(fut)) => return Ok(Value::Future(fut)),
                        Ok(None) => {}
                        Err(e) => return cap_result(Err(e)),
                    }
                }
            }
            cap_result(
                crate::batchio::cap_read_all(&mut interp.kernel, pid, &cap)
                    .map(|d| Value::str(String::from_utf8_lossy(&d).into_owned())),
            )
        }
        "write" => {
            arity(&args, 2, name)?;
            let data = want_str(&args[1], "data")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Write)?;
            let pid = interp.pid;
            if interp.async_depth > 0 {
                if let Some(acc) = interp.deferred.as_mut() {
                    match acc.defer_write(&cap, data.clone().into_bytes()) {
                        Ok(Some(fut)) => return Ok(Value::Future(fut)),
                        Ok(None) => {}
                        Err(e) => return cap_result(Err(e)),
                    }
                }
            }
            cap_result(
                crate::batchio::cap_write_all(&mut interp.kernel, pid, &cap, data.into_bytes())
                    .map(|_| Value::Void),
            )
        }
        // --- completion-model surface (deferred execution) -------------------
        "await_all" => {
            arity(&args, 1, name)?;
            let items: Vec<Value> = match &args[0] {
                Value::List(l) => l.iter().cloned().collect(),
                other => vec![other.clone()],
            };
            // One flush resolves every listed future (and any other
            // accumulated fragment) in a single scheduled submission.
            if items
                .iter()
                .any(|v| matches!(v, Value::Future(f) if f.is_pending()))
            {
                interp.flush_deferred();
            }
            Ok(Value::list(
                items
                    .into_iter()
                    .map(|v| match v {
                        Value::Future(f) => f.ready_value().unwrap_or(Value::Void),
                        other => other,
                    })
                    .collect(),
            ))
        }
        "select" => builtin_select(interp, args),
        "stream_read" => builtin_stream_read(interp, args),
        "append" => {
            arity(&args, 2, name)?;
            let data = want_str(&args[1], "data")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Append)?;
            let pid = interp.pid;
            cap_result(
                cap.append(&mut interp.kernel, pid, data.as_bytes())
                    .map(|_| Value::Void),
            )
        }

        // --- directory operations ----------------------------------------------
        "contents" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::Contents)?;
            let pid = interp.pid;
            cap_result(
                cap.contents(&mut interp.kernel, pid)
                    .map(|names| Value::list(names.into_iter().map(Value::str).collect())),
            )
        }
        "lookup" => {
            arity(&args, 2, name)?;
            let child_name = want_str(&args[1], "name")?;
            let (cap, brands) = interp.unseal_for(&args[0], Priv::Lookup)?;
            let pid = interp.pid;
            match cap.lookup(&mut interp.kernel, pid, &child_name) {
                Ok(derived) => Ok(Interp::reseal(Value::Cap(Rc::new(derived)), brands)),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }
        "create_file" => {
            arity(&args, 2, name)?;
            let fname = want_str(&args[1], "name")?;
            let (cap, brands) = interp.unseal_for(&args[0], Priv::CreateFile)?;
            let pid = interp.pid;
            match cap.create_file(&mut interp.kernel, pid, &fname, Mode::FILE_DEFAULT) {
                Ok(derived) => Ok(Interp::reseal(Value::Cap(Rc::new(derived)), brands)),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }
        "create_dir" => {
            arity(&args, 2, name)?;
            let dname = want_str(&args[1], "name")?;
            let (cap, brands) = interp.unseal_for(&args[0], Priv::CreateDir)?;
            let pid = interp.pid;
            match cap.create_dir(&mut interp.kernel, pid, &dname, Mode::DIR_DEFAULT) {
                Ok(derived) => Ok(Interp::reseal(Value::Cap(Rc::new(derived)), brands)),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }
        "unlink_file" => {
            arity(&args, 2, name)?;
            let n = want_str(&args[1], "name")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::UnlinkFile)?;
            let pid = interp.pid;
            cap_result(
                cap.unlink_file(&mut interp.kernel, pid, &n)
                    .map(|_| Value::Void),
            )
        }
        "unlink_dir" => {
            arity(&args, 2, name)?;
            let n = want_str(&args[1], "name")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::UnlinkDir)?;
            let pid = interp.pid;
            cap_result(
                cap.unlink_dir(&mut interp.kernel, pid, &n)
                    .map(|_| Value::Void),
            )
        }
        "read_symlink" => {
            arity(&args, 2, name)?;
            let n = want_str(&args[1], "name")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::ReadSymlink)?;
            let pid = interp.pid;
            cap_result(
                cap.read_symlink(&mut interp.kernel, pid, &n)
                    .map(Value::str),
            )
        }
        "link" => {
            arity(&args, 3, name)?;
            let n = want_str(&args[2], "name")?;
            let (dir, _b1) = interp.unseal_for(&args[0], Priv::Link)?;
            let (file, _b2) = interp.unseal_for(&args[1], Priv::Path)?;
            let pid = interp.pid;
            cap_result(
                dir.link(&mut interp.kernel, pid, &file, &n)
                    .map(|_| Value::Void),
            )
        }
        "create_pipe" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::PipeCreate)?;
            let pid = interp.pid;
            match cap.create_pipe(&mut interp.kernel, pid) {
                Ok((r, w)) => Ok(Value::list(vec![
                    Value::Cap(Rc::new(r)),
                    Value::Cap(Rc::new(w)),
                ])),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }

        // --- sockets (paper §3.1.1's suggested extension: "adding built-in
        // functions for socket operations to the language") ------------------
        "create_socket" => {
            arity(&args, 2, name)?;
            let domain = match want_str(&args[1], "domain")?.as_str() {
                "inet" => shill_kernel::SockDomain::Inet,
                "unix" => shill_kernel::SockDomain::Unix,
                other => {
                    return Err(ShillError::Runtime(format!(
                        "unknown socket domain {other:?} (inet|unix)"
                    )))
                }
            };
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::SockCreate)?;
            let pid = interp.pid;
            match cap.create_socket(&mut interp.kernel, pid, domain) {
                Ok(sock) => Ok(Value::Cap(Rc::new(sock))),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }
        "sock_connect" => {
            arity(&args, 2, name)?;
            let addr = want_str(&args[1], "address")?;
            let addr = match addr.rsplit_once(':') {
                Some((host, port)) => shill_kernel::SockAddr::Inet {
                    host: host.to_string(),
                    port: port.parse().map_err(|_| {
                        ShillError::Runtime(format!("bad port in address {addr:?}"))
                    })?,
                },
                None => shill_kernel::SockAddr::Unix { path: addr },
            };
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::SockConnect)?;
            let pid = interp.pid;
            cap_result(
                cap.sock_connect(&mut interp.kernel, pid, addr)
                    .map(|_| Value::Void),
            )
        }
        "sock_send" => {
            arity(&args, 2, name)?;
            let data = want_str(&args[1], "data")?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::SockSend)?;
            let pid = interp.pid;
            cap_result(
                cap.sock_send(&mut interp.kernel, pid, data.as_bytes())
                    .map(|_| Value::Void),
            )
        }
        "sock_recv" => {
            arity(&args, 1, name)?;
            let (cap, _brands) = interp.unseal_for(&args[0], Priv::SockRecv)?;
            let pid = interp.pid;
            cap_result(
                cap.sock_recv(&mut interp.kernel, pid)
                    .map(|d| Value::str(String::from_utf8_lossy(&d).into_owned())),
            )
        }

        // --- exec (sandbox launcher) ------------------------------------------
        "exec" => builtin_exec(interp, args, kwargs),

        // --- lists & strings -----------------------------------------------------
        "length" => {
            arity(&args, 1, name)?;
            match &args[0] {
                Value::List(l) => Ok(Value::Num(l.len() as i64)),
                Value::Str(s) => Ok(Value::Num(s.len() as i64)),
                other => Err(ShillError::Runtime(format!(
                    "length of {}",
                    other.type_name()
                ))),
            }
        }
        "nth" => {
            arity(&args, 2, name)?;
            let i = match args[1] {
                Value::Num(n) if n >= 0 => n as usize,
                _ => {
                    return Err(ShillError::Runtime(
                        "nth index must be a non-negative number".into(),
                    ))
                }
            };
            match &args[0] {
                Value::List(l) => l
                    .get(i)
                    .cloned()
                    .ok_or_else(|| ShillError::Runtime(format!("nth: index {i} out of bounds"))),
                other => Err(ShillError::Runtime(format!("nth on {}", other.type_name()))),
            }
        }
        "split" => {
            arity(&args, 2, name)?;
            let s = want_str(&args[0], "string")?;
            let sep = want_str(&args[1], "separator")?;
            Ok(Value::list(
                s.split(&sep)
                    .filter(|p| !p.is_empty())
                    .map(Value::str)
                    .collect(),
            ))
        }
        "starts_with" => {
            arity(&args, 2, name)?;
            let s = want_str(&args[0], "string")?;
            let p = want_str(&args[1], "prefix")?;
            Ok(Value::Bool(s.starts_with(&p)))
        }
        "ends_with" => {
            arity(&args, 2, name)?;
            let s = want_str(&args[0], "string")?;
            let p = want_str(&args[1], "suffix")?;
            Ok(Value::Bool(s.ends_with(&p)))
        }
        "strip_prefix" => {
            arity(&args, 2, name)?;
            let s = want_str(&args[0], "string")?;
            let p = want_str(&args[1], "prefix")?;
            Ok(Value::str(s.strip_prefix(&p).unwrap_or(&s).to_string()))
        }
        "to_string" => {
            arity(&args, 1, name)?;
            Ok(Value::str(args[0].display()))
        }
        "display" => {
            for a in &args {
                interp.out.extend_from_slice(a.display().as_bytes());
            }
            interp.out.push(b'\n');
            Ok(Value::Void)
        }

        "syserror" => {
            // Construct a catchable system error from its errno name —
            // the value a denied syscall would have produced. Scripts
            // talking to the server front-end use this to re-raise wire
            // errors (`err EAGAIN ...`) as ordinary `is_syserror` values
            // their retry logic already handles.
            arity(&args, 1, name)?;
            let Value::Str(s) = &args[0] else {
                return Err(ShillError::Runtime(format!(
                    "syserror wants an errno name string, got {}",
                    args[0].type_name()
                )));
            };
            match Errno::from_name(s) {
                Some(e) => Ok(Value::SysErr(e)),
                None => Err(ShillError::Runtime(format!(
                    "syserror: unknown errno name {s:?}"
                ))),
            }
        }

        // --- observability ----------------------------------------------------------
        "telemetry" => {
            // Draining snapshot of the kernel's observability plane.
            // `telemetry()` renders Prometheus text exposition;
            // `telemetry("chrome")` renders a chrome://tracing JSON
            // document. Both are strings the script can write wherever
            // its capabilities allow.
            let format = match args.len() {
                0 => "text",
                1 => match &args[0] {
                    Value::Str(s) => match s.as_str() {
                        "text" | "chrome" => s.as_str(),
                        other => {
                            return Err(ShillError::Runtime(format!(
                                "telemetry: unknown format {other:?} (want \"text\" or \"chrome\")"
                            )))
                        }
                    },
                    other => {
                        return Err(ShillError::Runtime(format!(
                            "telemetry format must be a string, got {}",
                            other.type_name()
                        )))
                    }
                },
                _ => {
                    return Err(ShillError::Runtime(
                        "telemetry expects at most one argument".into(),
                    ))
                }
            };
            let snap = interp.kernel.telemetry();
            let rendered = if format == "chrome" {
                snap.render_chrome_json()
            } else {
                snap.render_text()
            };
            Ok(Value::str(rendered))
        }

        // --- wallets ----------------------------------------------------------------
        "wallet_get" => {
            arity(&args, 2, name)?;
            let key = want_str(&args[1], "key")?;
            match &args[0] {
                Value::Wallet(w) => Ok(Value::list(
                    w.map.borrow().get(&key).cloned().unwrap_or_default(),
                )),
                other => Err(ShillError::Runtime(format!(
                    "wallet_get on {}",
                    other.type_name()
                ))),
            }
        }
        "wallet_keys" => {
            arity(&args, 1, name)?;
            match &args[0] {
                Value::Wallet(w) => Ok(Value::list(
                    w.map.borrow().keys().cloned().map(Value::str).collect(),
                )),
                other => Err(ShillError::Runtime(format!(
                    "wallet_keys on {}",
                    other.type_name()
                ))),
            }
        }
        "wallet_set" => {
            arity(&args, 3, name)?;
            let key = want_str(&args[1], "key")?;
            let items = match &args[2] {
                Value::List(l) => l.iter().cloned().collect(),
                other => vec![other.clone()],
            };
            match &args[0] {
                Value::Wallet(w) => {
                    w.map.borrow_mut().insert(key, items);
                    Ok(Value::Void)
                }
                other => Err(ShillError::Runtime(format!(
                    "wallet_set on {}",
                    other.type_name()
                ))),
            }
        }
        "wallet_add_dep" => {
            // wallet_add_dep(wallet, program, cap): register an extra
            // dependency for a program (§4.1: adding /usr/local/lib/ocaml
            // as a dependency for OCaml executables).
            arity(&args, 3, name)?;
            let prog = want_str(&args[1], "program")?;
            match &args[0] {
                Value::Wallet(w) => {
                    w.map
                        .borrow_mut()
                        .entry(format!("deps:{prog}"))
                        .or_default()
                        .push(args[2].clone());
                    Ok(Value::Void)
                }
                other => Err(ShillError::Runtime(format!(
                    "wallet_add_dep on {}",
                    other.type_name()
                ))),
            }
        }

        // --- ambient-only ----------------------------------------------------------
        "open_file" | "open_dir" => {
            arity(&args, 1, name)?;
            let p = want_str(&args[0], "path")?;
            let pid = interp.pid;
            match RawCap::open_path(&mut interp.kernel, pid, &p) {
                Ok(cap) => {
                    if name == "open_dir" && !cap.is_dir() {
                        return Err(ShillError::Runtime(format!("{p} is not a directory")));
                    }
                    if name == "open_file" && cap.is_dir() {
                        return Err(ShillError::Runtime(format!("{p} is a directory")));
                    }
                    Ok(Value::Cap(Rc::new(GuardedCap::unguarded(cap))))
                }
                Err(e) => Ok(Value::SysErr(e)),
            }
        }
        "create_wallet" => {
            arity(&args, 0, name)?;
            Ok(Value::Wallet(Rc::new(Wallet {
                kind: "native".into(),
                map: std::cell::RefCell::new(Default::default()),
            })))
        }

        other => Err(ShillError::Runtime(format!("unknown builtin {other}"))),
    }
}

fn strip_seals(v: &Value) -> &Value {
    let mut cur = v;
    while let Value::Sealed { inner, .. } = cur {
        cur = inner;
    }
    cur
}

/// Effective privileges to grant a sandbox for a (possibly sealed,
/// possibly guarded) capability value.
fn grant_privs(interp: &Interp, v: &Value) -> Option<(ObjId, Arc<CapPrivs>)> {
    let _ = interp;
    let mut bound: Option<PrivSet> = None;
    let mut cur = v;
    while let Value::Sealed { brand, inner } = cur {
        bound = Some(match bound {
            Some(b) => b.intersection(brand.bound),
            None => brand.bound,
        });
        cur = inner;
    }
    let Value::Cap(cap) = cur else { return None };
    let obj = match (&cap.raw.node, &cap.raw.fd) {
        (Some(n), _) => ObjId::Vnode(*n),
        (None, Some(_fd)) => return None, // handled by caller with fd_object
        _ => return None,
    };
    let mut privs = cap.effective_privs();
    if let Some(b) = bound {
        let mut cp = (*privs).clone();
        cp.privs = cp.privs.intersection(b);
        privs = Arc::new(cp);
    }
    Some((obj, privs))
}

/// Resolve the kernel object for a capability (pipes/sockets have no vnode).
fn obj_of(interp: &Interp, cap: &GuardedCap) -> Option<ObjId> {
    if let Some(n) = cap.raw.node {
        return Some(ObjId::Vnode(n));
    }
    let fd = cap.raw.fd?;
    match interp.kernel.fd_object(interp.pid, fd).ok()? {
        FdObject::Vnode(n) => Some(ObjId::Vnode(n)),
        FdObject::Pipe(id, _) => Some(ObjId::Pipe(id)),
        FdObject::Socket(s) => Some(ObjId::Socket(s)),
    }
}

/// The `select` builtin: wait until the *first* of the listed futures
/// completes and return its index. The accumulated batch still runs to
/// completion (every deferred fragment executes and resolves — select
/// never abandons work), but the winner is decided by scheduler wave
/// order: the first list element whose slots have all completed when a
/// wave drains wins.
fn builtin_select(interp: &mut Interp, args: Vec<Value>) -> EvalResult {
    arity(&args, 1, "select")?;
    let items: Vec<Value> = match &args[0] {
        Value::List(l) => l.iter().cloned().collect(),
        other => vec![other.clone()],
    };
    if items.is_empty() {
        return Err(ShillError::Runtime(
            "select expects a non-empty list".into(),
        ));
    }
    // Any already-resolved element wins immediately, earliest index first.
    for (i, v) in items.iter().enumerate() {
        if !matches!(v, Value::Future(f) if f.is_pending()) {
            return Ok(Value::Num(i as i64));
        }
    }
    let Some(acc) = interp.deferred.take() else {
        return Err(ShillError::Runtime(
            "select: pending futures with no accumulated batch".into(),
        ));
    };
    let slot_sets: Vec<Vec<usize>> = items
        .iter()
        .map(|v| match v {
            Value::Future(f) => f.pending_slots().unwrap_or_default(),
            _ => Vec::new(),
        })
        .collect();
    let (batch, futures) = acc.into_parts();
    let n_entries = batch.entries.len();
    let pid = interp.pid;
    let mut run = match ScheduledRun::prepare(pid, batch) {
        Ok(r) => r,
        Err(e) => {
            // Submission-level failure: every future sees the same errno,
            // exactly as a failed flush would report it.
            for f in &futures {
                f.set_ready(Value::SysErr(e));
            }
            return Ok(Value::SysErr(e));
        }
    };
    let mut winner: Option<usize> = None;
    loop {
        let more = match interp.kernel.sched_run_wave(&mut run) {
            Ok(m) => m,
            Err(e) => {
                for f in &futures {
                    f.set_ready(Value::SysErr(e));
                }
                return Ok(Value::SysErr(e));
            }
        };
        if winner.is_none() {
            let done = run.completed_slots();
            winner = slot_sets
                .iter()
                .position(|set| !set.is_empty() && set.iter().all(|s| done.contains(s)));
        }
        if !more {
            break;
        }
    }
    if let Err(e) = interp.kernel.sched_audit(&run) {
        for f in &futures {
            f.set_ready(Value::SysErr(e));
        }
        return Ok(Value::SysErr(e));
    }
    let mut slots: Vec<SysResult<BatchOut>> = vec![Err(Errno::EINVAL); n_entries];
    for c in run.into_completions() {
        slots[c.slot] = c.out;
    }
    crate::batchio::resolve_futures(&mut interp.kernel, pid, &mut slots, &futures);
    Ok(Value::Num(winner.unwrap_or(0) as i64))
}

/// The `stream_read` builtin: read a file in fixed-size chunks, invoking
/// `handler(chunk)` as each scheduler wave completes instead of buffering
/// the whole file. Each round submits a chain of dependent reads so the
/// kernel streams one completion per wave (`sched_run_wave`).
fn builtin_stream_read(interp: &mut Interp, args: Vec<Value>) -> EvalResult {
    arity(&args, 2, "stream_read")?;
    let (cap, _brands) = interp.unseal_for(&args[0], Priv::Read)?;
    let handler = args[1].clone();
    if let Err(e) = cap.check(Priv::Read) {
        return cap_result(Err(CapError::Violation(e)));
    }
    let pid = interp.pid;
    const CHUNK: usize = 65536;
    const ROUND: usize = 8;
    let fd = match (cap.kind() == CapKind::File)
        .then_some(cap.raw.fd)
        .flatten()
    {
        Some(fd) => fd,
        None => {
            // Pipes/sockets: no pread offsets — fall back to one eager read.
            let data = match crate::batchio::cap_read_all(&mut interp.kernel, pid, &cap) {
                Ok(d) => d,
                Err(e) => return cap_result(Err(e)),
            };
            let n = data.len() as i64;
            if !data.is_empty() {
                let chunk = Value::str(String::from_utf8_lossy(&data).into_owned());
                interp.apply(handler, vec![chunk], vec![])?;
            }
            return Ok(Value::Num(n));
        }
    };
    let mut off: u64 = 0;
    let mut total: i64 = 0;
    loop {
        // A chain of dependent single-chunk reads: the declared edges force
        // one read per wave, so completions stream back wave by wave.
        let mut batch = SyscallBatch::aborting(Vec::new());
        for i in 0..ROUND {
            let slot = batch.push(BatchEntry::Preadv {
                fd: fd.into(),
                offset: off + (i * CHUNK) as u64,
                lens: vec![CHUNK],
            });
            if slot > 0 {
                batch.deps.push((slot, slot - 1));
            }
        }
        let mut run = match ScheduledRun::prepare(pid, batch) {
            Ok(r) => r,
            Err(e) => return Ok(Value::SysErr(e)),
        };
        let mut next_slot = 0usize;
        let mut eof = false;
        let mut err: Option<Errno> = None;
        loop {
            let more = match interp.kernel.sched_run_wave(&mut run) {
                Ok(m) => m,
                Err(e) => return Ok(Value::SysErr(e)),
            };
            // Drain completions in slot order; the dependency chain
            // guarantees slot k lands no later than wave k.
            while err.is_none() && !eof {
                let Some(res) = run.result_of(next_slot) else {
                    break;
                };
                match res {
                    Ok(BatchOut::Data(d)) => {
                        let chunk = d.clone();
                        next_slot += 1;
                        if chunk.is_empty() {
                            eof = true;
                        } else {
                            total += chunk.len() as i64;
                            let short = chunk.len() < CHUNK;
                            let s = Value::str(String::from_utf8_lossy(&chunk).into_owned());
                            interp.apply(handler.clone(), vec![s], vec![])?;
                            if short {
                                eof = true;
                            }
                        }
                    }
                    Ok(_) => {
                        err = Some(Errno::EINVAL);
                    }
                    Err(e) => {
                        if *e != Errno::ECANCELED {
                            err = Some(*e);
                        }
                        next_slot += 1;
                    }
                }
            }
            if !more {
                break;
            }
        }
        if let Err(e) = interp.kernel.sched_audit(&run) {
            return Ok(Value::SysErr(e));
        }
        if let Some(e) = err {
            return Ok(Value::SysErr(e));
        }
        if eof {
            return Ok(Value::Num(total));
        }
        off += (ROUND * CHUNK) as u64;
    }
}

/// The `exec` builtin (§2.3): run an executable in a capability-based
/// sandbox. Positional: the executable capability and the argv list
/// (strings or capabilities — capabilities are passed as paths). Keyword:
/// `stdin`/`stdout`/`stderr` capabilities, `extras` (additional
/// capabilities, §2.3), `timeout` (cpu tick ulimit).
fn builtin_exec(interp: &mut Interp, args: Vec<Value>, kwargs: Vec<(String, Value)>) -> EvalResult {
    if args.len() != 2 {
        return Err(ShillError::Runtime(
            "exec expects (executable, argv-list)".into(),
        ));
    }
    let policy = interp
        .policy
        .clone()
        .ok_or_else(|| ShillError::Runtime("exec requires the SHILL kernel module".into()))?;

    let setup_start = Instant::now();

    // Executable capability: +exec required.
    let (exec_cap, _brands) = interp.unseal_for(&args[0], Priv::Exec)?;
    let exec_node = exec_cap
        .raw
        .node
        .ok_or_else(|| ShillError::Runtime("executable capability has no file".into()))?;

    let mut grants: Vec<Grant> = Vec::new();
    let push_grant = |grants: &mut Vec<Grant>, obj: ObjId, privs: Arc<CapPrivs>| {
        grants.push(Grant { obj, privs });
    };
    push_grant(
        &mut grants,
        ObjId::Vnode(exec_node),
        exec_cap.effective_privs(),
    );

    // argv: strings pass through; capabilities become paths AND grants.
    let argv_list = match &args[1] {
        Value::List(l) => l.clone(),
        other => {
            return Err(ShillError::Runtime(format!(
                "exec argv must be a list, got {}",
                other.type_name()
            )))
        }
    };
    let mut argv: Vec<String> = Vec::with_capacity(argv_list.len());
    for item in argv_list.iter() {
        match item {
            Value::Str(s) => argv.push((**s).clone()),
            v @ (Value::Cap(_) | Value::Sealed { .. }) => {
                let (cap, _b) = interp.unseal_for(v, Priv::Path)?;
                let pid = interp.pid;
                let p = match cap.path(&mut interp.kernel, pid) {
                    Ok(p) => p,
                    Err(CapError::Sys(e)) => return Ok(Value::SysErr(e)),
                    Err(CapError::Violation(viol)) => return Err(ShillError::Violation(viol)),
                };
                argv.push(p);
                if let Some((obj, privs)) = grant_privs(interp, v) {
                    push_grant(&mut grants, obj, privs);
                }
            }
            other => {
                return Err(ShillError::Runtime(format!(
                    "exec argv entries must be strings or capabilities, got {}",
                    other.type_name()
                )))
            }
        }
    }

    let mut spec = SandboxSpec::default();
    let mut timeout: Option<u64> = None;

    for (key, v) in &kwargs {
        match key.as_str() {
            "stdin" | "stdout" | "stderr" => {
                let needed = if key == "stdin" {
                    Priv::Read
                } else {
                    Priv::Append
                };
                let (cap, _b) = interp.unseal_for(v, needed)?;
                let fd = cap.raw.fd.ok_or_else(|| {
                    ShillError::Runtime(format!("{key} capability has no descriptor"))
                })?;
                match key.as_str() {
                    "stdin" => spec.stdin = Some(fd),
                    "stdout" => spec.stdout = Some(fd),
                    _ => spec.stderr = Some(fd),
                }
            }
            "extras" => {
                let list = match v {
                    Value::List(l) => l.iter().cloned().collect::<Vec<_>>(),
                    single => vec![single.clone()],
                };
                for item in flatten(list) {
                    match strip_seals(&item) {
                        Value::Cap(cap) if cap.kind() == CapKind::PipeFactory => {
                            if cap.allows(Priv::PipeCreate) {
                                spec.pipe_factory = true;
                            }
                        }
                        Value::Cap(cap) if cap.kind() == CapKind::SocketFactory => {
                            spec.socket_privs =
                                spec.socket_privs.union(Interp::socket_factory_privs(cap));
                        }
                        Value::Cap(cap) => {
                            if let Some((obj, privs)) = grant_privs(interp, &item) {
                                push_grant(&mut grants, obj, privs);
                            } else if let Some(obj) = obj_of(interp, cap) {
                                push_grant(&mut grants, obj, cap.effective_privs());
                            }
                        }
                        _ => {
                            return Err(ShillError::Runtime(
                                "exec extras must be capabilities".into(),
                            ))
                        }
                    }
                }
            }
            "timeout" => {
                if let Value::Num(n) = v {
                    timeout = Some((*n).max(0) as u64);
                }
            }
            other => {
                return Err(ShillError::Runtime(format!(
                    "exec: unknown keyword argument {other}"
                )))
            }
        }
    }
    spec.grants = grants;
    if let Some(t) = timeout {
        spec.ulimits = Some(Ulimits {
            max_cpu_ticks: t,
            ..Default::default()
        });
    }

    // Sandbox setup (fork / shill_init / grants / shill_enter). Setup
    // failures — fork-time pid-space exhaustion (EAGAIN from the shard
    // pid stride), max_processes ulimit exhaustion, a refused grant —
    // surface as catchable `syserror` values, not harness-level aborts: a
    // script that hits a resource wall must be able to observe it with
    // `is_syserror` and degrade, exactly like any other denied syscall.
    let parent = interp.pid;
    let sandbox = match shill_sandbox::setup_sandbox(&mut interp.kernel, &policy, parent, &spec) {
        Ok(sb) => sb,
        Err(e) => return Ok(Value::SysErr(e)),
    };
    interp.profile.sandboxes += 1;
    // Setup cannot recurse back into the interpreter, but when this exec
    // is itself nested inside another exec's window the enclosing phase
    // must subtract it — book it as a leaf.
    let setup_span = interp.phase_nest.book_leaf(setup_start.elapsed());
    interp.profile.sandbox_setup += setup_span;

    // Sandboxed execution. The handler behind `exec_node` may re-enter
    // the interpreter (a script spawning a script), so the window is a
    // proper phase: every exit path closes it through `phase_nest` and
    // books only the innermost-attributable remainder.
    let exec_start = Instant::now();
    interp.phase_nest.enter();
    let status = match interp.kernel.exec_node(sandbox.child, exec_node, &argv) {
        Ok(s) => s,
        Err(e) => {
            interp.kernel.exit(sandbox.child, 126);
            let _ = interp.kernel.waitpid(parent, sandbox.child);
            let span = interp.phase_nest.exit(exec_start.elapsed());
            interp.profile.sandboxed_exec += span;
            return Ok(Value::SysErr(e));
        }
    };
    interp.kernel.exit(sandbox.child, status);
    let status = match interp.kernel.waitpid(parent, sandbox.child) {
        Ok(s) => s,
        Err(e) => {
            let span = interp.phase_nest.exit(exec_start.elapsed());
            interp.profile.sandboxed_exec += span;
            return Ok(Value::SysErr(e));
        }
    };
    let span = interp.phase_nest.exit(exec_start.elapsed());
    interp.profile.sandboxed_exec += span;
    Ok(Value::Num(status as i64))
}

fn flatten(items: Vec<Value>) -> Vec<Value> {
    let mut out = Vec::new();
    for v in items {
        match v {
            Value::List(l) => out.extend(flatten(l.iter().cloned().collect())),
            other => out.push(other),
        }
    }
    out
}
