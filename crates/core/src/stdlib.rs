//! Rust-implemented standard-library modules (§3.1.4).
//!
//! * `shill/native` — capability wallets for launching executables:
//!   `populate_native_wallet` resolves `$PATH`/`$LD_LIBRARY_PATH`-style
//!   specs against a root directory capability; `pkg_native` finds an
//!   executable in a wallet, runs the simulated `ldd` to collect library
//!   capabilities, and returns a contracted wrapper that `exec`s the
//!   program with everything it needs.
//! * `shill/contracts` — abbreviations (`readonly`, `writeable`, ...).
//! * `shill/filesys` — multi-component path resolution via chained lookups,
//!   plus batch-backed cat/cp-style helpers (`copy_file`, `dir_stats`) that
//!   submit one kernel batch where the naive script loop would issue one
//!   call per chunk or per name.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use shill_cap::{CapPrivs, Priv, PrivSet};
use shill_contracts::{Blame, CapError, GuardedCap};

use crate::ast::{ContractExpr, FuncContract};
use crate::eval::Interp;
use crate::value::{ContractedFn, EvalResult, NativeFn, ShillError, Value};

/// Fetch a Rust-implemented stdlib module by name.
pub fn stdlib_module(name: &str) -> Option<HashMap<String, Value>> {
    match name {
        "shill/native" => Some(native_module()),
        "shill/contracts" => Some(contracts_module()),
        "shill/filesys" => Some(filesys_module()),
        _ => None,
    }
}

fn native_fn(
    name: &str,
    f: impl Fn(&mut Interp, Vec<Value>, Vec<(String, Value)>) -> EvalResult + 'static,
) -> Value {
    Value::Native(Rc::new(NativeFn {
        name: name.to_string(),
        f: Box::new(f),
    }))
}

// --- shill/contracts ---------------------------------------------------------

fn contracts_module() -> HashMap<String, Value> {
    let mut m = HashMap::new();
    let readonly = ContractExpr::Or(vec![
        ContractExpr::Dir(CapPrivs::of(PrivSet::readonly_dir())),
        ContractExpr::File(CapPrivs::of(PrivSet::readonly_file())),
    ]);
    m.insert("readonly".into(), Value::Contract(Rc::new(readonly)));
    m.insert(
        "writeable".into(),
        Value::Contract(Rc::new(ContractExpr::File(CapPrivs::of(PrivSet::of(&[
            Priv::Write,
            Priv::Append,
            Priv::Truncate,
            Priv::Stat,
            Priv::Path,
        ]))))),
    );
    m.insert(
        "executable".into(),
        Value::Contract(Rc::new(ContractExpr::File(CapPrivs::of(PrivSet::of(&[
            Priv::Exec,
            Priv::Read,
            Priv::Stat,
            Priv::Path,
        ]))))),
    );
    m.insert(
        "appendonly".into(),
        Value::Contract(Rc::new(ContractExpr::File(CapPrivs::of(PrivSet::of(&[
            Priv::Append,
            Priv::Path,
        ]))))),
    );
    m
}

// --- shill/filesys -----------------------------------------------------------

fn filesys_module() -> HashMap<String, Value> {
    let mut m = HashMap::new();
    // resolve_path(dircap, "a/b/c") -> capability (or syserror). Each
    // component is a separate `lookup`, so contracts and capability safety
    // apply per step; `..` is refused by `lookup` itself.
    m.insert(
        "resolve_path".into(),
        native_fn("resolve_path", |interp, args, _kw| {
            if args.len() != 2 {
                return Err(ShillError::Runtime(
                    "resolve_path expects (dir, path)".into(),
                ));
            }
            let Value::Str(path) = &args[1] else {
                return Err(ShillError::Runtime(
                    "resolve_path: path must be a string".into(),
                ));
            };
            let mut cur = args[0].clone();
            for comp in path.split('/').filter(|c| !c.is_empty()) {
                let (cap, brands) = interp.unseal_for(&cur, Priv::Lookup)?;
                let pid = interp.pid;
                match cap.lookup(&mut interp.kernel, pid, comp) {
                    Ok(next) => cur = Interp::reseal(Value::Cap(Rc::new(next)), brands),
                    Err(CapError::Sys(e)) => return Ok(Value::SysErr(e)),
                    Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
                }
            }
            Ok(cur)
        }),
    );
    // copy_file(src, dst) -> bytes copied (or syserror). cp in one
    // expression, fused onto the scheduler's pipeline path: each window is
    // ONE submission (read → truncate → write) with the bytes flowing to
    // the write through a slot reference instead of surfacing here.
    // Requires +read on src and +write (with +truncate/+append per the
    // sandbox's write conservatism) on dst.
    m.insert(
        "copy_file".into(),
        native_fn("copy_file", |interp, args, _kw| {
            if args.len() != 2 {
                return Err(ShillError::Runtime("copy_file expects (src, dst)".into()));
            }
            let (src, _b1) = interp.unseal_for(&args[0], Priv::Read)?;
            let (dst, _b2) = interp.unseal_for(&args[1], Priv::Write)?;
            let pid = interp.pid;
            // Under `async`, the first window joins the accumulated batch as
            // a read → truncate → write DAG fragment; the future resolves to
            // the byte count (continuing eagerly past the first window for
            // large files).
            if interp.async_depth > 0 {
                if let Some(acc) = interp.deferred.as_mut() {
                    match acc.defer_copy(&src, &dst) {
                        Ok(Some(fut)) => return Ok(Value::Future(fut)),
                        Ok(None) => {}
                        Err(CapError::Sys(e)) => return Ok(Value::SysErr(e)),
                        Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
                    }
                }
            }
            match crate::batchio::cap_copy(&mut interp.kernel, pid, &src, &dst) {
                Ok(n) => Ok(Value::Num(n as i64)),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }),
    );
    // dir_stats(dir) -> list of [name, size] pairs. The `contents` +
    // per-name `stat` loop as one readdir plus one batched fstatat sweep;
    // names whose stat fails (vanished, denied) are skipped, like `find`.
    m.insert(
        "dir_stats".into(),
        native_fn("dir_stats", |interp, args, _kw| {
            if args.len() != 1 {
                return Err(ShillError::Runtime("dir_stats expects (dir)".into()));
            }
            let (dir, _b) = interp.unseal_for(&args[0], Priv::Contents)?;
            let pid = interp.pid;
            // Under `async`, the readdir still runs eagerly (the stat sweep
            // needs the names) but the per-name fstatat fan joins the
            // accumulated batch; the future resolves to the same
            // [[name, size], …] shape.
            if interp.async_depth > 0 {
                let kernel = &mut interp.kernel;
                if let Some(acc) = interp.deferred.as_mut() {
                    return match acc.defer_dir_stats(kernel, pid, &dir) {
                        Ok(fut) => Ok(Value::Future(fut)),
                        Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                        Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
                    };
                }
            }
            match crate::batchio::cap_dir_stats(&mut interp.kernel, pid, &dir) {
                Ok(pairs) => Ok(Value::list(
                    pairs
                        .into_iter()
                        .filter_map(|(name, st)| st.ok().map(|st| (name, st)))
                        .map(|(name, st)| {
                            Value::list(vec![Value::str(name), Value::Num(st.size as i64)])
                        })
                        .collect(),
                )),
                Err(CapError::Sys(e)) => Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => Err(ShillError::Violation(v)),
            }
        }),
    );
    // slurp_many(caps) -> list of file contents (per-element syserrors for
    // the files that fail). The whole sweep is ONE scheduled submission —
    // a Preadv window per file — instead of a read syscall per element.
    // Under `async` it joins the accumulated batch and returns a future.
    m.insert(
        "slurp_many".into(),
        native_fn("slurp_many", |interp, args, _kw| {
            if args.len() != 1 {
                return Err(ShillError::Runtime("slurp_many expects (cap-list)".into()));
            }
            let items: Vec<Value> = match &args[0] {
                Value::List(l) => l.iter().cloned().collect(),
                other => vec![other.clone()],
            };
            let mut caps = Vec::with_capacity(items.len());
            for v in &items {
                let (cap, _b) = interp.unseal_for(v, Priv::Read)?;
                caps.push(cap);
            }
            let pid = interp.pid;
            let deferred = interp.async_depth > 0 && interp.deferred.is_some();
            let mut own = crate::batchio::DeferredAcc::new();
            let acc = if deferred {
                interp.deferred.as_mut().unwrap()
            } else {
                &mut own
            };
            match acc.defer_slurp(&caps) {
                Ok(Some(fut)) => {
                    if deferred {
                        return Ok(Value::Future(fut));
                    }
                    // Eager call: force the private accumulator right away —
                    // still one submission for the whole sweep.
                    crate::batchio::flush_deferred(&mut interp.kernel, pid, own);
                    return Ok(fut.ready_value().unwrap_or(Value::Void));
                }
                Ok(None) => {}
                Err(CapError::Sys(e)) => return Ok(Value::SysErr(e)),
                Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
            }
            // Some capability was not batchable (pipe/socket): read each
            // eagerly, keeping the per-element string/syserror shape.
            let mut out = Vec::with_capacity(caps.len());
            for cap in &caps {
                match crate::batchio::cap_read_all(&mut interp.kernel, pid, cap) {
                    Ok(d) => out.push(Value::str(String::from_utf8_lossy(&d).into_owned())),
                    Err(CapError::Sys(e)) => out.push(Value::SysErr(e)),
                    Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
                }
            }
            Ok(Value::list(out))
        }),
    );
    m
}

// --- shill/native ------------------------------------------------------------

fn native_module() -> HashMap<String, Value> {
    let mut m = HashMap::new();
    m.insert(
        "populate_native_wallet".into(),
        native_fn("populate_native_wallet", populate_native_wallet),
    );
    m.insert("pkg_native".into(), native_fn("pkg_native", pkg_native));
    m
}

fn want_wallet(v: &Value) -> Result<Rc<crate::value::Wallet>, ShillError> {
    match v {
        Value::Wallet(w) => Ok(Rc::clone(w)),
        other => Err(ShillError::Runtime(format!(
            "expected a wallet, got {}",
            other.type_name()
        ))),
    }
}

fn want_cap(v: &Value) -> Result<Rc<GuardedCap>, ShillError> {
    match v {
        Value::Cap(c) => Ok(Rc::clone(c)),
        other => Err(ShillError::Runtime(format!(
            "expected a capability, got {}",
            other.type_name()
        ))),
    }
}

/// Walk a `/`-separated path from a directory capability via lookups.
fn walk(
    interp: &mut Interp,
    root: &GuardedCap,
    path: &str,
) -> Result<Option<GuardedCap>, ShillError> {
    let mut cur = root.clone();
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        let pid = interp.pid;
        match cur.lookup(&mut interp.kernel, pid, comp) {
            Ok(next) => cur = next,
            Err(CapError::Sys(_)) => return Ok(None),
            Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
        }
    }
    Ok(Some(cur))
}

/// `populate_native_wallet(wallet, root, path_spec, libpath_spec[, pipe_factory])`
///
/// §3.1.4: "Its arguments include path specifications for where to search
/// for executables and libraries (i.e., colon-separated strings, analogous
/// to environment variables $PATH and $LD_LIBRARY_PATH), and a directory
/// capability to use as a root for the path specifications."
fn populate_native_wallet(
    interp: &mut Interp,
    args: Vec<Value>,
    _kw: Vec<(String, Value)>,
) -> EvalResult {
    if args.len() < 4 || args.len() > 5 {
        return Err(ShillError::Runtime(
            "populate_native_wallet expects (wallet, root, path_spec, libpath_spec[, pipe_factory])".into(),
        ));
    }
    let wallet = want_wallet(&args[0])?;
    let root = want_cap(&args[1])?;
    let Value::Str(path_spec) = &args[2] else {
        return Err(ShillError::Runtime("path_spec must be a string".into()));
    };
    let Value::Str(lib_spec) = &args[3] else {
        return Err(ShillError::Runtime("libpath_spec must be a string".into()));
    };

    let mut paths = Vec::new();
    for spec in path_spec.split(':').filter(|s| !s.is_empty()) {
        if let Some(cap) = walk(interp, &root, spec)? {
            paths.push(Value::Cap(Rc::new(cap)));
        }
    }
    let mut libs = Vec::new();
    for spec in lib_spec.split(':').filter(|s| !s.is_empty()) {
        if let Some(cap) = walk(interp, &root, spec)? {
            libs.push(Value::Cap(Rc::new(cap)));
        }
    }
    // Traversal-only root: +lookup with nothing extra propagating beyond
    // lookup itself, so sandboxes can resolve absolute paths without
    // gaining read access along the way.
    let lookup_only = CapPrivs::of(PrivSet::of(&[Priv::Lookup]))
        .with_modifier(Priv::Lookup, CapPrivs::of(PrivSet::of(&[Priv::Lookup])));
    let rooted = root.restrict(
        Arc::new(lookup_only),
        Blame::new(
            "populate_native_wallet",
            "sandbox",
            "root : dir(+lookup with {+lookup})",
        ),
    );

    let mut map = wallet.map.borrow_mut();
    map.entry("PATH".into()).or_default().extend(paths);
    map.entry("LD_LIBRARY_PATH".into())
        .or_default()
        .extend(libs);
    map.insert("root".into(), vec![Value::Cap(Rc::new(rooted))]);
    if let Some(pf) = args.get(4) {
        match pf {
            Value::Cap(c) if c.kind() == shill_cap::CapKind::PipeFactory => {
                map.insert("pipe-factory".into(), vec![pf.clone()]);
            }
            Value::Void => {}
            other => {
                return Err(ShillError::Runtime(format!(
                    "fifth argument must be a pipe factory, got {}",
                    other.type_name()
                )))
            }
        }
    }
    Ok(Value::Void)
}

/// `pkg_native(program, wallet)` (§3.1.4): find the executable on the
/// wallet's PATH, run `ldd` for its libraries, gather known extra
/// dependencies, and return a contracted wrapper closing over everything
/// needed to `exec` it.
fn pkg_native(interp: &mut Interp, args: Vec<Value>, _kw: Vec<(String, Value)>) -> EvalResult {
    if args.len() != 2 {
        return Err(ShillError::Runtime(
            "pkg_native expects (program, wallet)".into(),
        ));
    }
    let Value::Str(program) = &args[0] else {
        return Err(ShillError::Runtime(
            "pkg_native: program must be a string".into(),
        ));
    };
    let program = (**program).clone();
    let wallet = want_wallet(&args[1])?;

    // 1. Find the executable along PATH.
    let path_caps: Vec<Value> = wallet.map.borrow().get("PATH").cloned().unwrap_or_default();
    let mut exec_cap: Option<GuardedCap> = None;
    for dir in &path_caps {
        let dir = want_cap(dir)?;
        let pid = interp.pid;
        match dir.lookup(&mut interp.kernel, pid, &program) {
            Ok(c) if c.is_file() => {
                exec_cap = Some(c);
                break;
            }
            Ok(_) => {}
            Err(CapError::Sys(_)) => {}
            Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
        }
    }
    let Some(exec_cap) = exec_cap else {
        return Ok(Value::SysErr(shill_vfs::Errno::ENOENT));
    };
    let exec_node = exec_cap
        .raw
        .node
        .ok_or_else(|| ShillError::Runtime("executable has no backing file".into()))?;
    // Restrict the executable capability to what running it needs.
    let exec_privs = CapPrivs::of(PrivSet::of(&[
        Priv::Exec,
        Priv::Read,
        Priv::Path,
        Priv::Stat,
    ]));
    let exec_cap = exec_cap.restrict(
        Arc::new(exec_privs),
        Blame::new(
            "pkg_native",
            "sandbox",
            "exe : file(+exec, +read, +path, +stat)",
        ),
    );

    // 2. `ldd`: dependencies as absolute paths, resolved against the
    // wallet's library directories by basename.
    let deps = interp.kernel.ldd(exec_node).unwrap_or_default();
    let lib_dirs: Vec<Value> = wallet
        .map
        .borrow()
        .get("LD_LIBRARY_PATH")
        .cloned()
        .unwrap_or_default();
    let ro = Arc::new(CapPrivs::of(PrivSet::readonly_file()));
    let mut lib_caps: Vec<Value> = Vec::new();
    for dep in &deps {
        let base = dep.rsplit('/').next().unwrap_or(dep);
        for dir in &lib_dirs {
            let dir = want_cap(dir)?;
            let pid = interp.pid;
            match dir.lookup(&mut interp.kernel, pid, base) {
                Ok(c) => {
                    let guarded = c.restrict(
                        Arc::clone(&ro),
                        Blame::new("pkg_native", "sandbox", "lib : file(+stat, +read, +path)"),
                    );
                    lib_caps.push(Value::Cap(Rc::new(guarded)));
                    break;
                }
                Err(CapError::Sys(_)) => {}
                Err(CapError::Violation(v)) => return Err(ShillError::Violation(v)),
            }
        }
    }

    // 3. Known extra dependencies and the traversal root.
    {
        let map = wallet.map.borrow();
        if let Some(extra) = map.get(&format!("deps:{program}")) {
            lib_caps.extend(extra.iter().cloned());
        }
        if let Some(root) = map.get("root") {
            lib_caps.extend(root.iter().cloned());
        }
        if let Some(pf) = map.get("pipe-factory") {
            lib_caps.extend(pf.iter().cloned());
        }
    }

    // 4. The wrapper: exec with all gathered capabilities. It accepts
    // (args_list) plus stdio/extras keywords, like Figure 4's
    // `jpeg_wrapper(["-i", arg], stdout = out)`.
    let program_name = program.clone();
    let exec_val = Value::Cap(Rc::new(exec_cap));
    let captured_exec = exec_val.clone();
    let wrapper = native_fn(
        &format!("native:{program}"),
        move |interp, wargs, wkwargs| {
            if wargs.len() != 1 {
                return Err(ShillError::Runtime(format!(
                    "{program_name} wrapper expects one argument (argv list)"
                )));
            }
            let user_args = match &wargs[0] {
                Value::List(l) => l.iter().cloned().collect::<Vec<_>>(),
                other => vec![other.clone()],
            };
            let mut argv = vec![Value::str(program_name.clone())];
            argv.extend(user_args);
            let mut kwargs = Vec::new();
            let mut extras: Vec<Value> = lib_caps.clone();
            for (k, v) in wkwargs {
                if k == "extras" {
                    match v {
                        Value::List(l) => extras.extend(l.iter().cloned()),
                        other => extras.push(other),
                    }
                } else {
                    kwargs.push((k, v));
                }
            }
            kwargs.push(("extras".to_string(), Value::list(extras)));
            interp.apply(
                Value::Builtin("exec"),
                vec![captured_exec.clone(), Value::list(argv)],
                kwargs,
            )
        },
    );

    // 5. The contract on pkg_native's result — "checked once per sandbox"
    // and the dominant contract-checking cost in the paper's profile
    // (§4.2). Declares the argv list and stdio capability obligations.
    let stdio_out = ContractExpr::File(CapPrivs::of(PrivSet::of(&[
        Priv::Write,
        Priv::Append,
        Priv::Stat,
        Priv::Path,
    ])));
    let stdio_in = ContractExpr::File(CapPrivs::of(PrivSet::of(&[
        Priv::Read,
        Priv::Stat,
        Priv::Path,
    ])));
    let contract = FuncContract {
        args: vec![("args".to_string(), ContractExpr::IsList)],
        kwargs: vec![
            ("stdout".to_string(), stdio_out.clone()),
            ("stderr".to_string(), stdio_out),
            ("stdin".to_string(), stdio_in),
            ("extras".to_string(), ContractExpr::IsList),
        ],
        result: ContractExpr::Any,
    };
    let blame = Blame::new(
        format!("caller of native:{program}"),
        format!("native:{program}"),
        format!("native wrapper for {program}"),
    );
    let cenv = crate::env::Env::root();
    crate::builtins::install_common(&cenv);
    Ok(Value::Contracted(Rc::new(ContractedFn {
        inner: wrapper,
        contract: Rc::new(contract),
        forall: None,
        blame,
        seals: Vec::new(),
        into_body: true,
        cenv,
    })))
}
