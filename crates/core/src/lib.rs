//! # shill-core
//!
//! The SHILL language (OSDI 2014), reproduced in Rust: lexer, parser, and
//! tree-walking evaluator for the capability-safe and ambient dialects;
//! contract enforcement at function and module boundaries (including
//! bounded parametric polymorphism with dynamic sealing); the builtin
//! capability operations; the `exec` sandbox launcher; and the standard
//! library (`shill/native` wallets, `shill/contracts` abbreviations,
//! `shill/filesys` helpers).

pub mod ast;
pub mod batchio;
pub mod builtins;
pub mod env;
pub mod eval;
pub mod lex;
pub mod parse;
pub mod profile;
pub mod runtime;
pub mod stdlib;
pub mod value;

pub use ast::{ContractExpr, Dialect, Script};
pub use env::Env;
pub use eval::Interp;
pub use parse::{parse_contract, parse_script, ParseError};
pub use profile::{PhaseNesting, Profile};
pub use runtime::{RuntimeConfig, ShillRuntime};
pub use value::{EvalResult, ShillError, Value};
