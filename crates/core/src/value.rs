//! Runtime values.
//!
//! Capability safety at the value level (§2.1): there is no constructor from
//! strings to capabilities, capabilities have no serialized form
//! (`to_display` renders an opaque token), and the interpreter offers no
//! mutable variables — so "SHILL scripts cannot store or share capabilities
//! through memory, the filesystem, or the network".

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use shill_contracts::{Blame, GuardedCap, SealBrand, Violation};
use shill_kernel::Fd;
use shill_vfs::Errno;

use crate::ast::{FuncContract, Stmt};
use crate::env::Env;

/// What a pending future's slots in the accumulated batch resolve into.
/// Slot indices refer to the interpreter's single pending
/// [`crate::batchio::DeferredAcc`]; the descriptors let resolution continue
/// an operation whose first 1 MiB window came back full. Guard checks
/// already happened at enqueue time — resolution only maps completions to
/// values, so errnos surface as catchable [`Value::SysErr`]s, never
/// violations.
#[derive(Debug, Clone)]
pub enum FragKind {
    /// One `Preadv` window at `slot`; resolves to the file's contents as a
    /// string (continuing past a full window via `fd`).
    Read { slot: usize, fd: Fd },
    /// `Ftruncate` + `Pwrite` at `slots`; resolves to void, like the
    /// sequential `write` builtin.
    Write { slots: [usize; 2] },
    /// A fused copy window at `first_slot..first_slot + 3`
    /// (read → truncate → write, data flowing by slot reference); resolves
    /// to the total bytes copied (continuing past a full window).
    Copy { first_slot: usize, sfd: Fd, dfd: Fd },
    /// A `Stat` sweep at `first_slot..first_slot + names.len()`; resolves
    /// to `[[name, size], …]` over the entries whose stat succeeded, in
    /// directory order — the `dir_stats` shape.
    DirStats {
        names: Vec<String>,
        first_slot: usize,
    },
    /// One `Preadv` window per file; resolves to a list of contents
    /// strings, each element independently a string or a syserror.
    Slurp { reads: Vec<(usize, Fd)> },
}

impl FragKind {
    /// The accumulated-batch slots this fragment resolves from (`select`
    /// uses these to decide which future completed first).
    pub fn slots(&self) -> Vec<usize> {
        match self {
            FragKind::Read { slot, .. } => vec![*slot],
            FragKind::Write { slots } => slots.to_vec(),
            FragKind::Copy { first_slot, .. } => (*first_slot..first_slot + 3).collect(),
            FragKind::DirStats { names, first_slot } => {
                (*first_slot..first_slot + names.len()).collect()
            }
            FragKind::Slurp { reads } => reads.iter().map(|(s, _)| *s).collect(),
        }
    }
}

/// A future's lifetime: pending (slots enqueued in the interpreter's
/// accumulated batch, not yet submitted) until an `await` flushes the
/// batch, then ready forever. A future that is never awaited never
/// executes — dropping the accumulator drops the deferred I/O.
pub enum FutureState {
    Pending(FragKind),
    Ready(Value),
}

/// The cell behind a [`Value::Future`]. Interior-mutable so every clone of
/// the future observes the resolution.
pub struct FutureCell {
    pub state: RefCell<FutureState>,
}

impl FutureCell {
    pub fn pending(kind: FragKind) -> Rc<FutureCell> {
        Rc::new(FutureCell {
            state: RefCell::new(FutureState::Pending(kind)),
        })
    }

    pub fn ready(v: Value) -> Rc<FutureCell> {
        Rc::new(FutureCell {
            state: RefCell::new(FutureState::Ready(v)),
        })
    }

    pub fn is_pending(&self) -> bool {
        matches!(*self.state.borrow(), FutureState::Pending(_))
    }

    pub fn set_ready(&self, v: Value) {
        *self.state.borrow_mut() = FutureState::Ready(v);
    }

    /// The resolved value, if ready (clones — futures are shared).
    pub fn ready_value(&self) -> Option<Value> {
        match &*self.state.borrow() {
            FutureState::Ready(v) => Some(v.clone()),
            FutureState::Pending(_) => None,
        }
    }

    /// The accumulated-batch slots a still-pending future waits on.
    pub fn pending_slots(&self) -> Option<Vec<usize>> {
        match &*self.state.borrow() {
            FutureState::Pending(kind) => Some(kind.slots()),
            FutureState::Ready(_) => None,
        }
    }

    /// Take the pending fragment for resolution, leaving the cell ready
    /// with a placeholder (the resolver overwrites it via `set_ready`).
    pub fn take_frag(&self) -> Option<FragKind> {
        let mut st = self.state.borrow_mut();
        match &*st {
            FutureState::Pending(_) => {
                match std::mem::replace(&mut *st, FutureState::Ready(Value::Void)) {
                    FutureState::Pending(kind) => Some(kind),
                    FutureState::Ready(_) => unreachable!(),
                }
            }
            FutureState::Ready(_) => None,
        }
    }
}

/// A user-defined function.
pub struct Closure {
    /// Name for blame and diagnostics (binding name or `<anonymous>`).
    pub name: RefCell<String>,
    pub params: Vec<String>,
    pub body: Rc<Vec<Stmt>>,
    pub env: Env,
}

/// A function contract wrapper around a callable value.
pub struct ContractedFn {
    pub inner: Value,
    pub contract: Rc<FuncContract>,
    /// `forall` information: variable name and privilege bound, if present.
    pub forall: Option<(String, shill_cap::PrivSet)>,
    pub blame: Arc<Blame>,
    /// Contract-variable bindings captured when this wrapper was itself
    /// created inside a polymorphic instantiation.
    pub seals: Vec<(String, Arc<SealBrand>)>,
    /// Polarity: `true` when calling this wrapper sends arguments *into*
    /// the component the contract guards (so `forall` variables in the
    /// domain seal); flips at each function-contract nesting (§2.4.2).
    pub into_body: bool,
    /// The environment the contract was written in: named contract
    /// abbreviations and user-defined predicates resolve here at call time.
    pub cenv: Env,
}

/// Native (Rust-implemented) function, e.g. the wrapper `pkg_native`
/// returns. Receives evaluated positional and keyword arguments.
pub type NativeFnImpl =
    dyn Fn(&mut crate::eval::Interp, Vec<Value>, Vec<(String, Value)>) -> Result<Value, ShillError>;

pub struct NativeFn {
    pub name: String,
    pub f: Box<NativeFnImpl>,
}

/// A capability wallet (§2.4.1): "a map from strings to lists of
/// capabilities". `kind` distinguishes native wallets (built by
/// `populate_native_wallet`) for the `native_wallet` contract.
pub struct Wallet {
    pub kind: String,
    pub map: RefCell<BTreeMap<String, Vec<Value>>>,
}

/// Runtime values.
#[derive(Clone)]
pub enum Value {
    Void,
    Bool(bool),
    Num(i64),
    Str(Rc<String>),
    List(Rc<Vec<Value>>),
    /// A capability (possibly contract-guarded).
    Cap(Rc<GuardedCap>),
    /// A sealed capability inside a polymorphic function body (§2.4.2).
    Sealed {
        brand: Arc<SealBrand>,
        inner: Rc<Value>,
    },
    Closure(Rc<Closure>),
    Contracted(Rc<ContractedFn>),
    Native(Rc<NativeFn>),
    /// A builtin, by name (dispatched in `builtins.rs`).
    Builtin(&'static str),
    /// A first-class contract value (user-defined abbreviations).
    Contract(Rc<crate::ast::ContractExpr>),
    Wallet(Rc<Wallet>),
    /// A system error produced by a capability operation; scripts observe
    /// these with `is_syserror` (paper Figure 3 line 11).
    SysErr(Errno),
    /// A deferred I/O result: produced by `async`, forced by `await`.
    /// Holds slot references into the interpreter's accumulated batch
    /// while pending. Like capabilities, futures render opaquely and have
    /// no serialized form.
    Future(Rc<FutureCell>),
}

/// Top-level script errors.
#[derive(Debug)]
pub enum ShillError {
    Parse(crate::parse::ParseError),
    /// Contract violation: aborts execution with blame (§2.2).
    Violation(Violation),
    /// Unrecoverable system error escaping the runtime.
    Sys(Errno),
    /// Other runtime errors (unbound variable, arity, type errors...).
    Runtime(String),
}

impl fmt::Display for ShillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShillError::Parse(e) => write!(f, "{e}"),
            ShillError::Violation(v) => write!(f, "{v}"),
            ShillError::Sys(e) => write!(f, "system error: {e}"),
            ShillError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for ShillError {}

impl From<Violation> for ShillError {
    fn from(v: Violation) -> Self {
        ShillError::Violation(v)
    }
}

impl From<crate::parse::ParseError> for ShillError {
    fn from(e: crate::parse::ParseError) -> Self {
        ShillError::Parse(e)
    }
}

pub type EvalResult = Result<Value, ShillError>;

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(items))
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Cap(_) => "capability",
            Value::Sealed { .. } => "sealed capability",
            Value::Closure(_) | Value::Contracted(_) | Value::Native(_) | Value::Builtin(_) => {
                "function"
            }
            Value::Contract(_) => "contract",
            Value::Wallet(_) => "wallet",
            Value::SysErr(_) => "syserror",
            Value::Future(_) => "future",
        }
    }

    pub fn is_callable(&self) -> bool {
        matches!(
            self,
            Value::Closure(_) | Value::Contracted(_) | Value::Native(_) | Value::Builtin(_)
        )
    }

    pub fn truthy(&self) -> Result<bool, ShillError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ShillError::Runtime(format!(
                "expected a boolean condition, got {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality for `==`. Capabilities compare by identity-ish
    /// (same underlying node); functions are never equal.
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Void, Value::Void) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::SysErr(a), Value::SysErr(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equals(y))
            }
            (Value::Cap(a), Value::Cap(b)) => match (a.raw.node, b.raw.node) {
                (Some(x), Some(y)) => x == y,
                _ => Rc::ptr_eq(a, b),
            },
            // Futures compare by identity: two deferred ops are never "the
            // same" even if they resolve to equal values.
            (Value::Future(a), Value::Future(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Rendering for `to_string`/output. Capabilities render opaquely: they
    /// are deliberately not serializable.
    pub fn display(&self) -> String {
        match self {
            Value::Void => "void".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => n.to_string(),
            Value::Str(s) => (**s).clone(),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.display()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Cap(c) => format!("<capability {}>", c.name()),
            Value::Sealed { brand, .. } => format!("<sealed {}>", brand.var),
            Value::Closure(c) => format!("<fun {}>", c.name.borrow()),
            Value::Contracted(c) => format!("<contracted fun via {}>", c.blame.contract),
            Value::Native(n) => format!("<native {}>", n.name),
            Value::Builtin(n) => format!("<builtin {n}>"),
            Value::Contract(c) => format!("<contract {}>", crate::ast::contract_to_string(c)),
            Value::Wallet(w) => format!("<{} wallet>", w.kind),
            Value::SysErr(e) => format!("<syserror {}>", e.name()),
            Value::Future(f) => {
                if f.is_pending() {
                    "<future pending>".into()
                } else {
                    "<future ready>".into()
                }
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_caps_opaquely() {
        // No constructor from strings: the only way to get a Cap is via the
        // ambient runtime. Here we just check non-cap rendering.
        assert_eq!(Value::Num(42).display(), "42");
        assert_eq!(Value::str("hi").display(), "hi");
        assert_eq!(
            Value::list(vec![Value::Num(1), Value::Bool(true)]).display(),
            "[1, true]"
        );
        assert_eq!(Value::SysErr(Errno::ENOENT).display(), "<syserror ENOENT>");
    }

    #[test]
    fn equality_is_structural_for_data() {
        assert!(Value::list(vec![Value::Num(1)]).equals(&Value::list(vec![Value::Num(1)])));
        assert!(!Value::str("a").equals(&Value::str("b")));
        assert!(!Value::Num(1).equals(&Value::Bool(true)));
    }

    #[test]
    fn truthiness_requires_bool() {
        assert!(Value::Bool(true).truthy().unwrap());
        assert!(Value::Num(1).truthy().is_err());
    }
}
