//! Abstract syntax for SHILL scripts.
//!
//! Two dialects share this AST (§2.5): capability-safe scripts
//! (`#lang shill/cap`) and ambient scripts (`#lang shill/ambient`). The
//! parser enforces the ambient dialect's restrictions ("straight line code
//! that can import capability-safe scripts, create capabilities ... and call
//! functions").

use std::rc::Rc;

use shill_cap::{CapPrivs, PrivSet};

/// Which dialect a script is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// `#lang shill/cap` — capability-safe.
    CapSafe,
    /// `#lang shill/ambient` — ambient authority, heavily restricted syntax.
    Ambient,
}

/// A source position for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: usize,
    pub col: usize,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parsed script.
#[derive(Debug, Clone)]
pub struct Script {
    pub dialect: Dialect,
    /// `require` declarations, in order.
    pub requires: Vec<String>,
    /// `provide name : contract;` declarations.
    pub provides: Vec<Provide>,
    /// Top-level statements (definitions and expressions).
    pub body: Vec<Stmt>,
}

/// One `provide` declaration.
#[derive(Debug, Clone)]
pub struct Provide {
    pub name: String,
    pub contract: ContractExpr,
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `name = expr;` — an immutable binding.
    Def { name: String, expr: Expr, pos: Pos },
    /// A bare expression. The boolean records whether it was terminated by
    /// an explicit `;`: a semicolon-terminated final statement makes the
    /// enclosing block evaluate to void (statement position), while a bare
    /// trailing expression is the block's value.
    Expr(Expr, bool),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    /// `++`: string/list concatenation.
    Concat,
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    Void(Pos),
    Bool(bool, Pos),
    Num(i64, Pos),
    Str(String, Pos),
    Var(String, Pos),
    List(Vec<Expr>, Pos),
    /// `fun(a, b) { ... }`.
    Fun {
        params: Vec<String>,
        body: Rc<Vec<Stmt>>,
        pos: Pos,
    },
    /// `f(a, b, key = c)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        kwargs: Vec<(String, Expr)>,
        pos: Pos,
    },
    /// `if c then t [else e]` — branches are blocks or single statements.
    If {
        cond: Box<Expr>,
        then: Rc<Vec<Stmt>>,
        els: Option<Rc<Vec<Stmt>>>,
        pos: Pos,
    },
    /// `for x in e { ... }`.
    For {
        var: String,
        iter: Box<Expr>,
        body: Rc<Vec<Stmt>>,
        pos: Pos,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
        pos: Pos,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// A contract written in expression position (contracts are values and
    /// can be bound to names, enabling user-defined contract abbreviations).
    Contract(Box<ContractExpr>, Pos),
    /// `async e` — evaluate `e` with I/O builtins deferring into the
    /// interpreter's accumulated batch; yields a future.
    Async(Box<Expr>, Pos),
    /// `await e` — force a future: flush the accumulated batch in one
    /// scheduled submission and return the resolved value. Non-future
    /// operands pass through unchanged.
    Await(Box<Expr>, Pos),
}

impl Expr {
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Void(p)
            | Expr::Bool(_, p)
            | Expr::Num(_, p)
            | Expr::Str(_, p)
            | Expr::Var(_, p)
            | Expr::List(_, p)
            | Expr::Fun { pos: p, .. }
            | Expr::Call { pos: p, .. }
            | Expr::If { pos: p, .. }
            | Expr::For { pos: p, .. }
            | Expr::Unary { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::Contract(_, p)
            | Expr::Async(_, p)
            | Expr::Await(_, p) => *p,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Contract syntax (§2.2). Contracts are first-class: they appear in
/// `provide` declarations and may be bound to names.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractExpr {
    /// Flat kind predicates: `is_file`, `is_dir`, `is_bool`, ...
    IsFile,
    IsDir,
    IsPipe,
    IsBool,
    IsNum,
    IsString,
    IsList,
    IsFun,
    /// Postcondition `void` (no value returned).
    Void,
    /// `any`: no constraint.
    Any,
    /// `file(+read, +path, ...)` — file-kind capability with privileges.
    File(CapPrivs),
    /// `dir(+lookup with {...}, ...)`.
    Dir(CapPrivs),
    /// `socket(+sock-send, ...)`.
    Socket(CapPrivs),
    /// A pipe-factory capability.
    PipeFactory,
    /// A socket-factory capability with at most these privileges.
    SocketFactory(PrivSet),
    /// `native_wallet` (§3.1.4).
    NativeWallet,
    /// Any wallet.
    Wallet,
    /// Disjunction `c1 \/ c2`.
    Or(Vec<ContractExpr>),
    /// Conjunction `c1 && c2`.
    And(Vec<ContractExpr>),
    /// Function contract `{a : C1, b : C2} -> C3`.
    Func(Rc<FuncContract>),
    /// Bounded polymorphism: `forall X with {+p, ...} . C` (§2.4.2).
    Forall {
        var: String,
        bound: PrivSet,
        body: Box<ContractExpr>,
    },
    /// A contract variable occurrence (`X`) inside a `forall` body.
    Var(String),
    /// A named contract resolved from the environment at wrap time
    /// (user-defined abbreviations like `readonly`, or imported wallet
    /// contracts like `ocaml_wallet`).
    Named(String),
    /// A user-defined predicate: the named function is called with the
    /// value; contract holds if it returns `true`.
    Predicate(String),
}

/// A function contract: named argument preconditions plus a postcondition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncContract {
    /// `(arg name, contract)` pairs, positional order.
    pub args: Vec<(String, ContractExpr)>,
    /// Keyword-argument contracts (optional arguments like `stdout`).
    pub kwargs: Vec<(String, ContractExpr)>,
    /// The postcondition.
    pub result: ContractExpr,
}

/// Render a contract back to (approximately) its source form — used in
/// blame messages so violations cite the contract text.
pub fn contract_to_string(c: &ContractExpr) -> String {
    match c {
        ContractExpr::IsFile => "is_file".into(),
        ContractExpr::IsDir => "is_dir".into(),
        ContractExpr::IsPipe => "is_pipe".into(),
        ContractExpr::IsBool => "is_bool".into(),
        ContractExpr::IsNum => "is_num".into(),
        ContractExpr::IsString => "is_string".into(),
        ContractExpr::IsList => "is_list".into(),
        ContractExpr::IsFun => "is_fun".into(),
        ContractExpr::Void => "void".into(),
        ContractExpr::Any => "any".into(),
        ContractExpr::File(p) => format!("file{p}"),
        ContractExpr::Dir(p) => format!("dir{p}"),
        ContractExpr::Socket(p) => format!("socket{p}"),
        ContractExpr::PipeFactory => "pipe_factory".into(),
        ContractExpr::SocketFactory(p) => format!("socket_factory{p}"),
        ContractExpr::NativeWallet => "native_wallet".into(),
        ContractExpr::Wallet => "wallet".into(),
        ContractExpr::Or(cs) => cs
            .iter()
            .map(contract_to_string)
            .collect::<Vec<_>>()
            .join(" \\/ "),
        ContractExpr::And(cs) => cs
            .iter()
            .map(contract_to_string)
            .collect::<Vec<_>>()
            .join(" && "),
        ContractExpr::Func(fc) => {
            let args = fc
                .args
                .iter()
                .map(|(n, c)| format!("{n} : {}", contract_to_string(c)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{args}}} -> {}", contract_to_string(&fc.result))
        }
        ContractExpr::Forall { var, bound, body } => {
            format!("forall {var} with {bound} . {}", contract_to_string(body))
        }
        ContractExpr::Var(v) => v.clone(),
        ContractExpr::Named(n) => n.clone(),
        ContractExpr::Predicate(n) => format!("<predicate {n}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_cap::{Priv, PrivSet};

    #[test]
    fn contract_rendering() {
        let c = ContractExpr::Or(vec![
            ContractExpr::Dir(CapPrivs::of(PrivSet::of(&[Priv::Contents, Priv::Lookup]))),
            ContractExpr::File(CapPrivs::of(PrivSet::of(&[Priv::Path]))),
        ]);
        let s = contract_to_string(&c);
        assert!(s.contains("dir(+contents, +lookup)"));
        assert!(s.contains("\\/"));
        assert!(s.contains("file(+path)"));
    }

    #[test]
    fn func_contract_rendering() {
        let fc = FuncContract {
            args: vec![
                ("cur".into(), ContractExpr::Var("X".into())),
                (
                    "out".into(),
                    ContractExpr::File(CapPrivs::of(PrivSet::of(&[Priv::Append]))),
                ),
            ],
            kwargs: vec![],
            result: ContractExpr::Void,
        };
        let c = ContractExpr::Forall {
            var: "X".into(),
            bound: PrivSet::of(&[Priv::Lookup, Priv::Contents]),
            body: Box::new(ContractExpr::Func(Rc::new(fc))),
        };
        let s = contract_to_string(&c);
        assert!(s.starts_with("forall X with"));
        assert!(s.contains("cur : X"));
        assert!(s.contains("-> void"));
    }
}
