//! Batch-aware I/O for the SHILL runtime.
//!
//! The language builtins are "wrappers for the corresponding system calls"
//! (§2.1); the naive wrappers issue one kernel call per operation, so a
//! `read` of a large file or a `contents`+`stat` sweep pays the per-call
//! charging and MAC-context cost once per chunk or per name. These helpers
//! route the same operations through [`shill_kernel::Kernel::submit_batch`]
//! and, for pipelines with data dependencies, through the batch scheduler
//! ([`shill_kernel::Kernel::submit_scheduled`]) — observably equivalent
//! (same per-chunk MAC interposition, same errnos) but with one kernel
//! crossing per window, and with copies fused into single submissions via
//! slot references (`BatchArg::OutputOf`).
//!
//! Capability discipline is unchanged: callers perform the contract-guard
//! checks ([`GuardedCap::check`]) before reaching for the descriptor, and
//! the kernel still runs every DAC/MAC check per underlying operation.

use std::rc::Rc;

use shill_cap::{CapKind, Priv};
use shill_contracts::{CapError, CapResult, GuardedCap};
use shill_kernel::{BatchArg, BatchEntry, BatchOut, FailMode, Fd, Kernel, Pid, SyscallBatch};
use shill_vfs::{Errno, Stat, SysResult};

use crate::value::{FragKind, FutureCell, Value};

/// Chunk size used by vectored reads/writes (matches the sequential
/// wrappers' 64 KiB chunking).
const CHUNK: usize = 65536;
/// Chunks per submitted window: one kernel crossing charges for up to this
/// many chunk reads.
const WINDOW: usize = 16;

/// Map a fused fragment's failures back to the first real cause errno.
///
/// Within one scheduled batch a failed entry cancels its dependency cone:
/// the cone's slots complete with `ECANCELED`, an artifact of scheduling,
/// not a fault a sequential script could ever see. Resolving a fragment by
/// scanning its slots (or its completions in an arbitrary order) must
/// therefore prefer the lowest-slot *non*-`ECANCELED` errno — the root
/// cause — and fall back to `ECANCELED` only when every failed slot is a
/// cone artifact (the cause lies outside the fragment).
pub fn first_cause(errs: impl IntoIterator<Item = (usize, Errno)>) -> Option<Errno> {
    let mut cause: Option<(usize, Errno)> = None;
    let mut cone: Option<(usize, Errno)> = None;
    for (slot, e) in errs {
        let best = if e == Errno::ECANCELED {
            &mut cone
        } else {
            &mut cause
        };
        if best.is_none_or(|(s, _)| slot < s) {
            *best = Some((slot, e));
        }
    }
    cause.or(cone).map(|(_, e)| e)
}

/// Read a regular file to EOF from `off` (positional; does not disturb
/// the descriptor offset), submitting one batch per 1 MiB window instead of
/// one call per 64 KiB chunk.
pub fn read_from_fd(k: &mut Kernel, pid: Pid, fd: Fd, mut off: u64) -> SysResult<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let data = k
            .submit_single(
                pid,
                BatchEntry::Preadv {
                    fd: fd.into(),
                    offset: off,
                    lens: vec![CHUNK; WINDOW],
                },
            )?
            .into_data()?;
        let n = data.len();
        out.extend(data);
        off += n as u64;
        if n < CHUNK * WINDOW {
            return Ok(out);
        }
    }
}

/// Read a regular file to EOF from offset 0.
pub fn read_all_fd(k: &mut Kernel, pid: Pid, fd: Fd) -> SysResult<Vec<u8>> {
    read_from_fd(k, pid, fd, 0)
}

/// Overwrite a regular file (truncate + positional write) in one batch.
/// Takes the buffer by value so it moves into the entry without a copy.
/// `Abort` mode mirrors the sequential wrapper: a denied truncate stops the
/// write from running.
pub fn write_all_fd(k: &mut Kernel, pid: Pid, fd: Fd, data: Vec<u8>) -> SysResult<()> {
    let out = k.submit_batch(
        pid,
        &SyscallBatch::aborting(vec![
            BatchEntry::Ftruncate {
                fd: fd.into(),
                len: 0,
            },
            BatchEntry::Pwrite {
                fd: fd.into(),
                offset: 0,
                data: data.into(),
            },
        ]),
    )?;
    for r in out {
        r?;
    }
    Ok(())
}

/// `stat` every name in a directory with one kernel crossing — the batched
/// form of the `contents` + per-name `stat` loop. Per-name outcomes are
/// preserved (a denied or vanished entry yields its errno in that slot).
pub fn stat_names(
    k: &mut Kernel,
    pid: Pid,
    dirfd: Fd,
    names: &[String],
) -> SysResult<Vec<SysResult<Stat>>> {
    let entries: Vec<BatchEntry> = names
        .iter()
        .map(|n| BatchEntry::Stat {
            dirfd: Some(dirfd.into()),
            path: n.clone(),
            follow: false,
        })
        .collect();
    let out = k.submit_batch(pid, &SyscallBatch::new(entries))?;
    Ok(out
        .into_iter()
        .map(|r| r.and_then(BatchOut::into_stat))
        .collect())
}

/// Whether a capability's reads/writes can take the batched fast path: a
/// regular file with a live descriptor. Pipes, sockets, and devices keep
/// the sequential wrappers (their drain/EAGAIN semantics differ).
fn batchable_file(cap: &GuardedCap) -> Option<Fd> {
    if cap.kind() == CapKind::File {
        cap.raw.fd
    } else {
        None
    }
}

/// `read` builtin fast path: guard-checked, then batched for regular files,
/// falling back to the sequential wrapper otherwise.
pub fn cap_read_all(k: &mut Kernel, pid: Pid, cap: &GuardedCap) -> CapResult<Vec<u8>> {
    cap.check(Priv::Read)?;
    match batchable_file(cap) {
        Some(fd) => Ok(read_all_fd(k, pid, fd)?),
        None => Ok(cap.raw.read_all(k, pid)?),
    }
}

/// `write` builtin fast path. Takes the buffer by value (the batched path
/// moves it into the entry; the fallback borrows it).
pub fn cap_write_all(k: &mut Kernel, pid: Pid, cap: &GuardedCap, data: Vec<u8>) -> CapResult<()> {
    cap.check(Priv::Write)?;
    match batchable_file(cap) {
        Some(fd) => Ok(write_all_fd(k, pid, fd, data)?),
        None => Ok(cap.raw.write_all(k, pid, &data)?),
    }
}

/// cp-style copy between two file capabilities, fused onto the scheduler's
/// pipeline path: each window is ONE submission —
/// `Preadv(src) → [Ftruncate(dst) →] Pwrite(dst, data: OutputOf(read))` —
/// with the read's bytes flowing to the write through a slot reference
/// instead of surfacing to the runtime between two submissions. The chain
/// runs in `Abort` mode with the truncate ordered after the first read, so
/// a denied read leaves the destination untouched and a denied truncate
/// cancels the write, exactly like the two-submission form.
pub fn cap_copy(k: &mut Kernel, pid: Pid, src: &GuardedCap, dst: &GuardedCap) -> CapResult<usize> {
    src.check(Priv::Read)?;
    dst.check(Priv::Write)?;
    // Self-copy (same vnode, via any alias or hard link) must not take the
    // windowed pipeline: its first-window truncate would cut off source
    // bytes beyond the window before they were read. Read-all-then-write
    // preserves the pre-pipeline lossless behaviour.
    let same_node = src.raw.node.is_some() && src.raw.node == dst.raw.node;
    let (Some(sfd), Some(dfd)) = (batchable_file(src), batchable_file(dst)) else {
        // Pipes/sockets/devices: sequential wrappers, as before.
        let data = cap_read_all(k, pid, src)?;
        let n = data.len();
        cap_write_all(k, pid, dst, data)?;
        return Ok(n);
    };
    if same_node {
        let data = cap_read_all(k, pid, src)?;
        let n = data.len();
        cap_write_all(k, pid, dst, data)?;
        return Ok(n);
    }
    Ok(copy_windows(k, pid, sfd, dfd, 0).map_err(CapError::Sys)? as usize)
}

/// The windowed copy pipeline from `start` to EOF: one scheduled
/// submission per 1 MiB window, read data flowing to the write through a
/// slot reference. The first window (`start == 0`) truncates the
/// destination — after the read, so a failed read cancels it. Returns the
/// total bytes copied *including* `start` (i.e. the destination length).
/// Shared by [`cap_copy`] and the deferred-copy continuation, which picks
/// up at window two after the accumulated batch carried window one.
pub(crate) fn copy_windows(
    k: &mut Kernel,
    pid: Pid,
    sfd: Fd,
    dfd: Fd,
    start: u64,
) -> SysResult<u64> {
    let mut off = start;
    loop {
        let mut batch = SyscallBatch::aborting(vec![BatchEntry::Preadv {
            fd: sfd.into(),
            offset: off,
            lens: vec![CHUNK; WINDOW],
        }]);
        let mut prev = 0;
        if off == 0 {
            // First window truncates the destination — after the read, so
            // a failed read cancels it (dependency cone, not "every later
            // entry").
            prev = batch.push(BatchEntry::Ftruncate {
                fd: dfd.into(),
                len: 0,
            });
            batch.deps.push((prev, 0));
        }
        let wr = batch.push(BatchEntry::Pwrite {
            fd: dfd.into(),
            offset: off,
            data: BatchArg::OutputOf(0),
        });
        if prev != 0 {
            batch.deps.push((wr, prev));
        }
        // Consume the completions by value: the window's payload moves
        // out of the read slot exactly once, no clones. Failures resolve
        // through `first_cause`, so a cancellation cone (`ECANCELED`)
        // never masks the root-cause errno no matter what order the
        // completion queue delivered them in.
        let completions = k.submit_scheduled(pid, &batch)?;
        let mut read: Option<Vec<u8>> = None;
        let mut errs: Vec<(usize, Errno)> = Vec::new();
        for c in completions {
            match c.out {
                Ok(out) if c.slot == 0 => read = Some(out.into_data()?),
                Ok(_) => {}
                Err(e) => errs.push((c.slot, e)),
            }
        }
        if let Some(e) = first_cause(errs) {
            return Err(e);
        }
        let n = read.map(|d| d.len()).ok_or(Errno::EINVAL)?;
        off += n as u64;
        if n < CHUNK * WINDOW {
            return Ok(off);
        }
    }
}

/// The interpreter's accumulated batch: inside `async`, the I/O builtins
/// enqueue DAG fragments here instead of submitting private batches, and
/// the first `await` flushes the whole accumulation through ONE
/// [`Kernel::submit_scheduled`] submission, resolving every future from
/// the completions.
///
/// Guard checks run at *enqueue* time (a violation aborts before anything
/// joins the batch); errnos surface at *resolution* time as the same
/// catchable syserrors the sequential wrappers produce. Fragments from
/// distinct `async` expressions share no edges, so one fragment's failure
/// never cancels a sibling — within a fragment, the same declared/data
/// edges as the eager paths make a failure cancel exactly its own cone.
pub struct DeferredAcc {
    batch: SyscallBatch,
    futures: Vec<Rc<FutureCell>>,
}

impl Default for DeferredAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl DeferredAcc {
    pub fn new() -> DeferredAcc {
        // Abort mode scopes cancellation to declared/data cones. (With no
        // edges at all it would degrade to the legacy `&&`-chain — the
        // flush downgrades such a batch to `Continue`, which is equivalent
        // for an edge-free DAG.)
        let mut batch = SyscallBatch::new(Vec::new());
        batch.fail_mode = FailMode::Abort;
        DeferredAcc {
            batch,
            futures: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.futures.is_empty()
    }

    /// Number of entries accumulated so far (test observability).
    pub fn pending_entries(&self) -> usize {
        self.batch.entries.len()
    }

    fn push_future(&mut self, kind: FragKind) -> Rc<FutureCell> {
        let fut = FutureCell::pending(kind);
        self.futures.push(Rc::clone(&fut));
        fut
    }

    /// Defer a `read`: the same first `Preadv` window the eager path
    /// submits (so per-chunk fault keys match); resolution continues past
    /// a full window eagerly. `None` means the capability is not
    /// batchable (pipe/socket/device) — the caller runs the sequential
    /// wrapper instead.
    pub fn defer_read(&mut self, cap: &GuardedCap) -> CapResult<Option<Rc<FutureCell>>> {
        cap.check(Priv::Read)?;
        let Some(fd) = batchable_file(cap) else {
            return Ok(None);
        };
        let slot = self.batch.push(BatchEntry::Preadv {
            fd: fd.into(),
            offset: 0,
            lens: vec![CHUNK; WINDOW],
        });
        Ok(Some(self.push_future(FragKind::Read { slot, fd })))
    }

    /// Defer a `write`: truncate + positional write, the write ordered
    /// after the truncate exactly like [`write_all_fd`]'s aborting pair.
    pub fn defer_write(
        &mut self,
        cap: &GuardedCap,
        data: Vec<u8>,
    ) -> CapResult<Option<Rc<FutureCell>>> {
        cap.check(Priv::Write)?;
        let Some(fd) = batchable_file(cap) else {
            return Ok(None);
        };
        let tr = self.batch.push(BatchEntry::Ftruncate {
            fd: fd.into(),
            len: 0,
        });
        let wr = self.batch.push(BatchEntry::Pwrite {
            fd: fd.into(),
            offset: 0,
            data: data.into(),
        });
        self.batch.deps.push((wr, tr));
        Ok(Some(self.push_future(FragKind::Write { slots: [tr, wr] })))
    }

    /// Defer a copy: the first `copy_windows` window as a fragment —
    /// `Preadv(src) → Ftruncate(dst) → Pwrite(dst, OutputOf(read))`, the
    /// read's bytes flowing to the write through the slot reference —
    /// with resolution continuing from window two eagerly. `None` for
    /// non-batchable endpoints or a self-copy (same vnode), which must
    /// not take the windowed pipeline (see [`cap_copy`]).
    pub fn defer_copy(
        &mut self,
        src: &GuardedCap,
        dst: &GuardedCap,
    ) -> CapResult<Option<Rc<FutureCell>>> {
        src.check(Priv::Read)?;
        dst.check(Priv::Write)?;
        let (Some(sfd), Some(dfd)) = (batchable_file(src), batchable_file(dst)) else {
            return Ok(None);
        };
        if src.raw.node.is_some() && src.raw.node == dst.raw.node {
            return Ok(None);
        }
        let rd = self.batch.push(BatchEntry::Preadv {
            fd: sfd.into(),
            offset: 0,
            lens: vec![CHUNK; WINDOW],
        });
        let tr = self.batch.push(BatchEntry::Ftruncate {
            fd: dfd.into(),
            len: 0,
        });
        self.batch.deps.push((tr, rd));
        let wr = self.batch.push(BatchEntry::Pwrite {
            fd: dfd.into(),
            offset: 0,
            data: BatchArg::OutputOf(rd),
        });
        self.batch.deps.push((wr, tr));
        Ok(Some(self.push_future(FragKind::Copy {
            first_slot: rd,
            sfd,
            dfd,
        })))
    }

    /// Defer the `dir_stats` sweep: the readdir runs eagerly (its name
    /// list orders the fragment), the per-name `fstatat`s join the
    /// accumulated batch.
    pub fn defer_dir_stats(
        &mut self,
        k: &mut Kernel,
        pid: Pid,
        dir: &GuardedCap,
    ) -> CapResult<Rc<FutureCell>> {
        dir.check(Priv::Contents)?;
        dir.check(Priv::Lookup)?;
        dir.check(Priv::Stat)?;
        let dirfd = dir.raw.fd.ok_or(CapError::Sys(Errno::EBADF))?;
        let names = k.readdirfd(pid, dirfd)?;
        let first_slot = self.batch.entries.len();
        for n in &names {
            self.batch.push(BatchEntry::Stat {
                dirfd: Some(dirfd.into()),
                path: n.clone(),
                follow: false,
            });
        }
        Ok(self.push_future(FragKind::DirStats { names, first_slot }))
    }

    /// Defer `slurp_many`: one `Preadv` window per file, resolving to a
    /// list whose elements are independently contents strings or
    /// syserrors. `None` if any capability is non-batchable — the caller
    /// falls back to per-file sequential reads.
    pub fn defer_slurp(&mut self, caps: &[Rc<GuardedCap>]) -> CapResult<Option<Rc<FutureCell>>> {
        for c in caps {
            c.check(Priv::Read)?;
        }
        let mut fds = Vec::with_capacity(caps.len());
        for c in caps {
            match batchable_file(c) {
                Some(fd) => fds.push(fd),
                None => return Ok(None),
            }
        }
        let reads = fds
            .into_iter()
            .map(|fd| {
                let slot = self.batch.push(BatchEntry::Preadv {
                    fd: fd.into(),
                    offset: 0,
                    lens: vec![CHUNK; WINDOW],
                });
                (slot, fd)
            })
            .collect();
        Ok(Some(self.push_future(FragKind::Slurp { reads })))
    }

    /// Hand the batch to a caller that wants to step it wave by wave
    /// (`select`). The futures keep their slot references; the caller
    /// resolves them against the run's slot table when done.
    pub fn into_parts(self) -> (SyscallBatch, Vec<Rc<FutureCell>>) {
        let DeferredAcc { mut batch, futures } = self;
        demote_structureless(&mut batch);
        (batch, futures)
    }
}

/// An edge-free Abort batch would take the legacy `&&`-chain path
/// (every entry serialized behind its predecessor); independent deferred
/// fragments must stay independent, so such a batch runs as `Continue` —
/// identical semantics when there is nothing to cancel through.
fn demote_structureless(batch: &mut SyscallBatch) {
    if batch.deps.is_empty() && !batch.uses_slots() {
        batch.fail_mode = FailMode::Continue;
    }
}

/// Flush the accumulated batch: ONE scheduled submission, then resolve
/// every pending future from the completions. A submission-level refusal
/// (e.g. an injected charge fault — pid-keyed, so the sequential twin's
/// per-call submissions refuse identically) resolves every future to that
/// errno.
pub fn flush_deferred(k: &mut Kernel, pid: Pid, acc: DeferredAcc) {
    let DeferredAcc { mut batch, futures } = acc;
    if futures.is_empty() {
        return;
    }
    demote_structureless(&mut batch);
    let completions = match k.submit_scheduled(pid, &batch) {
        Ok(c) => c,
        Err(e) => {
            for f in futures {
                f.set_ready(Value::SysErr(e));
            }
            return;
        }
    };
    // Move the completions into a slot-indexed table; each fragment then
    // moves its payloads out exactly once — no clones of window data.
    let mut slots: Vec<SysResult<BatchOut>> = vec![Err(Errno::EINVAL); batch.entries.len()];
    for c in completions {
        slots[c.slot] = c.out;
    }
    resolve_futures(k, pid, &mut slots, &futures);
}

/// Resolve every still-pending future in `futures` against a filled slot
/// table (shared by [`flush_deferred`] and the `select` builtin's stepped
/// path).
pub fn resolve_futures(
    k: &mut Kernel,
    pid: Pid,
    slots: &mut [SysResult<BatchOut>],
    futures: &[Rc<FutureCell>],
) {
    for f in futures {
        if let Some(kind) = f.take_frag() {
            let v = resolve_frag(k, pid, slots, kind);
            f.set_ready(v);
        }
    }
}

fn take_slot(slots: &mut [SysResult<BatchOut>], i: usize) -> SysResult<BatchOut> {
    std::mem::replace(&mut slots[i], Err(Errno::EINVAL))
}

/// A deferred read's resolution: the accumulated window's bytes, continued
/// eagerly from the window boundary when the window came back full — the
/// continuation issues the identical `Preadv` windows the eager
/// [`read_from_fd`] loop would, so per-chunk fault keys line up.
fn resolve_read(
    k: &mut Kernel,
    pid: Pid,
    slots: &mut [SysResult<BatchOut>],
    slot: usize,
    fd: Fd,
) -> SysResult<Vec<u8>> {
    let mut data = take_slot(slots, slot)?.into_data()?;
    if data.len() == CHUNK * WINDOW {
        let rest = read_from_fd(k, pid, fd, data.len() as u64)?;
        data.extend(rest);
    }
    Ok(data)
}

fn lossy(data: Vec<u8>) -> Value {
    Value::str(String::from_utf8_lossy(&data).into_owned())
}

/// Map one fragment's slots to the value its sequential twin would
/// produce. Failures resolve through [`first_cause`], so a cancellation
/// cone never masks the root-cause errno.
fn resolve_frag(
    k: &mut Kernel,
    pid: Pid,
    slots: &mut [SysResult<BatchOut>],
    kind: FragKind,
) -> Value {
    match kind {
        FragKind::Read { slot, fd } => match resolve_read(k, pid, slots, slot, fd) {
            Ok(d) => lossy(d),
            Err(e) => Value::SysErr(e),
        },
        FragKind::Write { slots: ws } => {
            let errs = ws
                .into_iter()
                .filter_map(|s| take_slot(slots, s).err().map(|e| (s, e)));
            match first_cause(errs) {
                Some(e) => Value::SysErr(e),
                None => Value::Void,
            }
        }
        FragKind::Copy {
            first_slot,
            sfd,
            dfd,
        } => {
            let mut errs = Vec::new();
            let mut len = None;
            for s in first_slot..first_slot + 3 {
                match take_slot(slots, s) {
                    Ok(out) if s == first_slot => match out.into_data() {
                        Ok(d) => len = Some(d.len()),
                        Err(e) => errs.push((s, e)),
                    },
                    Ok(_) => {}
                    Err(e) => errs.push((s, e)),
                }
            }
            if let Some(e) = first_cause(errs) {
                return Value::SysErr(e);
            }
            let Some(n) = len else {
                return Value::SysErr(Errno::EINVAL);
            };
            if n < CHUNK * WINDOW {
                return Value::Num(n as i64);
            }
            match copy_windows(k, pid, sfd, dfd, n as u64) {
                Ok(total) => Value::Num(total as i64),
                Err(e) => Value::SysErr(e),
            }
        }
        FragKind::DirStats { names, first_slot } => {
            // Same shape as the eager `dir_stats`: `[name, size]` pairs in
            // directory order, names whose stat failed skipped.
            let items = names
                .into_iter()
                .enumerate()
                .filter_map(|(i, name)| {
                    take_slot(slots, first_slot + i)
                        .and_then(BatchOut::into_stat)
                        .ok()
                        .map(|st| Value::list(vec![Value::str(name), Value::Num(st.size as i64)]))
                })
                .collect();
            Value::list(items)
        }
        FragKind::Slurp { reads } => Value::list(
            reads
                .into_iter()
                .map(|(slot, fd)| match resolve_read(k, pid, slots, slot, fd) {
                    Ok(d) => lossy(d),
                    Err(e) => Value::SysErr(e),
                })
                .collect(),
        ),
    }
}

/// The `contents`+`stat` sweep over a directory capability: one `readdir`,
/// then one batch of `fstatat`s relative to the directory descriptor.
/// Returns `(name, stat-result)` pairs in directory order.
pub fn cap_dir_stats(
    k: &mut Kernel,
    pid: Pid,
    dir: &GuardedCap,
) -> CapResult<Vec<(String, SysResult<Stat>)>> {
    dir.check(Priv::Contents)?;
    dir.check(Priv::Lookup)?;
    dir.check(Priv::Stat)?;
    let dirfd = dir.raw.fd.ok_or(CapError::Sys(Errno::EBADF))?;
    let names = k.readdirfd(pid, dirfd)?;
    let stats = stat_names(k, pid, dirfd, &names)?;
    Ok(names.into_iter().zip(stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_cap::RawCap;
    use shill_vfs::{Cred, Gid, Mode, Uid};

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.fs.put_file(
            "/home/u/big.bin",
            &vec![7u8; 200_000],
            Mode(0o644),
            Uid(100),
            Gid(100),
        )
        .unwrap();
        k.fs.put_file("/home/u/a.txt", b"alpha", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        k.fs.put_file("/home/u/b.txt", b"bb", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        let pid = k.spawn_user(Cred::user(100));
        (k, pid)
    }

    #[test]
    fn batched_read_matches_sequential() {
        let (mut k, pid) = setup();
        let cap = RawCap::open_path(&mut k, pid, "/home/u/big.bin").unwrap();
        let gc = GuardedCap::unguarded(cap);
        let batched = cap_read_all(&mut k, pid, &gc).unwrap();
        let sequential = gc.raw.read_all(&mut k, pid).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(batched.len(), 200_000);
    }

    #[test]
    fn batched_write_roundtrip_and_copy() {
        let (mut k, pid) = setup();
        let a = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/a.txt").unwrap());
        let b = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/b.txt").unwrap());
        cap_write_all(&mut k, pid, &a, b"rewritten".to_vec()).unwrap();
        assert_eq!(cap_read_all(&mut k, pid, &a).unwrap(), b"rewritten");
        let n = cap_copy(&mut k, pid, &a, &b).unwrap();
        assert_eq!(n, 9);
        assert_eq!(cap_read_all(&mut k, pid, &b).unwrap(), b"rewritten");
    }

    #[test]
    fn fused_copy_is_one_submission_per_window() {
        let (mut k, pid) = setup();
        let src = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/big.bin").unwrap());
        k.fs.put_file("/home/u/dst.bin", b"", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        let dst = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/dst.bin").unwrap());
        k.stats.reset();
        let n = cap_copy(&mut k, pid, &src, &dst).unwrap();
        assert_eq!(n, 200_000);
        let st = k.stats.snapshot();
        // 200,000 bytes fit in one 1 MiB window: read + truncate + write
        // fused into a single submission, data flowing via a slot link.
        assert_eq!(st.batches, 1, "one submission for the whole copy");
        assert_eq!(st.slot_links, 1, "read data flowed to the write in-batch");
        assert!(st.sched_waves >= 2, "the pipeline ran as dependency waves");
        assert_eq!(cap_read_all(&mut k, pid, &dst).unwrap(), vec![7u8; 200_000]);
    }

    #[test]
    fn self_copy_larger_than_one_window_is_lossless() {
        // Regression: the windowed pipeline's first-window truncate must
        // not destroy unread source bytes when src and dst alias the same
        // vnode (copy_file("/p/big", "/p/big")).
        let (mut k, pid) = setup();
        let payload: Vec<u8> = (0..(CHUNK * WINDOW + 300_000))
            .map(|i| (i % 251) as u8)
            .collect();
        k.fs.put_file(
            "/home/u/self.bin",
            &payload,
            Mode(0o644),
            Uid(100),
            Gid(100),
        )
        .unwrap();
        let a = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/self.bin").unwrap());
        let b = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/self.bin").unwrap());
        let n = cap_copy(&mut k, pid, &a, &b).unwrap();
        assert_eq!(n, payload.len());
        assert_eq!(cap_read_all(&mut k, pid, &a).unwrap(), payload);
    }

    #[test]
    fn dir_stats_sweep_is_batched() {
        let (mut k, pid) = setup();
        let dir = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u").unwrap());
        k.stats.reset();
        let pairs = cap_dir_stats(&mut k, pid, &dir).unwrap();
        assert_eq!(pairs.len(), 3);
        let sizes: Vec<u64> = pairs
            .iter()
            .map(|(_, st)| st.as_ref().map(|s| s.size).unwrap_or(0))
            .collect();
        assert!(sizes.contains(&5) && sizes.contains(&2) && sizes.contains(&200_000));
        let st = k.stats.snapshot();
        assert_eq!(st.batches, 1, "one batch for the whole stat sweep");
        // readdir (1 sequential charge) + one batch charge.
        assert_eq!(st.charge_calls, 2);
    }

    #[test]
    fn first_cause_prefers_real_errnos_over_the_cancellation_cone() {
        // Regression (ISSUE 8 satellite): resolving a fragment must not
        // report the cone artifact even when it is encountered first —
        // whether because the cone slot is numerically lower or because a
        // completion queue delivered it earlier.
        assert_eq!(
            first_cause([(2, Errno::ECANCELED), (5, Errno::EIO)]),
            Some(Errno::EIO)
        );
        assert_eq!(
            first_cause([(7, Errno::EIO), (1, Errno::ENOSPC)]),
            Some(Errno::ENOSPC),
            "lowest failing slot is the cause, not discovery order"
        );
        assert_eq!(
            first_cause([(3, Errno::ECANCELED)]),
            Some(Errno::ECANCELED),
            "an all-cone fragment has nothing better to report"
        );
        assert_eq!(first_cause([]), None);
    }

    #[test]
    fn copy_surfaces_the_cause_errno_not_the_cone() {
        use shill_kernel::{FaultPlane, FaultSite};
        let (mut k, pid) = setup();
        let src = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/big.bin").unwrap());
        k.fs.put_file("/home/u/dst.bin", b"", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        let dst = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/dst.bin").unwrap());
        // Fail the second batch entry to execute — the truncate — so the
        // dependent write completes as a cancellation-cone ECANCELED. The
        // copy must surface the truncate's EIO, not the artifact.
        k.set_fault_plane(Some(FaultPlane::seeded(1, 0, &[]).fail_on(
            FaultSite::Batch,
            2,
            Errno::EIO,
        )));
        match cap_copy(&mut k, pid, &src, &dst) {
            Err(CapError::Sys(e)) => assert_eq!(e, Errno::EIO, "cause errno, not ECANCELED"),
            other => panic!("expected the injected EIO, got {other:?}"),
        }
        let st = k.stats_snapshot();
        assert_eq!(st.faults_injected, 1);
        assert!(st.sched_cancelled_cone >= 1, "the write was cone-cancelled");
    }

    #[test]
    fn guard_violation_blocks_before_any_syscall() {
        let (mut k, pid) = setup();
        let raw = RawCap::open_path(&mut k, pid, "/home/u/a.txt").unwrap();
        let sealed = GuardedCap::unguarded(raw).restrict(
            std::sync::Arc::new(shill_cap::CapPrivs::of(shill_cap::PrivSet::of(&[
                Priv::Stat,
            ]))),
            shill_contracts::Blame::new("t", "t", "file(+stat)"),
        );
        assert!(matches!(
            cap_read_all(&mut k, pid, &sealed),
            Err(CapError::Violation(_))
        ));
        assert!(matches!(
            cap_copy(&mut k, pid, &sealed, &sealed),
            Err(CapError::Violation(_))
        ));
    }
}
