//! Batch-aware I/O for the SHILL runtime.
//!
//! The language builtins are "wrappers for the corresponding system calls"
//! (§2.1); the naive wrappers issue one kernel call per operation, so a
//! `read` of a large file or a `contents`+`stat` sweep pays the per-call
//! charging and MAC-context cost once per chunk or per name. These helpers
//! route the same operations through [`shill_kernel::Kernel::submit_batch`]
//! and, for pipelines with data dependencies, through the batch scheduler
//! ([`shill_kernel::Kernel::submit_scheduled`]) — observably equivalent
//! (same per-chunk MAC interposition, same errnos) but with one kernel
//! crossing per window, and with copies fused into single submissions via
//! slot references (`BatchArg::OutputOf`).
//!
//! Capability discipline is unchanged: callers perform the contract-guard
//! checks ([`GuardedCap::check`]) before reaching for the descriptor, and
//! the kernel still runs every DAC/MAC check per underlying operation.

use shill_cap::{CapKind, Priv};
use shill_contracts::{CapError, CapResult, GuardedCap};
use shill_kernel::{BatchArg, BatchEntry, BatchOut, Fd, Kernel, Pid, SyscallBatch};
use shill_vfs::{Errno, Stat, SysResult};

/// Chunk size used by vectored reads/writes (matches the sequential
/// wrappers' 64 KiB chunking).
const CHUNK: usize = 65536;
/// Chunks per submitted window: one kernel crossing charges for up to this
/// many chunk reads.
const WINDOW: usize = 16;

/// Read a regular file to EOF from offset 0 (positional; does not disturb
/// the descriptor offset), submitting one batch per 1 MiB window instead of
/// one call per 64 KiB chunk.
pub fn read_all_fd(k: &mut Kernel, pid: Pid, fd: Fd) -> SysResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut off = 0u64;
    loop {
        let data = k
            .submit_single(
                pid,
                BatchEntry::Preadv {
                    fd: fd.into(),
                    offset: off,
                    lens: vec![CHUNK; WINDOW],
                },
            )?
            .into_data()?;
        let n = data.len();
        out.extend(data);
        off += n as u64;
        if n < CHUNK * WINDOW {
            return Ok(out);
        }
    }
}

/// Overwrite a regular file (truncate + positional write) in one batch.
/// Takes the buffer by value so it moves into the entry without a copy.
/// `Abort` mode mirrors the sequential wrapper: a denied truncate stops the
/// write from running.
pub fn write_all_fd(k: &mut Kernel, pid: Pid, fd: Fd, data: Vec<u8>) -> SysResult<()> {
    let out = k.submit_batch(
        pid,
        &SyscallBatch::aborting(vec![
            BatchEntry::Ftruncate {
                fd: fd.into(),
                len: 0,
            },
            BatchEntry::Pwrite {
                fd: fd.into(),
                offset: 0,
                data: data.into(),
            },
        ]),
    )?;
    for r in out {
        r?;
    }
    Ok(())
}

/// `stat` every name in a directory with one kernel crossing — the batched
/// form of the `contents` + per-name `stat` loop. Per-name outcomes are
/// preserved (a denied or vanished entry yields its errno in that slot).
pub fn stat_names(
    k: &mut Kernel,
    pid: Pid,
    dirfd: Fd,
    names: &[String],
) -> SysResult<Vec<SysResult<Stat>>> {
    let entries: Vec<BatchEntry> = names
        .iter()
        .map(|n| BatchEntry::Stat {
            dirfd: Some(dirfd.into()),
            path: n.clone(),
            follow: false,
        })
        .collect();
    let out = k.submit_batch(pid, &SyscallBatch::new(entries))?;
    Ok(out
        .into_iter()
        .map(|r| r.and_then(BatchOut::into_stat))
        .collect())
}

/// Whether a capability's reads/writes can take the batched fast path: a
/// regular file with a live descriptor. Pipes, sockets, and devices keep
/// the sequential wrappers (their drain/EAGAIN semantics differ).
fn batchable_file(cap: &GuardedCap) -> Option<Fd> {
    if cap.kind() == CapKind::File {
        cap.raw.fd
    } else {
        None
    }
}

/// `read` builtin fast path: guard-checked, then batched for regular files,
/// falling back to the sequential wrapper otherwise.
pub fn cap_read_all(k: &mut Kernel, pid: Pid, cap: &GuardedCap) -> CapResult<Vec<u8>> {
    cap.check(Priv::Read)?;
    match batchable_file(cap) {
        Some(fd) => Ok(read_all_fd(k, pid, fd)?),
        None => Ok(cap.raw.read_all(k, pid)?),
    }
}

/// `write` builtin fast path. Takes the buffer by value (the batched path
/// moves it into the entry; the fallback borrows it).
pub fn cap_write_all(k: &mut Kernel, pid: Pid, cap: &GuardedCap, data: Vec<u8>) -> CapResult<()> {
    cap.check(Priv::Write)?;
    match batchable_file(cap) {
        Some(fd) => Ok(write_all_fd(k, pid, fd, data)?),
        None => Ok(cap.raw.write_all(k, pid, &data)?),
    }
}

/// cp-style copy between two file capabilities, fused onto the scheduler's
/// pipeline path: each window is ONE submission —
/// `Preadv(src) → [Ftruncate(dst) →] Pwrite(dst, data: OutputOf(read))` —
/// with the read's bytes flowing to the write through a slot reference
/// instead of surfacing to the runtime between two submissions. The chain
/// runs in `Abort` mode with the truncate ordered after the first read, so
/// a denied read leaves the destination untouched and a denied truncate
/// cancels the write, exactly like the two-submission form.
pub fn cap_copy(k: &mut Kernel, pid: Pid, src: &GuardedCap, dst: &GuardedCap) -> CapResult<usize> {
    src.check(Priv::Read)?;
    dst.check(Priv::Write)?;
    // Self-copy (same vnode, via any alias or hard link) must not take the
    // windowed pipeline: its first-window truncate would cut off source
    // bytes beyond the window before they were read. Read-all-then-write
    // preserves the pre-pipeline lossless behaviour.
    let same_node = src.raw.node.is_some() && src.raw.node == dst.raw.node;
    let (Some(sfd), Some(dfd)) = (batchable_file(src), batchable_file(dst)) else {
        // Pipes/sockets/devices: sequential wrappers, as before.
        let data = cap_read_all(k, pid, src)?;
        let n = data.len();
        cap_write_all(k, pid, dst, data)?;
        return Ok(n);
    };
    if same_node {
        let data = cap_read_all(k, pid, src)?;
        let n = data.len();
        cap_write_all(k, pid, dst, data)?;
        return Ok(n);
    }
    let mut off = 0u64;
    loop {
        let mut batch = SyscallBatch::aborting(vec![BatchEntry::Preadv {
            fd: sfd.into(),
            offset: off,
            lens: vec![CHUNK; WINDOW],
        }]);
        let mut prev = 0;
        if off == 0 {
            // First window truncates the destination — after the read, so
            // a failed read cancels it (dependency cone, not "every later
            // entry").
            prev = batch.push(BatchEntry::Ftruncate {
                fd: dfd.into(),
                len: 0,
            });
            batch.deps.push((prev, 0));
        }
        let wr = batch.push(BatchEntry::Pwrite {
            fd: dfd.into(),
            offset: off,
            data: BatchArg::OutputOf(0),
        });
        if prev != 0 {
            batch.deps.push((wr, prev));
        }
        // Consume the completions by value: the window's payload moves
        // out of the read slot exactly once, no clones. A real failure
        // always precedes its cancellation cone in completion order, so
        // returning the first error reports the root cause.
        let completions = k.submit_scheduled(pid, &batch).map_err(CapError::Sys)?;
        let mut read: Option<Vec<u8>> = None;
        for c in completions {
            match c.out {
                Ok(out) if c.slot == 0 => read = Some(out.into_data()?),
                Ok(_) => {}
                Err(e) => return Err(CapError::Sys(e)),
            }
        }
        let n = read.map(|d| d.len()).ok_or(CapError::Sys(Errno::EINVAL))?;
        off += n as u64;
        if n < CHUNK * WINDOW {
            return Ok(off as usize);
        }
    }
}

/// The `contents`+`stat` sweep over a directory capability: one `readdir`,
/// then one batch of `fstatat`s relative to the directory descriptor.
/// Returns `(name, stat-result)` pairs in directory order.
pub fn cap_dir_stats(
    k: &mut Kernel,
    pid: Pid,
    dir: &GuardedCap,
) -> CapResult<Vec<(String, SysResult<Stat>)>> {
    dir.check(Priv::Contents)?;
    dir.check(Priv::Lookup)?;
    dir.check(Priv::Stat)?;
    let dirfd = dir.raw.fd.ok_or(CapError::Sys(Errno::EBADF))?;
    let names = k.readdirfd(pid, dirfd)?;
    let stats = stat_names(k, pid, dirfd, &names)?;
    Ok(names.into_iter().zip(stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shill_cap::RawCap;
    use shill_vfs::{Cred, Gid, Mode, Uid};

    fn setup() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.fs.put_file(
            "/home/u/big.bin",
            &vec![7u8; 200_000],
            Mode(0o644),
            Uid(100),
            Gid(100),
        )
        .unwrap();
        k.fs.put_file("/home/u/a.txt", b"alpha", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        k.fs.put_file("/home/u/b.txt", b"bb", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        let pid = k.spawn_user(Cred::user(100));
        (k, pid)
    }

    #[test]
    fn batched_read_matches_sequential() {
        let (mut k, pid) = setup();
        let cap = RawCap::open_path(&mut k, pid, "/home/u/big.bin").unwrap();
        let gc = GuardedCap::unguarded(cap);
        let batched = cap_read_all(&mut k, pid, &gc).unwrap();
        let sequential = gc.raw.read_all(&mut k, pid).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(batched.len(), 200_000);
    }

    #[test]
    fn batched_write_roundtrip_and_copy() {
        let (mut k, pid) = setup();
        let a = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/a.txt").unwrap());
        let b = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/b.txt").unwrap());
        cap_write_all(&mut k, pid, &a, b"rewritten".to_vec()).unwrap();
        assert_eq!(cap_read_all(&mut k, pid, &a).unwrap(), b"rewritten");
        let n = cap_copy(&mut k, pid, &a, &b).unwrap();
        assert_eq!(n, 9);
        assert_eq!(cap_read_all(&mut k, pid, &b).unwrap(), b"rewritten");
    }

    #[test]
    fn fused_copy_is_one_submission_per_window() {
        let (mut k, pid) = setup();
        let src = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/big.bin").unwrap());
        k.fs.put_file("/home/u/dst.bin", b"", Mode(0o644), Uid(100), Gid(100))
            .unwrap();
        let dst = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/dst.bin").unwrap());
        k.stats.reset();
        let n = cap_copy(&mut k, pid, &src, &dst).unwrap();
        assert_eq!(n, 200_000);
        let st = k.stats.snapshot();
        // 200,000 bytes fit in one 1 MiB window: read + truncate + write
        // fused into a single submission, data flowing via a slot link.
        assert_eq!(st.batches, 1, "one submission for the whole copy");
        assert_eq!(st.slot_links, 1, "read data flowed to the write in-batch");
        assert!(st.sched_waves >= 2, "the pipeline ran as dependency waves");
        assert_eq!(cap_read_all(&mut k, pid, &dst).unwrap(), vec![7u8; 200_000]);
    }

    #[test]
    fn self_copy_larger_than_one_window_is_lossless() {
        // Regression: the windowed pipeline's first-window truncate must
        // not destroy unread source bytes when src and dst alias the same
        // vnode (copy_file("/p/big", "/p/big")).
        let (mut k, pid) = setup();
        let payload: Vec<u8> = (0..(CHUNK * WINDOW + 300_000))
            .map(|i| (i % 251) as u8)
            .collect();
        k.fs.put_file(
            "/home/u/self.bin",
            &payload,
            Mode(0o644),
            Uid(100),
            Gid(100),
        )
        .unwrap();
        let a = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/self.bin").unwrap());
        let b = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u/self.bin").unwrap());
        let n = cap_copy(&mut k, pid, &a, &b).unwrap();
        assert_eq!(n, payload.len());
        assert_eq!(cap_read_all(&mut k, pid, &a).unwrap(), payload);
    }

    #[test]
    fn dir_stats_sweep_is_batched() {
        let (mut k, pid) = setup();
        let dir = GuardedCap::unguarded(RawCap::open_path(&mut k, pid, "/home/u").unwrap());
        k.stats.reset();
        let pairs = cap_dir_stats(&mut k, pid, &dir).unwrap();
        assert_eq!(pairs.len(), 3);
        let sizes: Vec<u64> = pairs
            .iter()
            .map(|(_, st)| st.as_ref().map(|s| s.size).unwrap_or(0))
            .collect();
        assert!(sizes.contains(&5) && sizes.contains(&2) && sizes.contains(&200_000));
        let st = k.stats.snapshot();
        assert_eq!(st.batches, 1, "one batch for the whole stat sweep");
        // readdir (1 sequential charge) + one batch charge.
        assert_eq!(st.charge_calls, 2);
    }

    #[test]
    fn guard_violation_blocks_before_any_syscall() {
        let (mut k, pid) = setup();
        let raw = RawCap::open_path(&mut k, pid, "/home/u/a.txt").unwrap();
        let sealed = GuardedCap::unguarded(raw).restrict(
            std::sync::Arc::new(shill_cap::CapPrivs::of(shill_cap::PrivSet::of(&[
                Priv::Stat,
            ]))),
            shill_contracts::Blame::new("t", "t", "file(+stat)"),
        );
        assert!(matches!(
            cap_read_all(&mut k, pid, &sealed),
            Err(CapError::Violation(_))
        ));
        assert!(matches!(
            cap_copy(&mut k, pid, &sealed, &sealed),
            Err(CapError::Violation(_))
        ));
    }
}
