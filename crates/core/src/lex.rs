//! Tokenizer for SHILL source.
//!
//! Accepts both ASCII `\/` and the paper's typeset `∨` for contract
//! disjunction, and both `"…"` and the paper's `''…''` string quotes.

use crate::ast::Pos;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / identifiers
    Num(i64),
    Str(String),
    Ident(String),
    /// `+read`, `+create-file` — privilege tokens keep their own kind
    /// because `-` is an operator elsewhere.
    PrivName(String),
    // keywords
    Lang,    // #lang
    Require, // require
    Provide, // provide
    Fun,     // fun
    If,      // if
    Then,    // then
    Else,    // else
    For,     // for
    In,      // in
    True,    // true
    False,   // false
    Forall,  // forall
    With,    // with
    Async,   // async
    Await,   // await
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign, // =
    Arrow,  // ->
    OrC,    // \/ or ∨ (contract disjunction)
    AndAnd, // &&
    OrOr,   // ||
    Not,    // !
    Eq,     // ==
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Concat, // ++
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    col: usize,
    text: &'a str,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                // `#` starts a comment *unless* it is the `#lang` header.
                Some(b'#') => {
                    if self.text[self.i..].starts_with("#lang") {
                        return;
                    }
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn ident_like(&mut self) -> String {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric()
                || c == b'_'
                || c == b'/' && {
                    // allow `/` inside `shill/cap`-style module names only when
                    // followed by a letter (so `a / b` still lexes as division-less).
                    matches!(self.peek2(), Some(x) if x.is_ascii_alphabetic())
                }
            {
                self.bump();
            } else {
                break;
            }
        }
        self.text[start..self.i].to_string()
    }

    fn string(&mut self, quote: u8, doubled: bool) -> Result<String, LexError> {
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string"));
            };
            if c == quote {
                if doubled {
                    if self.peek() == Some(quote) {
                        self.bump();
                        return Ok(out);
                    }
                    // single quote inside a ''…'' string
                    out.push(quote as char);
                    continue;
                }
                return Ok(out);
            }
            if c == b'\\' && !doubled {
                match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other as char);
                    }
                    None => return Err(self.err("unterminated escape")),
                }
                continue;
            }
            out.push(c as char);
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_ws_and_comments();
        let pos = self.pos();
        let mk = |tok| Ok(Token { tok, pos });
        let Some(c) = self.peek() else {
            return mk(Tok::Eof);
        };
        // Unicode ∨ (0xE2 0x88 0xA8)
        if c == 0xE2 && self.text[self.i..].starts_with('∨') {
            self.bump();
            self.bump();
            self.bump();
            return mk(Tok::OrC);
        }
        match c {
            b'#' if self.text[self.i..].starts_with("#lang") => {
                for _ in 0.."#lang".len() {
                    self.bump();
                }
                mk(Tok::Lang)
            }
            b'0'..=b'9' => {
                let start = self.i;
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.bump();
                }
                let n: i64 = self.text[start..self.i]
                    .parse()
                    .map_err(|_| self.err("number out of range"))?;
                mk(Tok::Num(n))
            }
            b'"' => {
                self.bump();
                let s = self.string(b'"', false)?;
                mk(Tok::Str(s))
            }
            b'\'' if self.peek2() == Some(b'\'') => {
                self.bump();
                self.bump();
                let s = self.string(b'\'', true)?;
                mk(Tok::Str(s))
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'+') {
                    self.bump();
                    return mk(Tok::Concat);
                }
                // `+name` privilege token: letters and dashes.
                if matches!(self.peek(), Some(x) if x.is_ascii_alphabetic()) {
                    let start = self.i;
                    while matches!(self.peek(), Some(x) if x.is_ascii_alphanumeric() || x == b'-' || x == b'_')
                    {
                        self.bump();
                    }
                    let name = self.text[start..self.i].replace('_', "-");
                    return mk(Tok::PrivName(name));
                }
                mk(Tok::Plus)
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    return mk(Tok::Arrow);
                }
                mk(Tok::Minus)
            }
            b'\\' if self.peek2() == Some(b'/') => {
                self.bump();
                self.bump();
                mk(Tok::OrC)
            }
            b'&' if self.peek2() == Some(b'&') => {
                self.bump();
                self.bump();
                mk(Tok::AndAnd)
            }
            b'|' if self.peek2() == Some(b'|') => {
                self.bump();
                self.bump();
                mk(Tok::OrOr)
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    return mk(Tok::Eq);
                }
                mk(Tok::Assign)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    return mk(Tok::Ne);
                }
                mk(Tok::Not)
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    return mk(Tok::Le);
                }
                mk(Tok::Lt)
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    return mk(Tok::Ge);
                }
                mk(Tok::Gt)
            }
            b'(' => {
                self.bump();
                mk(Tok::LParen)
            }
            b')' => {
                self.bump();
                mk(Tok::RParen)
            }
            b'{' => {
                self.bump();
                mk(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                mk(Tok::RBrace)
            }
            b'[' => {
                self.bump();
                mk(Tok::LBracket)
            }
            b']' => {
                self.bump();
                mk(Tok::RBracket)
            }
            b',' => {
                self.bump();
                mk(Tok::Comma)
            }
            b';' => {
                self.bump();
                mk(Tok::Semi)
            }
            b':' => {
                self.bump();
                mk(Tok::Colon)
            }
            b'.' => {
                self.bump();
                mk(Tok::Dot)
            }
            b'*' => {
                self.bump();
                mk(Tok::Star)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.ident_like();
                let tok = match word.as_str() {
                    "require" => Tok::Require,
                    "provide" => Tok::Provide,
                    "fun" => Tok::Fun,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "forall" => Tok::Forall,
                    "with" => Tok::With,
                    "async" => Tok::Async,
                    "await" => Tok::Await,
                    _ => Tok::Ident(word),
                };
                mk(tok)
            }
            other => Err(self.err(format!("unexpected character {:?}", other as char))),
        }
    }
}

/// Tokenize a whole source file.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        text: src,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.tok == Tok::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_header_and_keywords() {
        let ts = kinds("#lang shill/cap\nrequire \"x.cap\";");
        assert_eq!(ts[0], Tok::Lang);
        assert_eq!(ts[1], Tok::Ident("shill/cap".into()));
        assert_eq!(ts[2], Tok::Require);
        assert_eq!(ts[3], Tok::Str("x.cap".into()));
    }

    #[test]
    fn lexes_privileges_and_modifiers() {
        let ts = kinds("dir(+contents, +lookup with {+path, +create_file})");
        assert!(ts.contains(&Tok::PrivName("contents".into())));
        assert!(ts.contains(&Tok::PrivName("lookup".into())));
        assert!(ts.contains(&Tok::With));
        assert!(
            ts.contains(&Tok::PrivName("create-file".into())),
            "underscores normalize to dashes"
        );
    }

    #[test]
    fn lexes_both_string_styles() {
        assert_eq!(kinds("\"abc\"")[0], Tok::Str("abc".into()));
        assert_eq!(kinds("''jpg''")[0], Tok::Str("jpg".into()));
        assert_eq!(kinds("''-i''")[0], Tok::Str("-i".into()));
    }

    #[test]
    fn lexes_contract_or_both_ways() {
        assert_eq!(kinds("is_dir \\/ is_file")[1], Tok::OrC);
        assert_eq!(kinds("is_dir ∨ is_file")[1], Tok::OrC);
    }

    #[test]
    fn comments_are_skipped_but_lang_is_not() {
        let ts = kinds("#lang shill/cap\n# a comment\nx = 1;");
        assert_eq!(ts[0], Tok::Lang);
        assert!(ts.contains(&Tok::Ident("x".into())));
        assert!(ts.contains(&Tok::Num(1)));
    }

    #[test]
    fn operators() {
        let ts = kinds("a && b || !c == d != e <= f ++ g -> h");
        assert!(ts.contains(&Tok::AndAnd));
        assert!(ts.contains(&Tok::OrOr));
        assert!(ts.contains(&Tok::Not));
        assert!(ts.contains(&Tok::Eq));
        assert!(ts.contains(&Tok::Ne));
        assert!(ts.contains(&Tok::Le));
        assert!(ts.contains(&Tok::Concat));
        assert!(ts.contains(&Tok::Arrow));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
    }

    #[test]
    fn error_positions() {
        let err = lex("x = @").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains('@'));
    }
}
