//! Recursive-descent parser for SHILL scripts and contracts.
//!
//! The ambient dialect's restrictions (§3.1.2: "it may not do anything other
//! than import capability-safe SHILL scripts, create strings and other base
//! values, define (immutable) variables, and invoke functions") are enforced
//! here, so an ambient script containing `fun`, `if`, or `for` is rejected
//! at parse time.

use std::rc::Rc;

use shill_cap::{CapPrivs, Priv, PrivSet};

use crate::ast::{
    BinOp, ContractExpr, Dialect, Expr, FuncContract, Pos, Provide, Script, Stmt, UnOp,
};
use crate::lex::{lex, Tok, Token};

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: Pos,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Deepest expression/contract nesting the parser accepts. Recursive
/// descent consumes native stack per nesting level; adversarial input
/// (`((((…`, `!!!!…x`) must produce a clean [`ParseError`], not a stack
/// overflow. The bound sits above anything a reasonable script needs and
/// below the thread stack limit, mirroring the evaluator's own call-depth
/// cap.
const MAX_PARSE_DEPTH: usize = 200;

struct Parser {
    toks: Vec<Token>,
    i: usize,
    dialect: Dialect,
    /// Current recursion depth across `expr`/`unary_expr`/`contract` — the
    /// three choke points every recursive production passes through.
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        self.toks
            .get(self.i + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> PResult<()> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // --- script structure -------------------------------------------------

    fn script(&mut self) -> PResult<Script> {
        // `#lang shill/cap` or `#lang shill/ambient`
        self.expect(Tok::Lang, "#lang header")?;
        let lang = self.ident("language name")?;
        self.dialect = match lang.as_str() {
            "shill/cap" => Dialect::CapSafe,
            "shill/ambient" => Dialect::Ambient,
            other => return Err(self.err(format!("unknown language {other:?}"))),
        };
        let mut requires = Vec::new();
        let mut provides = Vec::new();
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Require => {
                    self.bump();
                    let name = match self.peek().clone() {
                        Tok::Str(s) => {
                            self.bump();
                            s
                        }
                        Tok::Ident(s) => {
                            self.bump();
                            s
                        }
                        other => {
                            return Err(self.err(format!("expected module name, found {other:?}")))
                        }
                    };
                    self.expect(Tok::Semi, "';' after require")?;
                    requires.push(name);
                }
                Tok::Provide => {
                    if self.dialect == Dialect::Ambient {
                        return Err(self.err("ambient scripts cannot provide functions"));
                    }
                    let pos = self.pos();
                    self.bump();
                    let name = self.ident("provided name")?;
                    self.expect(Tok::Colon, "':' in provide")?;
                    let contract = self.contract()?;
                    self.expect(Tok::Semi, "';' after provide")?;
                    provides.push(Provide {
                        name,
                        contract,
                        pos,
                    });
                }
                _ => body.push(self.stmt()?),
            }
        }
        Ok(Script {
            dialect: self.dialect,
            requires,
            provides,
            body,
        })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        // `name = expr ;?` is a definition (unless it's `==`).
        if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek2() == Tok::Assign {
                let pos = self.pos();
                self.bump(); // ident
                self.bump(); // =
                let expr = self.expr()?;
                // Trailing semicolon is optional after `}`-terminated exprs
                // (matching the paper's figures).
                if *self.peek() == Tok::Semi {
                    self.bump();
                }
                return Ok(Stmt::Def { name, expr, pos });
            }
        }
        let e = self.expr()?;
        let semi = *self.peek() == Tok::Semi;
        if semi {
            self.bump();
        }
        Ok(Stmt::Expr(e, semi))
    }

    /// A block `{ stmt* }`, or a single statement (for `then`-branches).
    fn block_or_stmt(&mut self) -> PResult<Rc<Vec<Stmt>>> {
        if *self.peek() == Tok::LBrace {
            self.bump();
            let mut stmts = Vec::new();
            while *self.peek() != Tok::RBrace {
                if *self.peek() == Tok::Eof {
                    return Err(self.err("unterminated block"));
                }
                stmts.push(self.stmt()?);
            }
            self.bump();
            Ok(Rc::new(stmts))
        } else {
            Ok(Rc::new(vec![self.stmt()?]))
        }
    }

    // --- expressions --------------------------------------------------------

    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression nesting too deep"));
        }
        Ok(())
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let r = self.expr_unguarded();
        self.depth -= 1;
        r
    }

    fn expr_unguarded(&mut self) -> PResult<Expr> {
        if self.dialect == Dialect::Ambient {
            // Ambient restriction: flag structured control flow.
            match self.peek() {
                Tok::Fun => return Err(self.err("ambient scripts cannot define functions")),
                Tok::If => return Err(self.err("ambient scripts cannot use conditionals")),
                Tok::For => return Err(self.err("ambient scripts cannot use loops")),
                _ => {}
            }
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Concat => BinOp::Concat,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        while *self.peek() == Tok::Star {
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        // Self-recursive (`--x`, `!!x`) without re-entering `expr`, so it
        // needs its own slot in the shared depth budget.
        self.enter()?;
        let r = self.unary_unguarded();
        self.depth -= 1;
        r
    }

    fn unary_unguarded(&mut self) -> PResult<Expr> {
        match self.peek() {
            Tok::Not => {
                let pos = self.pos();
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    pos,
                })
            }
            Tok::Minus => {
                let pos = self.pos();
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    pos,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        while *self.peek() == Tok::LParen {
            let pos = self.pos();
            self.bump();
            let mut args = Vec::new();
            let mut kwargs = Vec::new();
            while *self.peek() != Tok::RParen {
                // keyword argument `name = expr`?
                if let Tok::Ident(n) = self.peek().clone() {
                    if *self.peek2() == Tok::Assign {
                        self.bump();
                        self.bump();
                        let v = self.expr()?;
                        kwargs.push((n, v));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        }
                        continue;
                    }
                }
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                }
            }
            self.expect(Tok::RParen, "')'")?;
            e = Expr::Call {
                callee: Box::new(e),
                args,
                kwargs,
                pos,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n, pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, pos))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while *self.peek() != Tok::RBracket {
                    items.push(self.expr()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    }
                }
                self.bump();
                Ok(Expr::List(items, pos))
            }
            Tok::Fun => {
                self.bump();
                self.expect(Tok::LParen, "'(' after fun")?;
                let mut params = Vec::new();
                while *self.peek() != Tok::RParen {
                    params.push(self.ident("parameter name")?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    }
                }
                self.bump();
                let body = self.block_or_stmt()?;
                Ok(Expr::Fun { params, body, pos })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Then, "'then'")?;
                let then = self.block_or_stmt()?;
                let els = if *self.peek() == Tok::Else {
                    self.bump();
                    Some(self.block_or_stmt()?)
                } else {
                    None
                };
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then,
                    els,
                    pos,
                })
            }
            Tok::Async => {
                // Prefix form binding like unary operators, so
                // `async read(f)` defers the call, and `async x ++ y`
                // parses as `(async x) ++ y`.
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Async(Box::new(e), pos))
            }
            Tok::Await => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Await(Box::new(e), pos))
            }
            Tok::For => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(Tok::In, "'in'")?;
                let iter = self.expr()?;
                let body = self.block_or_stmt()?;
                Ok(Expr::For {
                    var,
                    iter: Box::new(iter),
                    body,
                    pos,
                })
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    // --- contracts -----------------------------------------------------------

    fn contract(&mut self) -> PResult<ContractExpr> {
        self.enter()?;
        let r = self.contract_unguarded();
        self.depth -= 1;
        r
    }

    fn contract_unguarded(&mut self) -> PResult<ContractExpr> {
        if *self.peek() == Tok::Forall {
            self.bump();
            let var = self.ident("contract variable")?;
            self.expect(Tok::With, "'with'")?;
            self.expect(Tok::LBrace, "'{'")?;
            let bound = self.priv_set()?;
            self.expect(Tok::RBrace, "'}'")?;
            self.expect(Tok::Dot, "'.' after forall bound")?;
            let body = self.contract()?;
            return Ok(ContractExpr::Forall {
                var,
                bound,
                body: Box::new(body),
            });
        }
        self.contract_arrow()
    }

    fn contract_arrow(&mut self) -> PResult<ContractExpr> {
        // Function contract `{a : C, ...} -> C` | disjunction (`X -> C` also
        // allowed: single unnamed argument, used by `filter : X -> is_bool`).
        if *self.peek() == Tok::LBrace {
            self.bump();
            let mut args = Vec::new();
            while *self.peek() != Tok::RBrace {
                let name = self.ident("argument name")?;
                self.expect(Tok::Colon, "':'")?;
                let c = self.contract()?;
                args.push((name, c));
                if *self.peek() == Tok::Comma {
                    self.bump();
                }
            }
            self.bump();
            self.expect(Tok::Arrow, "'->' after contract domain")?;
            let result = self.contract()?;
            return Ok(ContractExpr::Func(Rc::new(FuncContract {
                args,
                kwargs: vec![],
                result,
            })));
        }
        let lhs = self.contract_or()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let result = self.contract()?;
            return Ok(ContractExpr::Func(Rc::new(FuncContract {
                args: vec![("arg".to_string(), lhs)],
                kwargs: vec![],
                result,
            })));
        }
        Ok(lhs)
    }

    fn contract_or(&mut self) -> PResult<ContractExpr> {
        let mut items = vec![self.contract_and()?];
        while *self.peek() == Tok::OrC {
            self.bump();
            items.push(self.contract_and()?);
        }
        if items.len() == 1 {
            Ok(items.pop().unwrap())
        } else {
            Ok(ContractExpr::Or(items))
        }
    }

    fn contract_and(&mut self) -> PResult<ContractExpr> {
        let mut items = vec![self.contract_atom()?];
        while *self.peek() == Tok::AndAnd {
            self.bump();
            items.push(self.contract_atom()?);
        }
        if items.len() == 1 {
            Ok(items.pop().unwrap())
        } else {
            Ok(ContractExpr::And(items))
        }
    }

    fn contract_atom(&mut self) -> PResult<ContractExpr> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let c = self.contract()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(c)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "is_file" => Ok(ContractExpr::IsFile),
                    "is_dir" => Ok(ContractExpr::IsDir),
                    "is_pipe" => Ok(ContractExpr::IsPipe),
                    "is_bool" => Ok(ContractExpr::IsBool),
                    "is_num" => Ok(ContractExpr::IsNum),
                    "is_string" => Ok(ContractExpr::IsString),
                    "is_list" => Ok(ContractExpr::IsList),
                    "is_fun" => Ok(ContractExpr::IsFun),
                    "void" => Ok(ContractExpr::Void),
                    "any" => Ok(ContractExpr::Any),
                    "pipe_factory" => Ok(ContractExpr::PipeFactory),
                    "native_wallet" => Ok(ContractExpr::NativeWallet),
                    "wallet" => Ok(ContractExpr::Wallet),
                    "file" | "dir" | "socket" | "socket_factory" if *self.peek() == Tok::LParen => {
                        self.bump();
                        let privs = self.cap_privs()?;
                        self.expect(Tok::RParen, "')'")?;
                        Ok(match name.as_str() {
                            "file" => ContractExpr::File(privs),
                            "dir" => ContractExpr::Dir(privs),
                            "socket" => ContractExpr::Socket(privs),
                            _ => ContractExpr::SocketFactory(privs.privs),
                        })
                    }
                    "socket_factory" => Ok(ContractExpr::SocketFactory(PrivSet::of(&[
                        Priv::SockCreate,
                        Priv::SockBind,
                        Priv::SockConnect,
                        Priv::SockListen,
                        Priv::SockAccept,
                        Priv::SockSend,
                        Priv::SockRecv,
                    ]))),
                    // Contract variables are single uppercase letters by
                    // convention; anything else is a named contract alias
                    // or user-defined predicate, resolved at wrap time.
                    _ => {
                        if name.len() <= 2 && name.chars().all(|c| c.is_ascii_uppercase()) {
                            Ok(ContractExpr::Var(name))
                        } else {
                            Ok(ContractExpr::Named(name))
                        }
                    }
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in contract"))),
        }
    }

    /// `+p, +q with {+a, +b}, ...` inside `file(...)`/`dir(...)`.
    fn cap_privs(&mut self) -> PResult<CapPrivs> {
        let mut out = CapPrivs::none();
        loop {
            match self.peek().clone() {
                Tok::PrivName(name) => {
                    self.bump();
                    let p = Priv::parse(&name)
                        .ok_or_else(|| self.err(format!("unknown privilege +{name}")))?;
                    if *self.peek() == Tok::With {
                        self.bump();
                        self.expect(Tok::LBrace, "'{' after with")?;
                        let derived = self.priv_set()?;
                        self.expect(Tok::RBrace, "'}'")?;
                        if !p.derives() {
                            return Err(self.err(format!(
                                "privilege {p} does not derive capabilities; `with` is invalid"
                            )));
                        }
                        out = out.with_modifier(p, CapPrivs::of(derived));
                    } else {
                        out.privs.insert(p);
                    }
                    if *self.peek() == Tok::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
                Tok::RParen | Tok::RBrace => break,
                other => return Err(self.err(format!("expected privilege, found {other:?}"))),
            }
        }
        Ok(out)
    }

    fn priv_set(&mut self) -> PResult<PrivSet> {
        let mut set = PrivSet::EMPTY;
        loop {
            match self.peek().clone() {
                Tok::PrivName(name) => {
                    self.bump();
                    let p = Priv::parse(&name)
                        .ok_or_else(|| self.err(format!("unknown privilege +{name}")))?;
                    set.insert(p);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
                Tok::RBrace => break,
                other => return Err(self.err(format!("expected +privilege, found {other:?}"))),
            }
        }
        Ok(set)
    }
}

/// Parse a complete script.
pub fn parse_script(src: &str) -> PResult<Script> {
    let toks = lex(src).map_err(|e| ParseError {
        pos: e.pos,
        message: e.message,
    })?;
    let mut p = Parser {
        toks,
        i: 0,
        dialect: Dialect::CapSafe,
        depth: 0,
    };
    p.script()
}

/// Parse a standalone contract (tests, tooling).
pub fn parse_contract(src: &str) -> PResult<ContractExpr> {
    let toks = lex(src).map_err(|e| ParseError {
        pos: e.pos,
        message: e.message,
    })?;
    let mut p = Parser {
        toks,
        i: 0,
        dialect: Dialect::CapSafe,
        depth: 0,
    };
    let c = p.contract()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing tokens after contract"));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_find_jpg_figure3() {
        let src = r#"#lang shill/cap

provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \/ file(+path),
   out : file(+append)} -> void;

find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, ''jpg'') then
    append(out, path(cur));

  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find_jpg(child, out);
    }
}
"#;
        let s = parse_script(src).unwrap();
        assert_eq!(s.dialect, Dialect::CapSafe);
        assert_eq!(s.provides.len(), 1);
        assert_eq!(s.provides[0].name, "find_jpg");
        match &s.provides[0].contract {
            ContractExpr::Func(fc) => {
                assert_eq!(fc.args.len(), 2);
                assert_eq!(fc.args[0].0, "cur");
                assert!(matches!(fc.args[0].1, ContractExpr::Or(_)));
                assert_eq!(fc.result, ContractExpr::Void);
            }
            other => panic!("expected function contract, got {other:?}"),
        }
        assert_eq!(s.body.len(), 1);
    }

    #[test]
    fn parses_polymorphic_find_figure5() {
        let c = parse_contract(
            "forall X with {+lookup, +contents} . {cur : X, filter : X -> is_bool, cmd : X -> void} -> void",
        )
        .unwrap();
        match c {
            ContractExpr::Forall { var, bound, body } => {
                assert_eq!(var, "X");
                assert!(bound.contains(Priv::Lookup));
                assert!(bound.contains(Priv::Contents));
                match *body {
                    ContractExpr::Func(fc) => {
                        assert_eq!(fc.args.len(), 3);
                        assert_eq!(fc.args[0].1, ContractExpr::Var("X".into()));
                        match &fc.args[1].1 {
                            ContractExpr::Func(inner) => {
                                assert_eq!(inner.args[0].1, ContractExpr::Var("X".into()));
                                assert_eq!(inner.result, ContractExpr::IsBool);
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_grade_contract_figure1() {
        let c = parse_contract(
            "{submission : is_file && readonly, tests : is_dir && readonly, \
             working : dir(+create_dir with {+create_file, +create_dir, +read, +write, +append, +lookup, +contents, +path, +stat, +unlink_file}), \
             grade_log : is_file && writeable, wallet : native_wallet} -> void",
        )
        .unwrap();
        match c {
            ContractExpr::Func(fc) => {
                assert_eq!(fc.args.len(), 5);
                assert!(matches!(fc.args[0].1, ContractExpr::And(_)));
                assert_eq!(fc.args[4].1, ContractExpr::NativeWallet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_modifier_parses_into_capprivs() {
        let c = parse_contract("dir(+contents, +lookup with {+path, +stat})").unwrap();
        match c {
            ContractExpr::Dir(p) => {
                assert!(p.allows(Priv::Contents));
                assert!(p.allows(Priv::Lookup));
                let m = p.modifiers.get(&Priv::Lookup).unwrap();
                assert!(m.allows(Priv::Path));
                assert!(m.allows(Priv::Stat));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambient_restrictions_enforced() {
        let bad_fun = "#lang shill/ambient\nf = fun(x) { x };";
        assert!(parse_script(bad_fun).is_err());
        let bad_if = "#lang shill/ambient\nif true then 1;";
        assert!(parse_script(bad_if).is_err());
        let bad_provide = "#lang shill/ambient\nprovide f : any;";
        assert!(parse_script(bad_provide).is_err());
        let ok = "#lang shill/ambient\nrequire \"jpeginfo.cap\";\nroot = open_dir(\"/\");\njpeginfo(root);";
        assert!(parse_script(ok).is_ok());
    }

    #[test]
    fn keyword_arguments_parse() {
        let src = "#lang shill/cap\nexec(jpeg, [\"-i\", f], stdout = out, extras = [libc]);";
        let s = parse_script(src).unwrap();
        match &s.body[0] {
            Stmt::Expr(Expr::Call { args, kwargs, .. }, _) => {
                assert_eq!(args.len(), 2);
                assert_eq!(kwargs.len(), 2);
                assert_eq!(kwargs[0].0, "stdout");
                assert_eq!(kwargs[1].0, "extras");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redefinition_ok_at_parse_time_nested_blocks() {
        // `x = e` inside a function body is a local binding.
        let src = "#lang shill/cap\nf = fun(a) { x = a; x };";
        assert!(parse_script(src).is_ok());
    }

    #[test]
    fn named_contract_and_var_distinction() {
        assert_eq!(
            parse_contract("readonly").unwrap(),
            ContractExpr::Named("readonly".into())
        );
        assert_eq!(parse_contract("X").unwrap(), ContractExpr::Var("X".into()));
        assert_eq!(
            parse_contract("ocaml_wallet").unwrap(),
            ContractExpr::Named("ocaml_wallet".into())
        );
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse_script("#lang shill/cap\nx = ;").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }
}
