//! Lexical environments.
//!
//! SHILL "does not have mutable variables" (§2.1): `define` inserts a fresh
//! binding and re-defining a name already bound *in the same scope* is an
//! error. Inner scopes may shadow outer ones (loop variables, parameters).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::value::{ShillError, Value};

struct EnvNode {
    vars: RefCell<HashMap<String, Value>>,
    parent: Option<Env>,
}

/// A shared, immutable-by-policy environment frame.
#[derive(Clone)]
pub struct Env(Rc<EnvNode>);

impl Env {
    /// A fresh root environment.
    pub fn root() -> Env {
        Env(Rc::new(EnvNode {
            vars: RefCell::new(HashMap::new()),
            parent: None,
        }))
    }

    /// A child scope.
    pub fn child(&self) -> Env {
        Env(Rc::new(EnvNode {
            vars: RefCell::new(HashMap::new()),
            parent: Some(self.clone()),
        }))
    }

    /// Define a new binding. Fails if the name is already bound in *this*
    /// frame — SHILL has no mutation or redefinition.
    pub fn define(&self, name: &str, value: Value) -> Result<(), ShillError> {
        let mut vars = self.0.vars.borrow_mut();
        if vars.contains_key(name) {
            return Err(ShillError::Runtime(format!(
                "`{name}` is already defined; SHILL bindings are immutable"
            )));
        }
        vars.insert(name.to_string(), value);
        Ok(())
    }

    /// Define allowing replacement — used only by the runtime itself to
    /// install builtins/stdlib before user code runs.
    pub fn define_internal(&self, name: &str, value: Value) {
        self.0.vars.borrow_mut().insert(name.to_string(), value);
    }

    /// Look a name up through the scope chain.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        if let Some(v) = self.0.vars.borrow().get(name) {
            return Some(v.clone());
        }
        self.0.parent.as_ref()?.lookup(name)
    }

    /// Whether the name is bound anywhere in scope.
    pub fn bound(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let env = Env::root();
        env.define("x", Value::Num(1)).unwrap();
        assert!(matches!(env.lookup("x"), Some(Value::Num(1))));
        assert!(env.lookup("y").is_none());
    }

    #[test]
    fn no_redefinition_in_same_scope() {
        let env = Env::root();
        env.define("x", Value::Num(1)).unwrap();
        assert!(env.define("x", Value::Num(2)).is_err());
        // The original binding is untouched.
        assert!(matches!(env.lookup("x"), Some(Value::Num(1))));
    }

    #[test]
    fn shadowing_in_child_scope_is_fine() {
        let env = Env::root();
        env.define("x", Value::Num(1)).unwrap();
        let inner = env.child();
        inner.define("x", Value::Num(2)).unwrap();
        assert!(matches!(inner.lookup("x"), Some(Value::Num(2))));
        assert!(matches!(env.lookup("x"), Some(Value::Num(1))));
    }

    #[test]
    fn child_sees_parent() {
        let env = Env::root();
        env.define("x", Value::Num(7)).unwrap();
        let inner = env.child().child();
        assert!(matches!(inner.lookup("x"), Some(Value::Num(7))));
    }
}
