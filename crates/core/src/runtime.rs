//! The SHILL runtime: owns the kernel, the policy module, and the
//! interpreter, and measures the Figure 10 phase breakdown.

use std::sync::Arc;
use std::time::Instant;

use shill_kernel::{Kernel, Pid, Ulimits};
use shill_sandbox::ShillPolicy;
use shill_vfs::Cred;

use crate::eval::Interp;
use crate::profile::Profile;
use crate::value::{EvalResult, Value};

/// A small prelude evaluated at startup. This plays the role of Racket
/// runtime + stdlib initialization in the original prototype ("Racket
/// startup cost is responsible for the high overhead of Download and
/// Uninstall", §4.2): real parsing and evaluation work performed before any
/// user script runs.
const PRELUDE: &str = r#"#lang shill/cap
# --- shill prelude: list and string helpers -------------------------------
id = fun(x) { x };
compose = fun(f, g) { fun(x) { f(g(x)) } };
map = fun(f, xs) {
  go = fun(i, acc) {
    if i < length(xs) then go(i + 1, acc ++ [f(nth(xs, i))]) else acc
  };
  go(0, [])
};
filter_list = fun(p, xs) {
  go = fun(i, acc) {
    if i < length(xs) then {
      keep = p(nth(xs, i));
      if keep then go(i + 1, acc ++ [nth(xs, i)]) else go(i + 1, acc)
    } else acc
  };
  go(0, [])
};
foldl = fun(f, z, xs) {
  go = fun(i, acc) {
    if i < length(xs) then go(i + 1, f(acc, nth(xs, i))) else acc
  };
  go(0, z)
};
any_list = fun(p, xs) { foldl(fun(a, x) { a || p(x) }, false, xs) };
all_list = fun(p, xs) { foldl(fun(a, x) { a && p(x) }, true, xs) };
join = fun(sep, xs) {
  foldl(fun(acc, x) { if acc == "" then x else acc ++ sep ++ x }, "", xs)
};
repeat_string = fun(s, n) {
  go = fun(i, acc) { if i < n then go(i + 1, acc ++ s) else acc };
  go(0, "")
};

provide id : any -> any;
provide compose : {f : is_fun, g : is_fun} -> is_fun;
provide map : {f : is_fun, xs : is_list} -> is_list;
provide filter_list : {p : is_fun, xs : is_list} -> is_list;
provide foldl : {f : is_fun, z : any, xs : is_list} -> any;
provide any_list : {p : is_fun, xs : is_list} -> is_bool;
provide all_list : {p : is_fun, xs : is_list} -> is_bool;
provide join : {sep : is_string, xs : is_list} -> is_string;
provide repeat_string : {s : is_string, n : is_num} -> is_string;
"#;

/// How the runtime is configured — the benchmark configurations of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeConfig {
    /// Kernel module not loaded: scripts run, `exec` fails. Used for the
    /// "SHILL installed"-vs-"Baseline" kernel microcomparisons only.
    NoPolicy,
    /// Kernel module loaded (the normal configuration).
    WithPolicy,
}

/// The SHILL runtime.
pub struct ShillRuntime {
    pub interp: Interp,
    pub policy: Option<Arc<ShillPolicy>>,
}

impl ShillRuntime {
    /// Build a runtime around an existing kernel, spawning the runtime's
    /// (unsandboxed) process with `cred`. Startup cost — process spawn,
    /// policy registration, prelude evaluation — is recorded in the
    /// profile's `startup` bucket.
    pub fn new(mut kernel: Kernel, config: RuntimeConfig, cred: Cred) -> ShillRuntime {
        let t0 = Instant::now();
        let policy = match config {
            RuntimeConfig::WithPolicy => {
                let p = ShillPolicy::new();
                kernel.register_policy(p.clone());
                Some(p)
            }
            RuntimeConfig::NoPolicy => None,
        };
        let pid = kernel.spawn_user(cred);
        // The runtime holds one descriptor per live capability; give it a
        // roomy table (Find visits ~58k files).
        let _ = kernel.set_ulimits(
            pid,
            Ulimits {
                max_open_files: u32::MAX,
                ..Default::default()
            },
        );
        let mut interp = Interp::new(kernel, policy.clone(), pid);
        // Evaluate the prelude (the "Racket startup" analogue).
        interp.add_script("shill/prelude", PRELUDE);
        let _ = interp.load_module("shill/prelude");
        interp.profile.startup += t0.elapsed();
        ShillRuntime { interp, policy }
    }

    /// Register a capability-safe script for `require`.
    pub fn add_script(&mut self, name: &str, source: &str) {
        self.interp.add_script(name, source);
    }

    /// Run an ambient (or test) script. Prelude exports are made available
    /// by an implicit `require shill/prelude`.
    pub fn run(&mut self, name: &str, source: &str) -> EvalResult {
        let t0 = Instant::now();
        let r = self.interp.run_script(name, source);
        self.interp.profile.total += t0.elapsed();
        r
    }

    /// Convenience for tests: run and expect success.
    pub fn run_ok(&mut self, source: &str) -> Value {
        match self.run("main", source) {
            Ok(v) => v,
            Err(e) => panic!("script failed: {e}"),
        }
    }

    /// The `display` builtin's output so far.
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.interp.out).into_owned()
    }

    pub fn profile(&self) -> Profile {
        self.interp.profile
    }

    pub fn kernel(&mut self) -> &mut Kernel {
        &mut self.interp.kernel
    }

    pub fn pid(&self) -> Pid {
        self.interp.pid
    }

    /// Dismantle the runtime, releasing the kernel and the policy module —
    /// the entry point for the concurrent phase of a workload: scripts that
    /// prepared state single-threaded hand the kernel to
    /// `shill_sandbox::SharedKernel` and a fleet of session worker threads
    /// (`shill_sandbox::run_sessions`) from here.
    pub fn into_parts(self) -> (Kernel, Option<Arc<ShillPolicy>>) {
        (self.interp.kernel, self.policy)
    }
}
