//! Runtime profiling instrumentation.
//!
//! Figure 10 of the paper breaks script time into: total, "Racket startup"
//! (here: runtime + stdlib initialization and script compilation), sandbox
//! setup, sandboxed execution, and "remaining time" (script evaluation
//! including contract checking). The runtime accumulates the same buckets.

use std::time::Duration;

/// Accumulated phase timings and counters for one runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// Runtime construction + stdlib installation + script parsing.
    pub startup: Duration,
    /// Time spent forking/granting/entering sandboxes (the `exec` builtin's
    /// setup path).
    pub sandbox_setup: Duration,
    /// Time spent inside sandboxed executables.
    pub sandboxed_exec: Duration,
    /// Wall-clock total of `run` calls.
    pub total: Duration,
    /// Number of sandboxes created (Figure 10 discussion: Grading creates
    /// 5,371; Find 15,292).
    pub sandboxes: u64,
    /// Contract applications performed (wrap-time).
    pub contract_applications: u64,
    /// Guard checks performed (operation-time).
    pub guard_checks: u64,
}

impl Profile {
    /// "Remaining time": script evaluation including contract checking —
    /// computed exactly as the paper does, by subtraction.
    pub fn remaining(&self) -> Duration {
        self.total
            .saturating_sub(self.startup)
            .saturating_sub(self.sandbox_setup)
            .saturating_sub(self.sandboxed_exec)
    }

    pub fn reset(&mut self) {
        *self = Profile::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_is_total_minus_phases() {
        let p = Profile {
            startup: Duration::from_millis(100),
            sandbox_setup: Duration::from_millis(200),
            sandboxed_exec: Duration::from_millis(300),
            total: Duration::from_millis(1000),
            ..Default::default()
        };
        assert_eq!(p.remaining(), Duration::from_millis(400));
    }

    #[test]
    fn remaining_saturates() {
        let p = Profile {
            startup: Duration::from_millis(100),
            total: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(p.remaining(), Duration::ZERO);
    }
}
