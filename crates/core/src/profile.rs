//! Runtime profiling instrumentation.
//!
//! Figure 10 of the paper breaks script time into: total, "Racket startup"
//! (here: runtime + stdlib initialization and script compilation), sandbox
//! setup, sandboxed execution, and "remaining time" (script evaluation
//! including contract checking). The runtime accumulates the same buckets.

use std::time::Duration;

/// Accumulated phase timings and counters for one runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// Runtime construction + stdlib installation + script parsing.
    pub startup: Duration,
    /// Time spent forking/granting/entering sandboxes (the `exec` builtin's
    /// setup path).
    pub sandbox_setup: Duration,
    /// Time spent inside sandboxed executables.
    pub sandboxed_exec: Duration,
    /// Wall-clock total of `run` calls.
    pub total: Duration,
    /// Number of sandboxes created (Figure 10 discussion: Grading creates
    /// 5,371; Find 15,292).
    pub sandboxes: u64,
    /// Contract applications performed (wrap-time).
    pub contract_applications: u64,
    /// Guard checks performed (operation-time).
    pub guard_checks: u64,
}

impl Profile {
    /// "Remaining time": script evaluation including contract checking —
    /// computed exactly as the paper does, by subtraction.
    pub fn remaining(&self) -> Duration {
        self.total
            .saturating_sub(self.startup)
            .saturating_sub(self.sandbox_setup)
            .saturating_sub(self.sandboxed_exec)
    }

    pub fn reset(&mut self) {
        *self = Profile::default();
    }
}

/// Reentrancy-safe phase accounting for the `exec` builtin.
///
/// When a nested `run`/`exec` recurses through an outer `exec`'s execution
/// window, naive `bucket += span.elapsed()` books the inner phases *twice*
/// — once by the inner call and again inside the outer span — so the
/// bucket sum can exceed `total` and [`Profile::remaining`] (a
/// subtraction) underflows. `PhaseNesting` enforces **innermost-only
/// attribution**: each phase books its own span minus everything nested
/// phases already booked inside it, so the bucket telescope never exceeds
/// the outermost wall-clock span.
///
/// Discipline: [`PhaseNesting::enter`] when a recursion-capable phase
/// window opens, [`PhaseNesting::exit`] with the measured span on every
/// path that closes it (the return value is what to add to the bucket);
/// [`PhaseNesting::book_leaf`] for phases that cannot recurse but must
/// still be subtracted from an enclosing window.
#[derive(Debug, Default, Clone)]
pub struct PhaseNesting {
    /// One accumulator per open phase: wall-clock already booked by
    /// phases nested inside it.
    stack: Vec<Duration>,
}

impl PhaseNesting {
    /// Open a phase window.
    pub fn enter(&mut self) {
        self.stack.push(Duration::ZERO);
    }

    /// Close the innermost phase window whose measured wall-clock span is
    /// `span`; returns the portion attributable to this phase alone
    /// (span minus nested bookings, saturating). The full span is
    /// credited to the enclosing window's nested ledger, if any.
    pub fn exit(&mut self, span: Duration) -> Duration {
        let inner = self.stack.pop().unwrap_or(Duration::ZERO);
        if let Some(parent) = self.stack.last_mut() {
            *parent += span;
        }
        span.saturating_sub(inner)
    }

    /// Credit a non-recursive phase's span to the enclosing window's
    /// nested ledger (no-op at top level). Returns `span` unchanged so
    /// call sites can book it in one expression.
    pub fn book_leaf(&mut self, span: Duration) -> Duration {
        if let Some(parent) = self.stack.last_mut() {
            *parent += span;
        }
        span
    }

    /// Currently open phase windows (0 outside any `exec`).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_is_total_minus_phases() {
        let p = Profile {
            startup: Duration::from_millis(100),
            sandbox_setup: Duration::from_millis(200),
            sandboxed_exec: Duration::from_millis(300),
            total: Duration::from_millis(1000),
            ..Default::default()
        };
        assert_eq!(p.remaining(), Duration::from_millis(400));
    }

    #[test]
    fn remaining_saturates() {
        let p = Profile {
            startup: Duration::from_millis(100),
            total: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(p.remaining(), Duration::ZERO);
    }

    #[test]
    fn nested_exec_attributes_innermost_only() {
        // Outer exec window 100ms; inside it a nested exec books 30ms of
        // execution and 10ms of setup. The outer exec must book only the
        // 60ms that is genuinely its own.
        let mut nest = PhaseNesting::default();
        let mut p = Profile::default();

        nest.enter(); // outer exec window opens
        p.sandbox_setup += nest.book_leaf(Duration::from_millis(10)); // inner setup
        nest.enter(); // inner exec window
        p.sandboxed_exec += nest.exit(Duration::from_millis(30)); // inner exec closes
        p.sandboxed_exec += nest.exit(Duration::from_millis(100)); // outer closes

        assert_eq!(nest.depth(), 0);
        assert_eq!(p.sandbox_setup, Duration::from_millis(10));
        // 30ms inner + (100 − 30 − 10)ms outer = 90ms, not 130ms.
        assert_eq!(p.sandboxed_exec, Duration::from_millis(90));
    }

    #[test]
    fn nested_accounting_never_underflows_remaining() {
        // Regression: with naive accounting, total = 100ms but the buckets
        // sum to 140ms and remaining() hits the saturation floor while the
        // true remainder is 0 < r. With innermost-only attribution the
        // telescoped bucket sum equals the outermost span exactly.
        let mut nest = PhaseNesting::default();
        let mut p = Profile::default();

        nest.enter();
        p.sandbox_setup += nest.book_leaf(Duration::from_millis(10));
        nest.enter();
        p.sandboxed_exec += nest.exit(Duration::from_millis(40));
        p.sandboxed_exec += nest.exit(Duration::from_millis(90));
        p.total = Duration::from_millis(100);

        let booked = p.sandbox_setup + p.sandboxed_exec;
        assert!(booked <= p.total, "buckets must telescope under total");
        assert_eq!(p.remaining(), Duration::from_millis(10));
    }

    #[test]
    fn exit_saturates_on_clock_skew() {
        // A nested span reported larger than its parent's (possible with
        // coarse clocks) must clamp to zero, not panic or wrap.
        let mut nest = PhaseNesting::default();
        nest.enter();
        nest.enter();
        let inner = nest.exit(Duration::from_millis(50));
        assert_eq!(inner, Duration::from_millis(50));
        let outer = nest.exit(Duration::from_millis(20));
        assert_eq!(outer, Duration::ZERO);
    }
}
