//! End-to-end tests of the SHILL language: evaluation, capability safety,
//! contracts with blame, polymorphic sealing, wallets, and sandboxed exec.
//! The paper's Figures 3–6 run here as executable programs.

use std::sync::Arc;

use shill_core::{RuntimeConfig, ShillError, ShillRuntime, Value};
use shill_kernel::{Fd, Kernel, OpenFlags, Pid};
use shill_vfs::{Cred, Gid, Mode, Uid};

/// A kernel with a small home tree and a couple of simulated binaries.
fn test_kernel() -> Kernel {
    let mut k = Kernel::new();
    k.fs.put_file(
        "/home/u/pics/dog.jpg",
        b"JPGDATA",
        Mode(0o644),
        Uid(100),
        Gid(100),
    )
    .unwrap();
    k.fs.put_file(
        "/home/u/pics/cat.jpg",
        b"JPGCAT",
        Mode(0o644),
        Uid(100),
        Gid(100),
    )
    .unwrap();
    k.fs.put_file(
        "/home/u/pics/readme.txt",
        b"text",
        Mode(0o644),
        Uid(100),
        Gid(100),
    )
    .unwrap();
    k.fs.put_file(
        "/home/u/pics/deep/bird.jpg",
        b"JPGBIRD",
        Mode(0o644),
        Uid(100),
        Gid(100),
    )
    .unwrap();
    k.fs.put_file("/home/u/out.txt", b"", Mode(0o644), Uid(100), Gid(100))
        .unwrap();

    // Simulated jpeginfo: writes info about its -i argument to stdout.
    k.register_exec(
        "jpeginfo",
        Arc::new(|k: &mut Kernel, pid: Pid, argv: &[String]| {
            let file = argv.iter().skip(1).find(|a| !a.starts_with('-'));
            let Some(file) = file else { return 2 };
            let fd = match k.open(pid, file, OpenFlags::RDONLY, Mode(0)) {
                Ok(fd) => fd,
                Err(_) => return 1,
            };
            let data = k.read(pid, fd, 1 << 20).unwrap_or_default();
            let _ = k.close(pid, fd);
            let msg = format!("{file}: {} bytes\n", data.len());
            if k.write(pid, Fd::STDOUT, msg.as_bytes()).is_err() {
                return 1;
            }
            0
        }),
    );
    k.fs.put_file(
        "/usr/local/bin/jpeginfo",
        b"#!SIMBIN jpeginfo\nNEEDS /lib/libc.so\nNEEDS /lib/libjpeg.so\n",
        Mode(0o755),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    k.fs.put_file("/lib/libc.so", b"LIBC", Mode(0o644), Uid::ROOT, Gid::WHEEL)
        .unwrap();
    k.fs.put_file(
        "/lib/libjpeg.so",
        b"LIBJPEG",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    k
}

fn runtime() -> ShillRuntime {
    ShillRuntime::new(test_kernel(), RuntimeConfig::WithPolicy, Cred::user(100))
}

// --- basic evaluation ---------------------------------------------------------

#[test]
fn arithmetic_and_strings() {
    let mut rt = runtime();
    let v = rt.run_ok("#lang shill/ambient\nx = 2 + 3 * 4;\nto_string(x)");
    assert!(matches!(v, Value::Str(s) if *s == "14"));
    let v = rt
        .run("main2", "#lang shill/ambient\ns = \"a\" ++ \"b\";\ns")
        .unwrap();
    assert!(matches!(v, Value::Str(s) if *s == "ab"));
}

#[test]
fn closures_and_recursion_in_cap_scripts() {
    let mut rt = runtime();
    rt.add_script(
        "fact.cap",
        "#lang shill/cap\nfact = fun(n) { if n <= 1 then 1 else n * fact(n - 1) };\nprovide fact : {n : is_num} -> is_num;",
    );
    let v = rt.run_ok("#lang shill/ambient\nrequire \"fact.cap\";\nfact(6)");
    assert!(matches!(v, Value::Num(720)));
}

#[test]
fn prelude_helpers_available() {
    let mut rt = runtime();
    rt.add_script(
        "uses_prelude.cap",
        r#"#lang shill/cap
require "shill/prelude";
inc_all = fun(xs) { map(fun(x) { x + 1 }, xs) };
provide inc_all : {xs : is_list} -> is_list;
"#,
    );
    let v = rt.run_ok(
        "#lang shill/ambient\nrequire \"uses_prelude.cap\";\nys = inc_all([1, 2, 3]);\nnth(ys, 2)",
    );
    assert!(matches!(v, Value::Num(4)));
}

#[test]
fn immutability_enforced() {
    let mut rt = runtime();
    let err = rt
        .run("main", "#lang shill/ambient\nx = 1;\nx = 2;")
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("immutable"), "{m}"),
        other => panic!("{other}"),
    }
}

#[test]
fn ambient_cannot_use_control_flow() {
    let mut rt = runtime();
    assert!(matches!(
        rt.run("main", "#lang shill/ambient\nif true then 1;"),
        Err(ShillError::Parse(_))
    ));
}

#[test]
fn cap_scripts_lack_ambient_builtins() {
    let mut rt = runtime();
    rt.add_script(
        "sneaky.cap",
        "#lang shill/cap\nsteal = fun() { open_file(\"/home/u/out.txt\") };\nprovide steal : {} -> any;",
    );
    let err = rt
        .run(
            "main",
            "#lang shill/ambient\nrequire \"sneaky.cap\";\nsteal();",
        )
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("unbound variable `open_file`"), "{m}"),
        other => panic!("{other}"),
    }
}

#[test]
fn require_rejects_ambient_modules() {
    let mut rt = runtime();
    rt.add_script("amb", "#lang shill/ambient\nx = 1;");
    let err = rt
        .run("main", "#lang shill/ambient\nrequire \"amb\";")
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("capability-safe"), "{m}"),
        other => panic!("{other}"),
    }
}

// --- figure 3: find_jpg -------------------------------------------------------

const FIND_JPG: &str = r#"#lang shill/cap

provide find_jpg :
  {cur : dir(+contents, +lookup, +path) \/ file(+path),
   out : file(+append)} -> void;

find_jpg = fun(cur, out) {
  if is_file(cur) && has_ext(cur, "jpg") then
    append(out, path(cur) ++ "\n");

  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find_jpg(child, out);
    }
}
"#;

#[test]
fn figure3_find_jpg_end_to_end() {
    let mut rt = runtime();
    rt.add_script("find_jpg.cap", FIND_JPG);
    rt.run_ok(
        r#"#lang shill/ambient
require "find_jpg.cap";
pics = open_dir("/home/u/pics");
out = open_file("/home/u/out.txt");
find_jpg(pics, out);
"#,
    );
    let node = rt.kernel().fs.resolve_abs("/home/u/out.txt").unwrap();
    let content = rt.kernel().fs.read(node, 0, 4096).unwrap();
    let text = String::from_utf8(content).unwrap();
    assert!(text.contains("/home/u/pics/dog.jpg"));
    assert!(text.contains("/home/u/pics/cat.jpg"));
    assert!(text.contains("/home/u/pics/deep/bird.jpg"));
    assert!(!text.contains("readme.txt"));
}

#[test]
fn find_jpg_contract_blocks_reading_out() {
    // A malicious variant that tries to *read* the output capability,
    // which the contract only grants +append on.
    let mut rt = runtime();
    rt.add_script(
        "evil.cap",
        r#"#lang shill/cap
provide evil :
  {cur : dir(+contents, +lookup, +path) \/ file(+path),
   out : file(+append)} -> void;
evil = fun(cur, out) { read(out); }
"#,
    );
    let err = rt
        .run(
            "main",
            r#"#lang shill/ambient
require "evil.cap";
pics = open_dir("/home/u/pics");
out = open_file("/home/u/out.txt");
evil(pics, out);
"#,
        )
        .unwrap_err();
    match err {
        ShillError::Violation(v) => {
            assert!(v.blamed_name.contains("evil"), "consumer blamed: {v}");
            assert!(v.message.contains("+read"), "{v}");
        }
        other => panic!("expected violation, got {other}"),
    }
}

#[test]
fn find_jpg_contract_blocks_unlink_on_derived() {
    // Derived children inherit the contract: unlink is not granted.
    let mut rt = runtime();
    rt.add_script(
        "evil2.cap",
        r#"#lang shill/cap
provide evil2 : {cur : dir(+contents, +lookup)} -> void;
evil2 = fun(cur) {
  for name in contents(cur) {
    unlink_file(cur, name);
  }
}
"#,
    );
    let err = rt
        .run(
            "main",
            r#"#lang shill/ambient
require "evil2.cap";
pics = open_dir("/home/u/pics");
evil2(pics);
"#,
        )
        .unwrap_err();
    assert!(matches!(err, ShillError::Violation(_)));
    // Nothing was deleted.
    assert!(rt.kernel().fs.resolve_abs("/home/u/pics/dog.jpg").is_ok());
}

#[test]
fn provider_blamed_for_wrong_kind() {
    let mut rt = runtime();
    rt.add_script(
        "wants_dir.cap",
        "#lang shill/cap\nf = fun(d) { contents(d) };\nprovide f : {d : is_dir} -> any;",
    );
    let err = rt
        .run(
            "main",
            r#"#lang shill/ambient
require "wants_dir.cap";
file = open_file("/home/u/out.txt");
f(file);
"#,
        )
        .unwrap_err();
    match err {
        ShillError::Violation(v) => {
            // The caller (provider of the argument) is blamed.
            assert!(v.blamed_name.contains("client of"), "{v}");
        }
        other => panic!("{other}"),
    }
}

// --- figure 5: polymorphic find -----------------------------------------------

const POLY_FIND: &str = r#"#lang shill/cap

provide find :
  forall X with {+lookup, +contents} .
  {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;

find = fun(cur, filter, cmd) {
  if is_file(cur) && filter(cur) then
    cmd(cur);

  if is_dir(cur) then
    for name in contents(cur) {
      child = lookup(cur, name);
      if !is_syserror(child) then
        find(child, filter, cmd);
    }
}
"#;

#[test]
fn figure5_polymorphic_find_works() {
    let mut rt = runtime();
    rt.add_script("find.cap", POLY_FIND);
    rt.add_script(
        "client.cap",
        r#"#lang shill/cap
require "find.cap";
provide run_it : {root : dir(+contents, +lookup, +path, +stat) \/ file(+path, +stat), out : file(+append)} -> void;
run_it = fun(root, out) {
  find(root,
       fun(f) { has_ext(f, "jpg") },
       fun(f) { append(out, path(f) ++ "\n"); });
}
"#,
    );
    rt.run_ok(
        r#"#lang shill/ambient
require "client.cap";
pics = open_dir("/home/u/pics");
out = open_file("/home/u/out.txt");
run_it(pics, out);
"#,
    );
    let node = rt.kernel().fs.resolve_abs("/home/u/out.txt").unwrap();
    let text = String::from_utf8(rt.kernel().fs.read(node, 0, 4096).unwrap()).unwrap();
    assert!(text.contains("dog.jpg"));
    assert!(text.contains("bird.jpg"));
    assert!(!text.contains("readme"));
}

#[test]
fn polymorphic_find_body_cannot_exceed_bound() {
    // A dishonest `find` that tries to use +path on the sealed argument —
    // outside the forall bound {+lookup, +contents}.
    let mut rt = runtime();
    rt.add_script(
        "badfind.cap",
        r#"#lang shill/cap
provide find :
  forall X with {+lookup, +contents} .
  {cur : X, filter : X -> is_bool, cmd : X -> void} -> void;
find = fun(cur, filter, cmd) {
  display(path(cur));
}
"#,
    );
    let err = rt
        .run(
            "main",
            r#"#lang shill/ambient
require "badfind.cap";
pics = open_dir("/home/u/pics");
find(pics, is_file, is_file);
"#,
        )
        .unwrap_err();
    match err {
        ShillError::Violation(v) => {
            assert!(v.message.contains("+path"), "{v}");
            assert!(v.message.contains('X'), "{v}");
        }
        other => panic!("{other}"),
    }
}

#[test]
fn polymorphic_filter_gets_unsealed_value() {
    // The filter may use privileges beyond the bound (here +stat via
    // stat_size) because X unseals on the way out to it (§2.4.2).
    let mut rt = runtime();
    rt.add_script("find.cap", POLY_FIND);
    rt.add_script(
        "client.cap",
        r#"#lang shill/cap
require "find.cap";
provide count_nonempty : {root : dir(+contents, +lookup, +stat) \/ file(+stat), out : file(+append)} -> void;
count_nonempty = fun(root, out) {
  find(root,
       fun(f) { stat_size(f) > 0 },
       fun(f) { append(out, "hit\n"); });
}
"#,
    );
    rt.run_ok(
        r#"#lang shill/ambient
require "client.cap";
pics = open_dir("/home/u/pics");
out = open_file("/home/u/out.txt");
count_nonempty(pics, out);
"#,
    );
    let node = rt.kernel().fs.resolve_abs("/home/u/out.txt").unwrap();
    let text = String::from_utf8(rt.kernel().fs.read(node, 0, 4096).unwrap()).unwrap();
    // 4 files, all non-empty.
    assert_eq!(text.matches("hit").count(), 4);
}

// --- figures 4 & 6: jpeginfo with wallets and sandboxed exec --------------------

const JPEGINFO_CAP: &str = r#"#lang shill/cap
require shill/native;

provide jpeginfo :
  {wallet : native_wallet, out : file(+write, +append),
   arg : file(+read, +path)} -> void;

jpeginfo = fun(wallet, out, arg) {
  jpeg_wrapper = pkg_native("jpeginfo", wallet);
  jpeg_wrapper(["-i", arg], stdout = out);
}
"#;

const JPEGINFO_AMBIENT: &str = r#"#lang shill/ambient
require shill/native;
require "jpeginfo.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root, "/usr/local/bin", "/lib", pipe_factory);

dog = open_file("/home/u/pics/dog.jpg");
out = open_file("/home/u/out.txt");
jpeginfo(wallet, out, dog);
"#;

#[test]
fn figure4_and_6_jpeginfo_sandboxed() {
    let mut rt = runtime();
    rt.add_script("jpeginfo.cap", JPEGINFO_CAP);
    rt.run_ok(JPEGINFO_AMBIENT);
    let node = rt.kernel().fs.resolve_abs("/home/u/out.txt").unwrap();
    let text = String::from_utf8(rt.kernel().fs.read(node, 0, 4096).unwrap()).unwrap();
    assert!(text.contains("/home/u/pics/dog.jpg: 7 bytes"), "{text}");
    // Exactly one sandbox was created.
    assert_eq!(rt.profile().sandboxes, 1);
    assert!(rt.profile().contract_applications > 0);
}

#[test]
fn sandboxed_jpeginfo_cannot_read_ungranted_file() {
    // Pass a path *string* for a file the sandbox has no capability for:
    // the sandboxed binary must fail to open it.
    let mut rt = runtime();
    rt.add_script("jpeginfo.cap", JPEGINFO_CAP);
    rt.add_script(
        "sneaky.cap",
        r#"#lang shill/cap
require shill/native;
provide sneak : {wallet : native_wallet, out : file(+write, +append)} -> any;
sneak = fun(wallet, out) {
  w = pkg_native("jpeginfo", wallet);
  w(["-i", "/home/u/pics/cat.jpg"], stdout = out)
}
"#,
    );
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "sneaky.cap";
require shill/native;
root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root, "/usr/local/bin", "/lib", pipe_factory);
out = open_file("/home/u/out.txt");
sneak(wallet, out)
"#,
    );
    // jpeginfo exits 1: open of the un-granted path failed inside the
    // sandbox (traversal root is lookup-only; no +read propagates).
    assert!(matches!(v, Value::Num(1)), "got {v:?}");
}

#[test]
fn exec_without_policy_module_fails() {
    let mut rt = ShillRuntime::new(test_kernel(), RuntimeConfig::NoPolicy, Cred::user(100));
    rt.add_script("jpeginfo.cap", JPEGINFO_CAP);
    let err = rt.run("main", JPEGINFO_AMBIENT).unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("kernel module"), "{m}"),
        other => panic!("{other}"),
    }
}

// --- wallets -------------------------------------------------------------------

#[test]
fn wallet_contract_enforced() {
    let mut rt = runtime();
    rt.add_script(
        "w.cap",
        "#lang shill/cap\nf = fun(w) { wallet_keys(w) };\nprovide f : {w : native_wallet} -> is_list;",
    );
    let err = rt
        .run("main", "#lang shill/ambient\nrequire \"w.cap\";\nf(42);")
        .unwrap_err();
    assert!(matches!(err, ShillError::Violation(_)));
    let v = rt.run_ok(
        "#lang shill/ambient\nrequire \"w.cap\";\nw = create_wallet();\nwallet_set(w, \"k\", [1]);\nf(w)",
    );
    assert!(matches!(v, Value::List(_)));
}

#[test]
fn capabilities_are_not_serializable() {
    let mut rt = runtime();
    let v = rt.run_ok("#lang shill/ambient\nd = open_dir(\"/home/u/pics\");\nto_string(d)");
    match v {
        Value::Str(s) => {
            assert!(s.contains("<capability"), "{s}");
            assert!(
                !s.contains("/home"),
                "path must not leak through display: {s}"
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn syserror_values_are_observable_not_fatal() {
    let mut rt = runtime();
    let v = rt.run_ok(
        "#lang shill/ambient\nd = open_dir(\"/home/u/pics\");\nc = lookup(d, \"missing\");\nis_syserror(c)",
    );
    assert!(matches!(v, Value::Bool(true)));
}

#[test]
fn syserror_builtin_constructs_catchable_errors() {
    let mut rt = runtime();
    // The constructed value is a first-class syserror, equal to the one a
    // real denial produces — the retry class a server client re-raises.
    let v = rt.run_ok("#lang shill/ambient\ne = syserror(\"EAGAIN\");\nis_syserror(e)");
    assert!(matches!(v, Value::Bool(true)));
    let v = rt.run_ok("#lang shill/ambient\nsyserror(\"EAGAIN\")");
    assert!(matches!(v, Value::SysErr(shill_vfs::Errno::EAGAIN)));
    // Unknown names are a programming error, not a silent default.
    let err = rt
        .run("main", "#lang shill/ambient\nsyserror(\"EWHATEVER\")")
        .unwrap_err();
    assert!(matches!(err, ShillError::Runtime(m) if m.contains("unknown errno name")));
}

#[test]
fn user_defined_contract_abbreviations() {
    let mut rt = runtime();
    rt.add_script(
        "ro.cap",
        r#"#lang shill/cap
f = fun(x) { read(x) };
provide f : {x : readonly} -> is_string;
"#,
    );
    let v = rt.run_ok(
        "#lang shill/ambient\nrequire \"ro.cap\";\nfile = open_file(\"/home/u/pics/readme.txt\");\nf(file)",
    );
    assert!(matches!(v, Value::Str(s) if *s == "text"));
}

#[test]
fn profile_counts_contract_work() {
    let mut rt = runtime();
    rt.add_script("find_jpg.cap", FIND_JPG);
    rt.run_ok(
        r#"#lang shill/ambient
require "find_jpg.cap";
pics = open_dir("/home/u/pics");
out = open_file("/home/u/out.txt");
find_jpg(pics, out);
"#,
    );
    let p = rt.profile();
    assert!(p.contract_applications > 5, "{p:?}");
    assert!(p.guard_checks > 0, "{p:?}");
    assert!(p.total > std::time::Duration::ZERO);
}
