//! Tests for the Rust-implemented stdlib modules: `shill/filesys`,
//! `shill/contracts`, and module-system behaviours (caching, unknown
//! modules, prelude availability).

use shill_core::{RuntimeConfig, ShillError, ShillRuntime, Value};
use shill_kernel::Kernel;
use shill_vfs::{Cred, Gid, Mode, Uid};

fn rt() -> ShillRuntime {
    let mut k = Kernel::new();
    k.fs.put_file(
        "/srv/app/conf/main.cfg",
        b"cfg!",
        Mode(0o644),
        Uid::ROOT,
        Gid::WHEEL,
    )
    .unwrap();
    ShillRuntime::new(k, RuntimeConfig::WithPolicy, Cred::ROOT)
}

#[test]
fn filesys_resolve_path_walks_by_lookup() {
    let mut r = rt();
    r.add_script(
        "m.cap",
        r#"#lang shill/cap
require shill/filesys;
provide fetch : {root : dir(+lookup, +read)} -> is_string;
fetch = fun(root) {
  c = resolve_path(root, "app/conf/main.cfg");
  read(c)
};
"#,
    );
    let v = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"m.cap\";\nfetch(open_dir(\"/srv\"))",
        )
        .unwrap();
    assert_eq!(v.display(), "cfg!");
}

#[test]
fn filesys_resolve_path_respects_contracts() {
    // A lookup-only directory cannot resolve into a READ: the derived
    // capability inherits the lookup-only guard.
    let mut r = rt();
    r.add_script(
        "m.cap",
        r#"#lang shill/cap
require shill/filesys;
provide fetch : {root : dir(+lookup)} -> is_string;
fetch = fun(root) {
  c = resolve_path(root, "app/conf/main.cfg");
  read(c)
};
"#,
    );
    let err = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"m.cap\";\nfetch(open_dir(\"/srv\"))",
        )
        .unwrap_err();
    assert!(matches!(err, ShillError::Violation(_)), "{err}");
}

#[test]
fn filesys_resolve_path_missing_is_syserror() {
    let mut r = rt();
    r.add_script(
        "m.cap",
        r#"#lang shill/cap
require shill/filesys;
provide probe : {root : dir(+lookup)} -> is_bool;
probe = fun(root) { is_syserror(resolve_path(root, "no/such/thing")) };
"#,
    );
    let v = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"m.cap\";\nprobe(open_dir(\"/srv\"))",
        )
        .unwrap();
    assert!(matches!(v, Value::Bool(true)));
}

#[test]
fn contracts_module_abbreviations_importable() {
    let mut r = rt();
    r.add_script(
        "m.cap",
        r#"#lang shill/cap
require shill/contracts;
provide run_it : {exe : executable} -> is_bool;
run_it = fun(exe) { is_file(exe) };
"#,
    );
    r.kernel()
        .fs
        .put_file(
            "/bin/thing",
            b"#!SIMBIN thing\n",
            Mode(0o755),
            Uid::ROOT,
            Gid::WHEEL,
        )
        .unwrap();
    let v = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"m.cap\";\nrun_it(open_file(\"/bin/thing\"))",
        )
        .unwrap();
    assert!(matches!(v, Value::Bool(true)));
}

#[test]
fn modules_are_cached_across_requires() {
    // Two scripts require the same module; its top level runs once (the
    // display output appears exactly once).
    let mut r = rt();
    r.add_script(
        "shared.cap",
        "#lang shill/cap\ndisplay(\"loading shared\");\nprovide s : {} -> is_num;\ns = fun() { 5 };",
    );
    r.add_script(
        "a.cap",
        "#lang shill/cap\nrequire \"shared.cap\";\nprovide a : {} -> is_num;\na = fun() { s() };",
    );
    r.add_script(
        "b.cap",
        "#lang shill/cap\nrequire \"shared.cap\";\nprovide b : {} -> is_num;\nb = fun() { s() + 1 };",
    );
    let v = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"a.cap\";\nrequire \"b.cap\";\na() + b()",
        )
        .unwrap();
    assert_eq!(v.display(), "11");
    assert_eq!(
        r.output().matches("loading shared").count(),
        1,
        "module body ran once"
    );
}

#[test]
fn cyclic_requires_detected() {
    let mut r = rt();
    r.add_script(
        "x.cap",
        "#lang shill/cap\nrequire \"y.cap\";\nprovide fx : {} -> any;\nfx = fun() { 1 };",
    );
    r.add_script(
        "y.cap",
        "#lang shill/cap\nrequire \"x.cap\";\nprovide fy : {} -> any;\nfy = fun() { 2 };",
    );
    let err = r
        .run("main", "#lang shill/ambient\nrequire \"x.cap\";\nfx()")
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("cyclic"), "{m}"),
        other => panic!("{other}"),
    }
}

#[test]
fn unknown_module_reports_name() {
    let mut r = rt();
    let err = r
        .run("main", "#lang shill/ambient\nrequire \"nope.cap\";")
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("nope.cap"), "{m}"),
        other => panic!("{other}"),
    }
}
