//! The language surface of the completion model: `async` builds deferred
//! batch fragments, `await`/`await_all` force them through ONE scheduled
//! submission, `select` steps waves to pick the first finisher, and
//! `stream_read` yields per-wave chunks. The async form of a script must
//! be observationally equivalent to its sequential twin — same results,
//! same errnos, same denials — with strictly fewer batch submissions.

use shill_core::{RuntimeConfig, ShillRuntime, Value};
use shill_kernel::{FaultPlane, Kernel};
use shill_vfs::{Cred, Gid, Mode, Uid};

fn test_kernel() -> Kernel {
    let mut k = Kernel::new();
    let put = |k: &mut Kernel, p: &str, data: &[u8]| {
        k.fs.put_file(p, data, Mode(0o644), Uid(100), Gid(100))
            .unwrap();
    };
    put(&mut k, "/home/u/a.txt", b"alpha");
    put(&mut k, "/home/u/b.txt", b"bravo-bravo");
    put(&mut k, "/home/u/c.txt", b"charlie");
    put(&mut k, "/home/u/out.txt", b"");
    put(&mut k, "/home/u/out2.txt", b"");
    k.fs.put_file(
        "/home/u/big.bin",
        &vec![7u8; 200_000],
        Mode(0o644),
        Uid(100),
        Gid(100),
    )
    .unwrap();
    k
}

fn runtime() -> ShillRuntime {
    ShillRuntime::new(test_kernel(), RuntimeConfig::WithPolicy, Cred::user(100))
}

/// A cap script exposing an async pipeline and its sequential twin:
/// copy a → out (read → truncate → write with a slot link), slurp b and c.
const PIPELINE: &str = r#"#lang shill/cap
require shill/filesys;
provide fused : {src : file(+read), b : file(+read), c : file(+read),
                 dst : file(+write)} -> is_list;
provide sequential : {src : file(+read), b : file(+read), c : file(+read),
                      dst : file(+write)} -> is_list;
fused = fun(src, b, c, dst) {
  fc = async copy_file(src, dst);
  fb = async read(b);
  fx = async read(c);
  await_all([fc, fb, fx])
};
sequential = fun(src, b, c, dst) {
  [copy_file(src, dst), read(b), read(c)]
};
"#;

const DRIVE_FUSED: &str = r#"#lang shill/ambient
require "pipeline.cap";
fused(open_file("/home/u/a.txt"), open_file("/home/u/b.txt"),
      open_file("/home/u/c.txt"), open_file("/home/u/out.txt"))
"#;

const DRIVE_SEQ: &str = r#"#lang shill/ambient
require "pipeline.cap";
sequential(open_file("/home/u/a.txt"), open_file("/home/u/b.txt"),
           open_file("/home/u/c.txt"), open_file("/home/u/out.txt"))
"#;

fn out_content(rt: &mut ShillRuntime, path: &str) -> Vec<u8> {
    let node = rt.kernel().fs.resolve_abs(path).unwrap();
    rt.kernel().fs.read(node, 0, 1 << 20).unwrap()
}

// --- the tentpole: one submission for the whole async pipeline ---------------

#[test]
fn async_pipeline_is_one_scheduled_submission() {
    let mut rt = runtime();
    rt.add_script("pipeline.cap", PIPELINE);
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(DRIVE_FUSED);
    let after = rt.kernel().stats_snapshot();

    // One `submit_scheduled` carried the copy DAG and both reads.
    assert_eq!(after.batches - before.batches, 1, "expected ONE submission");
    // The copy's write consumed the read's buffer through a slot reference.
    assert!(after.slot_links - before.slot_links >= 1, "no slot link");
    // The copy fragment is ≥2 dependency levels deep → several waves.
    assert!(
        after.sched_waves - before.sched_waves >= 2,
        "expected waves"
    );

    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert!(matches!(items[0], Value::Num(5)), "{:?}", items[0]);
    assert_eq!(items[1].display(), "bravo-bravo");
    assert_eq!(items[2].display(), "charlie");
    assert_eq!(out_content(&mut rt, "/home/u/out.txt"), b"alpha");
}

#[test]
fn sequential_twin_needs_more_submissions() {
    let mut rt = runtime();
    rt.add_script("pipeline.cap", PIPELINE);
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(DRIVE_SEQ);
    let after = rt.kernel().stats_snapshot();
    assert!(
        after.batches - before.batches >= 3,
        "each eager op is its own submission"
    );
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert!(matches!(items[0], Value::Num(5)));
    assert_eq!(items[1].display(), "bravo-bravo");
    assert_eq!(out_content(&mut rt, "/home/u/out.txt"), b"alpha");
}

#[test]
fn async_matches_sequential_twin_bit_for_bit() {
    let mut fused = runtime();
    fused.add_script("pipeline.cap", PIPELINE);
    let fv = fused.run_ok(DRIVE_FUSED);

    let mut seq = runtime();
    seq.add_script("pipeline.cap", PIPELINE);
    let sv = seq.run_ok(DRIVE_SEQ);

    assert_eq!(fv.display(), sv.display());
    assert_eq!(
        out_content(&mut fused, "/home/u/out.txt"),
        out_content(&mut seq, "/home/u/out.txt"),
    );
}

#[test]
fn async_matches_twin_under_standing_faults() {
    // fs.read/fs.write faults key on (node, offset, len) — identical for the
    // accumulated batch and the eager per-op batches — so both modes must
    // surface the SAME syserrors. (The slot-keyed `batch` site is excluded:
    // slot numbering differs by construction between the modes.)
    for spec in [
        "seed=23;rate=5;sites=fs.read+fs.write",
        "seed=9;rate=3;sites=fs.read",
    ] {
        let mut fused = runtime();
        fused.add_script("pipeline.cap", PIPELINE);
        fused
            .kernel()
            .set_fault_plane(Some(FaultPlane::parse(spec).unwrap()));
        let fv = fused.run("main", DRIVE_FUSED);

        let mut seq = runtime();
        seq.add_script("pipeline.cap", PIPELINE);
        seq.kernel()
            .set_fault_plane(Some(FaultPlane::parse(spec).unwrap()));
        let sv = seq.run("main", DRIVE_SEQ);

        let render = |r: &Result<Value, shill_core::ShillError>| match r {
            Ok(v) => format!("ok:{}", v.display()),
            Err(e) => format!("err:{e}"),
        };
        assert_eq!(render(&fv), render(&sv), "spec={spec}");
        fused.kernel().set_fault_plane(None);
        seq.kernel().set_fault_plane(None);
        assert_eq!(
            out_content(&mut fused, "/home/u/out.txt"),
            out_content(&mut seq, "/home/u/out.txt"),
            "spec={spec}"
        );
    }
}

// --- future lifetime ----------------------------------------------------------

#[test]
fn unawaited_futures_never_execute() {
    let mut rt = runtime();
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
f = async write(open_file("/home/u/out.txt"), "poison");
"deferred forever""#,
    );
    let after = rt.kernel().stats_snapshot();
    assert_eq!(v.display(), "deferred forever");
    assert_eq!(after.batches - before.batches, 0);
    assert_eq!(out_content(&mut rt, "/home/u/out.txt"), b"");
}

#[test]
fn await_is_identity_on_plain_values_and_ready_futures() {
    let mut rt = runtime();
    let v = rt.run_ok("#lang shill/ambient\nawait 42");
    assert!(matches!(v, Value::Num(42)));
    let v = rt.run_ok("#lang shill/ambient\nawait (async (1 + 2))");
    assert!(matches!(v, Value::Num(3)));
}

#[test]
fn first_await_forces_every_pending_future() {
    // Awaiting ONE future flushes the whole accumulated batch; the second
    // future is already resolved when awaited — still one submission.
    let mut rt = runtime();
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
fa = async read(open_file("/home/u/a.txt"));
fb = async read(open_file("/home/u/b.txt"));
(await fa) ++ "|" ++ (await fb)"#,
    );
    let after = rt.kernel().stats_snapshot();
    assert_eq!(v.display(), "alpha|bravo-bravo");
    assert_eq!(after.batches - before.batches, 1);
}

#[test]
fn async_errors_surface_as_catchable_syserrors_on_await() {
    // A denial at *enqueue* time still aborts (capability safety is not
    // deferred); an errno at *resolution* time is an ordinary syserror.
    let mut rt = runtime();
    let plane = FaultPlane::parse("seed=1;rate=0;sites=").unwrap();
    rt.kernel().set_fault_plane(Some(plane.fail_on(
        shill_kernel::FaultSite::FsRead,
        1,
        shill_vfs::Errno::EIO,
    )));
    let v = rt.run_ok(
        r#"#lang shill/ambient
f = async read(open_file("/home/u/a.txt"));
is_syserror(await f)"#,
    );
    assert!(matches!(v, Value::Bool(true)), "{v:?}");
}

// --- select -------------------------------------------------------------------

#[test]
fn select_returns_first_completed_and_resolves_the_rest() {
    let mut rt = runtime();
    rt.add_script(
        "sel.cap",
        r#"#lang shill/cap
provide pick : {a : file(+read), b : file(+read)} -> is_list;
pick = fun(a, b) {
  fa = async read(a);
  fb = async read(b);
  i = select([fa, fb]);
  [i, await fa, await fb]
};
"#,
    );
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "sel.cap";
pick(open_file("/home/u/a.txt"), open_file("/home/u/b.txt"))"#,
    );
    let after = rt.kernel().stats_snapshot();
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert!(matches!(items[0], Value::Num(0) | Value::Num(1)));
    assert_eq!(items[1].display(), "alpha");
    assert_eq!(items[2].display(), "bravo-bravo");
    // select stepped the one accumulated batch; the awaits found
    // already-resolved futures.
    assert_eq!(after.batches - before.batches, 1);
}

#[test]
fn select_on_ready_values_returns_earliest_index() {
    let mut rt = runtime();
    let v = rt.run_ok("#lang shill/ambient\nselect([async 7, async 8])");
    assert!(matches!(v, Value::Num(0)), "{v:?}");
}

// --- stream_read --------------------------------------------------------------

#[test]
fn stream_read_yields_waves_and_totals_the_bytes() {
    let mut rt = runtime();
    rt.add_script(
        "stream.cap",
        r#"#lang shill/cap
provide pump : {src : file(+read), dst : file(+append)} -> is_num;
pump = fun(src, dst) {
  stream_read(src, fun(chunk) { append(dst, chunk) })
};
"#,
    );
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "stream.cap";
pump(open_file("/home/u/big.bin"), open_file("/home/u/out2.txt"))"#,
    );
    let after = rt.kernel().stats_snapshot();
    assert!(matches!(v, Value::Num(200_000)), "{v:?}");
    assert_eq!(out_content(&mut rt, "/home/u/out2.txt"), vec![7u8; 200_000]);
    // The chunk chain streams one completion per wave.
    assert!(after.sched_waves - before.sched_waves >= 3);
}

#[test]
fn stream_read_small_file_single_wave() {
    let mut rt = runtime();
    rt.add_script(
        "stream.cap",
        r#"#lang shill/cap
provide count : {src : file(+read)} -> is_num;
count = fun(src) { stream_read(src, fun(chunk) { length(chunk) }) };
"#,
    );
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "stream.cap";
count(open_file("/home/u/a.txt"))"#,
    );
    assert!(matches!(v, Value::Num(5)), "{v:?}");
}

// --- slurp_many ---------------------------------------------------------------

#[test]
fn slurp_many_is_one_submission_even_eagerly() {
    let mut rt = runtime();
    rt.add_script(
        "slurp.cap",
        r#"#lang shill/cap
require shill/filesys;
provide slurp3 : {a : file(+read), b : file(+read), c : file(+read)} -> is_list;
slurp3 = fun(a, b, c) { slurp_many([a, b, c]) };
"#,
    );
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "slurp.cap";
slurp3(open_file("/home/u/a.txt"), open_file("/home/u/b.txt"),
       open_file("/home/u/c.txt"))"#,
    );
    let after = rt.kernel().stats_snapshot();
    assert_eq!(after.batches - before.batches, 1);
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert_eq!(items[0].display(), "alpha");
    assert_eq!(items[1].display(), "bravo-bravo");
    assert_eq!(items[2].display(), "charlie");
}

#[test]
fn async_slurp_many_joins_the_accumulated_batch() {
    let mut rt = runtime();
    rt.add_script(
        "slurp.cap",
        r#"#lang shill/cap
require shill/filesys;
provide go : {a : file(+read), b : file(+read), c : file(+read)} -> is_list;
go = fun(a, b, c) {
  fs = async slurp_many([a, b]);
  fc = async read(c);
  await_all([fs, fc])
};
"#,
    );
    let before = rt.kernel().stats_snapshot();
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "slurp.cap";
go(open_file("/home/u/a.txt"), open_file("/home/u/b.txt"),
   open_file("/home/u/c.txt"))"#,
    );
    let after = rt.kernel().stats_snapshot();
    assert_eq!(after.batches - before.batches, 1);
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    let Value::List(pair) = &items[0] else {
        panic!("{:?}", items[0])
    };
    assert_eq!(pair[0].display(), "alpha");
    assert_eq!(pair[1].display(), "bravo-bravo");
    assert_eq!(items[1].display(), "charlie");
}

// --- dir_stats ----------------------------------------------------------------

#[test]
fn async_dir_stats_matches_eager() {
    let mut rt = runtime();
    rt.add_script(
        "ds.cap",
        r#"#lang shill/cap
require shill/filesys;
provide both : {d : dir(+contents, +lookup, +stat)} -> is_list;
both = fun(d) {
  f = async dir_stats(d);
  [await f, dir_stats(d)]
};
"#,
    );
    let v = rt.run_ok(
        r#"#lang shill/ambient
require "ds.cap";
both(open_dir("/home/u"))"#,
    );
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert_eq!(items[0].display(), items[1].display());
    assert!(items[0].display().contains("a.txt"));
}

// --- sibling independence -----------------------------------------------------

#[test]
fn failed_fragment_does_not_poison_siblings() {
    // Fault exactly one read in the accumulated batch: its future resolves
    // to a syserror, the sibling read still succeeds — fragment cones are
    // independent.
    let mut rt = runtime();
    let plane = FaultPlane::parse("seed=1;rate=0;sites=").unwrap();
    rt.kernel().set_fault_plane(Some(plane.fail_on(
        shill_kernel::FaultSite::FsRead,
        1,
        shill_vfs::Errno::EIO,
    )));
    let v = rt.run_ok(
        r#"#lang shill/ambient
fa = async read(open_file("/home/u/a.txt"));
fb = async read(open_file("/home/u/b.txt"));
rs = await_all([fa, fb]);
[is_syserror(nth(rs, 0)), nth(rs, 1)]"#,
    );
    let Value::List(items) = &v else {
        panic!("{v:?}")
    };
    assert!(matches!(items[0], Value::Bool(true)), "{:?}", items[0]);
    assert_eq!(items[1].display(), "bravo-bravo");
}
