//! Parser and evaluator edge cases: precedence, comments, error reporting,
//! scoping, and the concrete syntax quirks the paper's figures rely on.

use shill_core::{parse_contract, parse_script, RuntimeConfig, ShillError, ShillRuntime, Value};
use shill_kernel::Kernel;
use shill_vfs::Cred;

fn rt() -> ShillRuntime {
    ShillRuntime::new(Kernel::new(), RuntimeConfig::WithPolicy, Cred::ROOT)
}

fn eval_cap(body: &str) -> Result<Value, ShillError> {
    let mut r = rt();
    r.add_script(
        "m.cap",
        &format!("#lang shill/cap\nmain = fun() {{ {body} }};\nprovide main : {{}} -> any;"),
    );
    r.run("main", "#lang shill/ambient\nrequire \"m.cap\";\nmain()")
}

#[test]
fn operator_precedence() {
    assert_eq!(eval_cap("1 + 2 * 3").unwrap().display(), "7");
    assert_eq!(eval_cap("(1 + 2) * 3").unwrap().display(), "9");
    assert_eq!(eval_cap("10 - 3 - 2").unwrap().display(), "5"); // left assoc
    assert_eq!(eval_cap("1 + 2 == 3").unwrap().display(), "true");
    assert_eq!(
        eval_cap("true || false && false").unwrap().display(),
        "true"
    ); // && binds tighter
    assert_eq!(eval_cap("!false && true").unwrap().display(), "true");
    assert_eq!(eval_cap("-3 + 5").unwrap().display(), "2");
}

#[test]
fn short_circuit_evaluation() {
    // RHS would be a type error if evaluated.
    assert_eq!(
        eval_cap("false && is_num(missing_fn())").unwrap().display(),
        "false"
    );
    assert_eq!(
        eval_cap("true || is_num(missing_fn())").unwrap().display(),
        "true"
    );
}

#[test]
fn comments_and_blank_lines() {
    let src = r#"#lang shill/cap
# leading comment
x = 1; # trailing comment

# another

provide f : {} -> is_num;
f = fun() { x };
"#;
    assert!(parse_script(src).is_ok());
}

#[test]
fn string_styles_and_escapes() {
    assert_eq!(eval_cap(r#""a\tb""#).unwrap().display(), "a\tb");
    assert_eq!(
        eval_cap("''double style''").unwrap().display(),
        "double style"
    );
    assert_eq!(
        eval_cap(r#""concat" ++ ''both''"#).unwrap().display(),
        "concatboth"
    );
}

#[test]
fn nested_functions_and_closures_capture() {
    let v =
        eval_cap("make_adder = fun(n) { fun(m) { n + m } };\n  add5 = make_adder(5);\n  add5(3)")
            .unwrap();
    assert_eq!(v.display(), "8");
}

#[test]
fn loop_variable_scoping() {
    // Each iteration gets a fresh scope: binding inside the body with the
    // same name every iteration must not trip immutability.
    let v = eval_cap("total = foldl_manual();\n  total");
    assert!(v.is_err()); // helper not defined — checks error, not crash
    let mut r = rt();
    r.add_script(
        "loop.cap",
        r#"#lang shill/cap
provide run : {} -> is_num;
run = fun() {
  acc = [0];
  for x in [1, 2, 3] {
    y = x * 2;
    display(to_string(y));
  }
  99
};
"#,
    );
    let v = r
        .run("main", "#lang shill/ambient\nrequire \"loop.cap\";\nrun()")
        .unwrap();
    assert_eq!(v.display(), "99");
}

#[test]
fn if_without_else_yields_void() {
    assert_eq!(eval_cap("if false then 1").unwrap().display(), "void");
    assert_eq!(eval_cap("if true then 1 else 2").unwrap().display(), "1");
    assert_eq!(eval_cap("if false then 1 else 2").unwrap().display(), "2");
}

#[test]
fn blocks_scope_bindings() {
    // A binding inside an if-branch is not visible after it.
    let r = eval_cap("if true then { z = 5; z }\n  z");
    match r {
        Err(ShillError::Runtime(m)) => assert!(m.contains("unbound variable `z`"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn list_literals_and_helpers() {
    assert_eq!(eval_cap("length([1, 2, 3])").unwrap().display(), "3");
    assert_eq!(eval_cap("nth([10, 20], 1)").unwrap().display(), "20");
    assert_eq!(eval_cap("[1] ++ [2, 3]").unwrap().display(), "[1, 2, 3]");
    assert_eq!(eval_cap("length([])").unwrap().display(), "0");
    assert!(eval_cap("nth([], 0)").is_err());
    assert_eq!(
        eval_cap("split(\"a:b::c\", \":\")").unwrap().display(),
        "[a, b, c]"
    );
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse_script("#lang shill/cap\n\n\nx = = 2;").unwrap_err();
    assert_eq!(err.pos.line, 4);
    let err = parse_script("#lang shill/cap\nprovide f :").unwrap_err();
    assert!(err.pos.line >= 2);
}

#[test]
fn missing_lang_header_is_rejected() {
    assert!(parse_script("x = 1;").is_err());
    assert!(parse_script("#lang shill/unknown\nx = 1;").is_err());
}

#[test]
fn contract_parse_errors() {
    assert!(
        parse_contract("dir(+read with {+stat})").is_err(),
        "+read does not derive"
    );
    assert!(parse_contract("dir(+no_such)").is_err());
    assert!(parse_contract("{a : is_num} -> ").is_err());
    assert!(
        parse_contract("forall X . is_num").is_err(),
        "forall needs `with`"
    );
}

#[test]
fn contract_and_composes_wrappers() {
    // `is_file && readonly`: flat check plus privilege wrap (Figure 1's
    // submission contract style).
    let mut r = rt();
    r.kernel()
        .fs
        .put_file(
            "/f.txt",
            b"data",
            shill_vfs::Mode(0o644),
            shill_vfs::Uid::ROOT,
            shill_vfs::Gid::WHEEL,
        )
        .unwrap();
    r.add_script(
        "ro.cap",
        r#"#lang shill/cap
provide peek : {f : is_file && readonly} -> is_string;
provide poke : {f : is_file && readonly} -> void;
peek = fun(f) { read(f) };
poke = fun(f) { write(f, "overwrite"); };
"#,
    );
    let v = r
        .run(
            "main",
            "#lang shill/ambient\nrequire \"ro.cap\";\npeek(open_file(\"/f.txt\"))",
        )
        .unwrap();
    assert_eq!(v.display(), "data");
    let err = r
        .run(
            "main2",
            "#lang shill/ambient\nrequire \"ro.cap\";\npoke(open_file(\"/f.txt\"));",
        )
        .unwrap_err();
    assert!(matches!(err, ShillError::Violation(_)));
}

#[test]
fn arity_errors_name_the_function() {
    let mut r = rt();
    r.add_script(
        "f.cap",
        "#lang shill/cap\nprovide f : {a : is_num, b : is_num} -> is_num;\nf = fun(a, b) { a + b };",
    );
    let err = r
        .run("main", "#lang shill/ambient\nrequire \"f.cap\";\nf(1)")
        .unwrap_err();
    match err {
        ShillError::Violation(v) => assert!(v.message.contains("2 arguments"), "{v}"),
        other => panic!("{other}"),
    }
}

#[test]
fn prelude_helpers_handle_moderate_lists() {
    // Pins the usable recursion budget: the recursive prelude helpers must
    // comfortably handle list sizes the case studies use.
    let mut r = rt();
    r.add_script(
        "m.cap",
        r#"#lang shill/cap
require "shill/prelude";
provide total : {} -> is_num;
total = fun() {
  xs = [1] ++ [2] ++ [3] ++ [4] ++ [5] ++ [6] ++ [7] ++ [8] ++ [9] ++ [10]
       ++ [11] ++ [12] ++ [13] ++ [14] ++ [15] ++ [16] ++ [17] ++ [18];
  foldl(fun(a, x) { a + x }, 0, map(fun(x) { x * 2 }, xs))
};
"#,
    );
    let v = r
        .run("main", "#lang shill/ambient\nrequire \"m.cap\";\ntotal()")
        .unwrap();
    assert_eq!(v.display(), "342"); // 2 * (18*19/2)
}

#[test]
fn deep_recursion_is_bounded() {
    let r = eval_cap("loop_forever = fun() { loop_forever() };\n  loop_forever()");
    match r {
        Err(ShillError::Runtime(m)) => assert!(m.contains("depth"), "{m}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unicode_or_in_contracts() {
    let c = parse_contract("is_dir ∨ is_file").unwrap();
    assert_eq!(c, parse_contract("is_dir \\/ is_file").unwrap());
}

#[test]
fn keyword_argument_evaluation_order_and_passing() {
    let mut r = rt();
    r.add_script(
        "kw.cap",
        r#"#lang shill/cap
provide f : {} -> any;
f = fun() { 1 };
"#,
    );
    // Builtins reject unexpected kwargs.
    let err = r
        .run("main", "#lang shill/ambient\nlength([1], extra = 2)")
        .unwrap_err();
    match err {
        ShillError::Runtime(m) => assert!(m.contains("keyword"), "{m}"),
        other => panic!("{other}"),
    }
}
